//! The brownout ladder: graceful degradation for an edge under pressure.
//!
//! Three rungs, driven by the admission queue's occupancy (the
//! [`super::admission::AdmissionController::pressure`] signal):
//!
//! * **Healthy** — full service: cache lookups, peer queries, cloud
//!   forwards.
//! * **Degraded** — cheap work only: cache *hits* are still served, but
//!   misses are shed with `Msg::Overloaded` instead of spending edge
//!   compute and upstream capacity on recognition / forwarding.
//! * **Shedding** — every new request is refused with `Msg::Overloaded`
//!   and a retry-after hint, so the client's breaker/backoff machinery
//!   routes it to the cloud.
//!
//! Escalation is immediate (protection must not lag the overload);
//! de-escalation steps down one rung at a time and only after a minimum
//! dwell with pressure below the entry threshold minus a hysteresis
//! margin, so the ladder cannot flap around a threshold.
//!
//! Clock-agnostic like the rest of the engine: callers pass `now_ns`.

use std::time::Duration;

/// Where the edge currently sits on the degradation ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum BrownoutState {
    /// Full service.
    Healthy,
    /// Cache-hits-only: misses are shed instead of forwarded.
    Degraded,
    /// Every new request is shed with a retry-after hint.
    Shedding,
}

impl BrownoutState {
    /// Stable label for telemetry events.
    pub fn as_str(&self) -> &'static str {
        match self {
            BrownoutState::Healthy => "healthy",
            BrownoutState::Degraded => "degraded",
            BrownoutState::Shedding => "shedding",
        }
    }

    /// Stable numeric encoding for the `edge.brownout_state` gauge
    /// (0 = healthy, 1 = degraded, 2 = shedding).
    pub fn as_gauge(&self) -> u64 {
        match self {
            BrownoutState::Healthy => 0,
            BrownoutState::Degraded => 1,
            BrownoutState::Shedding => 2,
        }
    }
}

/// Tuning for [`BrownoutLadder`].
#[derive(Debug, Clone, PartialEq)]
pub struct BrownoutConfig {
    /// Queue pressure at which Healthy escalates to Degraded.
    pub degraded_enter: f64,
    /// Queue pressure at which any state escalates to Shedding.
    pub shed_enter: f64,
    /// Hysteresis: a state is left downward only once pressure drops
    /// below its entry threshold minus this margin.
    pub exit_margin: f64,
    /// Minimum time spent in a state before stepping down the ladder.
    pub min_dwell: Duration,
}

impl Default for BrownoutConfig {
    fn default() -> BrownoutConfig {
        BrownoutConfig {
            degraded_enter: 0.5,
            shed_enter: 0.9,
            exit_margin: 0.25,
            min_dwell: Duration::from_millis(20),
        }
    }
}

/// The ladder's state machine. Feed it the pressure signal on every
/// admission event; it reports transitions so the caller can emit the
/// `edge.brownout_state` event exactly once per change.
#[derive(Debug)]
pub struct BrownoutLadder {
    cfg: BrownoutConfig,
    state: BrownoutState,
    entered_at_ns: u64,
}

impl BrownoutLadder {
    /// A ladder starting Healthy at time zero.
    pub fn new(cfg: BrownoutConfig) -> BrownoutLadder {
        BrownoutLadder {
            cfg,
            state: BrownoutState::Healthy,
            entered_at_ns: 0,
        }
    }

    /// Current rung.
    pub fn state(&self) -> BrownoutState {
        self.state
    }

    /// Observe the pressure signal at `now_ns`. Returns `Some(new_state)`
    /// when the ladder moved.
    pub fn observe(&mut self, pressure: f64, now_ns: u64) -> Option<BrownoutState> {
        let target = self.target_state(pressure, now_ns);
        if target == self.state {
            return None;
        }
        self.state = target;
        self.entered_at_ns = now_ns;
        Some(target)
    }

    fn target_state(&self, pressure: f64, now_ns: u64) -> BrownoutState {
        // Escalation: immediate, straight to the rung the pressure demands.
        let demanded = if pressure >= self.cfg.shed_enter {
            BrownoutState::Shedding
        } else if pressure >= self.cfg.degraded_enter {
            BrownoutState::Degraded
        } else {
            BrownoutState::Healthy
        };
        if demanded > self.state {
            return demanded;
        }
        if demanded == self.state {
            return self.state;
        }
        // De-escalation: one rung at a time, after the dwell, and only
        // once pressure clears the hysteresis band below the threshold
        // that put us here.
        let dwelled =
            now_ns.saturating_sub(self.entered_at_ns) >= self.cfg.min_dwell.as_nanos() as u64;
        if !dwelled {
            return self.state;
        }
        let exit_below = match self.state {
            BrownoutState::Shedding => self.cfg.shed_enter - self.cfg.exit_margin,
            BrownoutState::Degraded => self.cfg.degraded_enter - self.cfg.exit_margin,
            BrownoutState::Healthy => return BrownoutState::Healthy,
        };
        if pressure < exit_below {
            match self.state {
                BrownoutState::Shedding => BrownoutState::Degraded,
                _ => BrownoutState::Healthy,
            }
        } else {
            self.state
        }
    }
}

/// Verdict for one offered request, combining admission and brownout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Admitted with full service. The caller must `release` when done.
    Serve,
    /// Admitted under Degraded: serve the request only if the cache hits;
    /// on a miss, shed it (`release` the slot, reply `Msg::Overloaded`).
    ServeCachedOnly,
    /// Waiting in the bounded queue; a later [`Drain::start`] entry (or a
    /// shed) decides its fate.
    Queued,
    /// Refused: reply `Msg::Overloaded` with the hint.
    Shed {
        /// Milliseconds the client should wait before retrying the edge.
        retry_after_ms: u32,
    },
}

/// One overload-control decision produced by [`OverloadControl`]: the
/// verdict for the offered request, queued requests shed to reach it, and
/// the brownout transition (if any) the caller should record.
#[derive(Debug, Clone, PartialEq)]
pub struct OverloadDecision {
    /// What happens to the request that was just offered.
    pub verdict: Verdict,
    /// Previously queued request ids shed (aged out / evicted), oldest
    /// first. Each must be answered `Msg::Overloaded`.
    pub shed: Vec<u64>,
    /// Brownout transition triggered by this event, for telemetry.
    pub transition: Option<BrownoutState>,
}

/// The edge's complete overload-control state: an
/// [`AdmissionController`] plus an optional [`BrownoutLadder`] watching
/// its queue pressure. One sans-IO implementation shared verbatim by the
/// simulator (virtual `now_ns`) and the live edge (wall `now_ns` behind a
/// mutex).
#[derive(Debug)]
pub struct OverloadControl {
    admission: AdmissionController,
    ladder: Option<BrownoutLadder>,
}

use super::admission::{AdmissionConfig, AdmissionController, Admit, Drain};

impl OverloadControl {
    /// Build from the two configs; `brownout: None` disables the ladder
    /// (pure admission control).
    pub fn new(admission: AdmissionConfig, brownout: Option<BrownoutConfig>) -> OverloadControl {
        OverloadControl {
            admission: AdmissionController::new(admission),
            ladder: brownout.map(BrownoutLadder::new),
        }
    }

    /// Offer one request at `now_ns`.
    pub fn offer(&mut self, id: u64, now_ns: u64) -> OverloadDecision {
        if self.state() == BrownoutState::Shedding {
            self.admission.note_shed();
            let shed = self.admission.expire(now_ns);
            let transition = self.observe(now_ns);
            return OverloadDecision {
                verdict: Verdict::Shed {
                    retry_after_ms: self.admission.retry_after_ms(),
                },
                shed,
                transition,
            };
        }
        let (admit, shed) = self.admission.offer(id, now_ns);
        let transition = self.observe(now_ns);
        let verdict = match admit {
            Admit::Admitted if self.state() == BrownoutState::Degraded => Verdict::ServeCachedOnly,
            Admit::Admitted => Verdict::Serve,
            Admit::Queued => Verdict::Queued,
            Admit::Shed { retry_after_ms } => Verdict::Shed { retry_after_ms },
        };
        OverloadDecision {
            verdict,
            shed,
            transition,
        }
    }

    /// Complete one admitted request (observed sojourn `service_ns`).
    /// Returns the queue drain plus any brownout transition. Requests in
    /// [`Drain::start`] begin service now; ask [`OverloadControl::state`]
    /// whether they get full or cached-only service.
    pub fn release(&mut self, service_ns: u64, now_ns: u64) -> (Drain, Option<BrownoutState>) {
        let drain = self.admission.release(service_ns, now_ns);
        let transition = self.observe(now_ns);
        (drain, transition)
    }

    /// Record a degraded-mode cache miss that was shed (counting only; the
    /// slot is returned through [`OverloadControl::release`] as usual).
    pub fn note_shed(&mut self) {
        self.admission.note_shed();
    }

    /// Shed queued entries older than the age bound without any other
    /// admission event — the self-driven expiry a live waiter runs while
    /// it blocks, so an idle edge still ages its queue out. Returns the
    /// shed ids (oldest first) plus any brownout transition.
    pub fn expire(&mut self, now_ns: u64) -> (Vec<u64>, Option<BrownoutState>) {
        let shed = self.admission.expire(now_ns);
        let transition = self.observe(now_ns);
        (shed, transition)
    }

    fn observe(&mut self, now_ns: u64) -> Option<BrownoutState> {
        let pressure = self.admission.pressure();
        self.ladder
            .as_mut()
            .and_then(|l| l.observe(pressure, now_ns))
    }

    /// Current brownout rung (Healthy when the ladder is disabled).
    pub fn state(&self) -> BrownoutState {
        self.ladder
            .as_ref()
            .map_or(BrownoutState::Healthy, |l| l.state())
    }

    /// Retry-after hint (milliseconds) for shed replies.
    pub fn retry_after_ms(&self) -> u32 {
        self.admission.retry_after_ms()
    }

    /// The underlying admission controller (read-only view).
    pub fn admission(&self) -> &AdmissionController {
        &self.admission
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MS: u64 = 1_000_000;

    fn ladder() -> BrownoutLadder {
        BrownoutLadder::new(BrownoutConfig {
            degraded_enter: 0.5,
            shed_enter: 0.9,
            exit_margin: 0.2,
            min_dwell: Duration::from_millis(10),
        })
    }

    #[test]
    fn escalates_immediately_and_straight_to_the_demanded_rung() {
        let mut l = ladder();
        assert_eq!(l.observe(0.1, 0), None);
        assert_eq!(l.observe(0.6, MS), Some(BrownoutState::Degraded));
        assert_eq!(l.observe(0.95, MS), Some(BrownoutState::Shedding));
        let mut fresh = ladder();
        // A pressure spike escalates Healthy → Shedding in one step.
        assert_eq!(fresh.observe(1.0, 0), Some(BrownoutState::Shedding));
    }

    #[test]
    fn deescalates_one_rung_at_a_time_after_dwell_and_hysteresis() {
        let mut l = ladder();
        l.observe(1.0, 0);
        assert_eq!(l.state(), BrownoutState::Shedding);
        // Pressure collapses instantly, but the dwell gate holds.
        assert_eq!(l.observe(0.0, 5 * MS), None);
        // After the dwell it steps to Degraded, not straight to Healthy.
        assert_eq!(l.observe(0.0, 11 * MS), Some(BrownoutState::Degraded));
        // And the Degraded dwell restarts from the transition.
        assert_eq!(l.observe(0.0, 15 * MS), None);
        assert_eq!(l.observe(0.0, 22 * MS), Some(BrownoutState::Healthy));
    }

    #[test]
    fn hysteresis_band_prevents_flapping() {
        let mut l = ladder();
        l.observe(0.6, 0);
        assert_eq!(l.state(), BrownoutState::Degraded);
        // 0.35 is below the 0.5 entry threshold but inside the 0.2
        // hysteresis band (exit requires < 0.3): no transition, ever.
        assert_eq!(l.observe(0.35, 50 * MS), None);
        assert_eq!(l.observe(0.29, 60 * MS), Some(BrownoutState::Healthy));
    }

    #[test]
    fn state_labels_and_gauges_are_stable() {
        assert_eq!(BrownoutState::Healthy.as_str(), "healthy");
        assert_eq!(BrownoutState::Degraded.as_gauge(), 1);
        assert_eq!(BrownoutState::Shedding.as_gauge(), 2);
        assert!(BrownoutState::Shedding > BrownoutState::Degraded);
    }

    fn control() -> OverloadControl {
        OverloadControl::new(
            AdmissionConfig {
                queue_limit: 4,
                max_queue_age: Duration::from_millis(50),
                min_concurrency: 1,
                max_concurrency: 2,
                initial_concurrency: 2,
                latency_target: Duration::from_millis(5),
                retry_after_ms: 30,
            },
            Some(BrownoutConfig {
                degraded_enter: 0.5,
                shed_enter: 1.0,
                exit_margin: 0.25,
                min_dwell: Duration::from_millis(10),
            }),
        )
    }

    #[test]
    fn ladder_climbs_as_the_queue_fills_and_sheds_at_the_top() {
        let mut c = control();
        assert_eq!(c.offer(1, 0).verdict, Verdict::Serve);
        assert_eq!(c.offer(2, 0).verdict, Verdict::Serve);
        assert_eq!(c.offer(3, 0).transition, None); // pressure 0.25
                                                    // Second waiter: pressure 0.5 ≥ 0.5 → Degraded.
        let d = c.offer(4, 0);
        assert_eq!(d.verdict, Verdict::Queued);
        assert_eq!(d.transition, Some(BrownoutState::Degraded));
        assert_eq!(c.offer(5, MS).transition, None); // 0.75
                                                     // Fourth waiter fills the queue: pressure 1.0 → Shedding…
        let d = c.offer(6, MS);
        assert_eq!(d.transition, Some(BrownoutState::Shedding));
        // …and the next arrival is refused outright with the hint.
        let d = c.offer(7, 2 * MS);
        assert_eq!(d.verdict, Verdict::Shed { retry_after_ms: 30 });
        assert!(d.shed.is_empty());
    }

    #[test]
    fn degraded_admissions_are_cached_only_until_pressure_clears() {
        let mut c = control();
        c.offer(1, 0);
        c.offer(2, 0);
        c.offer(3, 0);
        assert_eq!(c.offer(4, 0).transition, Some(BrownoutState::Degraded));
        // Fast releases drain the queue (limit is capped at 2, so each
        // release starts exactly one waiter, oldest first).
        let (drain, _) = c.release(MS, 2 * MS);
        assert_eq!(drain.start, vec![3]);
        assert_eq!(c.state(), BrownoutState::Degraded);
        let (drain, _) = c.release(MS, 3 * MS);
        assert_eq!(drain.start, vec![4]);
        let (drain, _) = c.release(MS, 4 * MS);
        assert!(drain.start.is_empty());
        // A slot is free but the dwell holds the ladder at Degraded: the
        // admission is cached-only.
        let d = c.offer(6, 5 * MS);
        assert_eq!(d.verdict, Verdict::ServeCachedOnly);
        // After the dwell with an empty queue the ladder steps home and
        // admissions are full-service again.
        let (_, transition) = c.release(MS, 20 * MS);
        assert_eq!(transition, Some(BrownoutState::Healthy));
        c.release(MS, 21 * MS);
        assert_eq!(c.offer(7, 22 * MS).verdict, Verdict::Serve);
    }

    #[test]
    fn control_without_ladder_is_pure_admission() {
        let mut c = OverloadControl::new(AdmissionConfig::fixed(1), None);
        assert_eq!(c.state(), BrownoutState::Healthy);
        assert_eq!(c.offer(1, 0).verdict, Verdict::Serve);
        assert_eq!(c.offer(2, 0).verdict, Verdict::Queued);
        let (drain, transition) = c.release(MS, MS);
        assert_eq!(drain.start, vec![2]);
        assert_eq!(transition, None);
        assert_eq!(c.admission().admitted_total(), 2);
    }
}

//! Fixture: `Bye` was added to the enum but never wired into `tag()`,
//! while `decode()` still carries its arm — so the variant has no tag
//! and the decode arm handles a tag nobody assigns. Never compiled.

pub enum Msg {
    Hello { proto: u8 },
    Data(Vec<u8>),
    Bye, // LINT-EXPECT: proto-conformance
}

impl Msg {
    fn tag(&self) -> u8 {
        match self {
            Msg::Hello { .. } => 0,
            Msg::Data { .. } => 1,
        }
    }

    fn encode(&self) {
        match self {
            Msg::Hello { .. } | Msg::Data { .. } => {}
            Msg::Bye => {}
        }
    }

    fn decode(tag: u8, buf: &mut Buf) -> Result<Msg, WireError> {
        Ok(match tag {
            0 => Msg::Hello { proto: 1 },
            1 => Msg::Data(buf.take_rest()),
            2 => Msg::Bye, // LINT-EXPECT: proto-conformance
            t => return Err(WireError::BadTag(t)),
        })
    }
}

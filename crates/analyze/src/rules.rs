//! Rule configuration: the checked-in `rules.toml` schema.
//!
//! ```toml
//! version = 1
//!
//! [[rule]]
//! id = "no-std-net"              # cited in findings and allow() comments
//! kind = "forbidden-path"        # see RuleKind
//! patterns = ["std::net"]        # token sequences (forbidden-path)
//! reason = "sans-IO: ..."        # human explanation shown per finding
//! paths = ["crates/*/src/**"]    # globs the rule applies to
//! exempt = ["crates/cli/**"]     # globs carved out again
//! ```
//!
//! Kinds and their extra keys:
//! * `forbidden-path` — `patterns`: token sequences that must not appear.
//! * `no-unwrap` — `methods` (optional, default `["unwrap", "expect"]`):
//!   method calls banned outside `#[cfg(test)]` / `#[test]` items.
//! * `crate-attr` — `attr`: an inner attribute (e.g. `forbid(unsafe_code)`)
//!   every matched file must carry.
//! * `no-index-hot-path` — bracket indexing (`xs[i]`, `&buf[..n]`) banned
//!   outside test code; provably-bounded sites carry `// lint: allow`.
//! * `paired-call` — `acquire`/`release`: a method call whose result must
//!   be settled by one of the release calls in the same function.
//! * `protocol-conformance` — `enum` (default `Msg`), `tag-fn` (default
//!   `tag`), `decode-fn` (default `decode`), `require-in` (default
//!   `["encode", "encoded_len"]`): wire-tag/arm consistency for the
//!   protocol enum.
//! * `lock-order-graph` — `declared` (optional `"a -> b"` edges),
//!   `receivers` (optional allowlist): a global acquisition graph over
//!   all matched files; any cycle is a finding. Workspace-level.
//! * `telemetry-registry` — `registry`: path (from the workspace root) to
//!   the telemetry name registry every metric/event literal must be
//!   declared in. Workspace-level.

use crate::lexer;
use crate::toml::{self, Table};

/// What a rule checks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuleKind {
    /// Token sequences that must not appear in code.
    ForbiddenPath {
        /// Each pattern, pre-lexed into its token texts.
        patterns: Vec<Vec<String>>,
        /// Whether matches inside `#[cfg(test)]` / `#[test]` items count.
        /// Defaults to false: timing tests may read real clocks, but e.g.
        /// socket bans set it to true — tests of sans-IO crates must stay
        /// sans-IO as well.
        include_tests: bool,
    },
    /// `.unwrap()` / `.expect()` (configurable) outside test code.
    NoUnwrap {
        /// Banned method names.
        methods: Vec<String>,
    },
    /// A required inner attribute, e.g. `forbid(unsafe_code)`.
    CrateAttr {
        /// The attribute body, pre-lexed into token texts.
        attr_tokens: Vec<String>,
        /// Human-readable form for messages.
        attr_text: String,
    },
    /// Bracket indexing outside test code: the `breakers[peer]` panic
    /// class. Bounded sites are suppressed in place with an allow.
    NoIndexHotPath,
    /// An acquire call whose result must be settled by a release call in
    /// the same function (the probe-grant / admission-slot leak class).
    PairedCall {
        /// Method name whose call sites start an obligation.
        acquire: String,
        /// Method names that settle it.
        releases: Vec<String>,
    },
    /// Wire-protocol conformance for a tagged enum: tags unique and
    /// dense, decode arms match `tag()`, every variant present in the
    /// required functions.
    ProtocolConformance {
        /// The enum name (`Msg`).
        enum_name: String,
        /// The tag-assignment method name.
        tag_fn: String,
        /// The decode function name.
        decode_fn: String,
        /// Functions whose bodies must mention every variant.
        require_in: Vec<String>,
    },
    /// Workspace-level: a global lock-acquisition graph built from every
    /// matched file; cycles (including against `declared` edges) are
    /// findings with the witnessing file:line chain.
    LockOrderGraph {
        /// Extra `(first, then)` edges declared in config.
        declared: Vec<(String, String)>,
        /// If non-empty, only these receiver names are tracked.
        receivers: Vec<String>,
    },
    /// Workspace-level: every telemetry name literal must be declared in
    /// the registry file, declarations must be live, and counter↔event
    /// pairs must be bumped/emitted from the same sites.
    TelemetryRegistry {
        /// Registry path, relative to the lint root.
        registry: String,
    },
}

impl RuleKind {
    /// Workspace-level kinds need every matched file at once; they run
    /// only under `lint_root`, never in single-file `lint_source`.
    pub fn is_workspace(&self) -> bool {
        matches!(
            self,
            RuleKind::LockOrderGraph { .. } | RuleKind::TelemetryRegistry { .. }
        )
    }
}

/// One configured rule.
#[derive(Debug, Clone)]
pub struct Rule {
    /// Identifier cited in findings and `// lint: allow(id, why)`.
    pub id: String,
    /// Human explanation attached to findings.
    pub reason: String,
    /// Globs selecting the files this rule applies to.
    pub paths: Vec<String>,
    /// Globs carved back out of `paths`.
    pub exempt: Vec<String>,
    /// 1-based line of this rule's `[[rule]]` header in the rules file
    /// (anchors findings about the config itself, e.g. dead exemptions).
    pub line: u32,
    /// The check itself.
    pub kind: RuleKind,
}

impl Rule {
    /// Does this rule apply to `rel_path`?
    pub fn applies_to(&self, rel_path: &str) -> bool {
        self.paths
            .iter()
            .any(|p| crate::glob::glob_match(p, rel_path))
            && !self
                .exempt
                .iter()
                .any(|p| crate::glob::glob_match(p, rel_path))
    }
}

/// Parse a rules file. Unknown kinds, missing ids, and schema errors all
/// fail parsing — a broken config must not silently lint nothing.
pub fn parse_rules(source: &str) -> Result<Vec<Rule>, String> {
    let doc = toml::parse(source)?;
    let tables = doc.tables.get("rule").map(Vec::as_slice).unwrap_or(&[]);
    let lines = doc
        .table_lines
        .get("rule")
        .map(Vec::as_slice)
        .unwrap_or(&[]);
    if tables.is_empty() {
        return Err("rules file defines no [[rule]] tables".into());
    }
    let mut rules = Vec::new();
    for (i, (table, line)) in tables.iter().zip(lines).enumerate() {
        rules.push(parse_rule(table, *line).map_err(|e| format!("[[rule]] #{}: {e}", i + 1))?);
    }
    let mut ids: Vec<&str> = rules.iter().map(|r| r.id.as_str()).collect();
    ids.sort_unstable();
    ids.dedup();
    if ids.len() != rules.len() {
        return Err("duplicate rule ids".into());
    }
    Ok(rules)
}

fn get_str(table: &Table, key: &str) -> Result<String, String> {
    table
        .get(key)
        .ok_or_else(|| format!("missing key `{key}`"))?
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| format!("key `{key}` must be a string"))
}

fn opt_str(table: &Table, key: &str, default: &str) -> Result<String, String> {
    match table.get(key) {
        None => Ok(default.to_string()),
        Some(v) => v
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| format!("key `{key}` must be a string")),
    }
}

fn get_str_array(table: &Table, key: &str) -> Result<Vec<String>, String> {
    table
        .get(key)
        .ok_or_else(|| format!("missing key `{key}`"))?
        .as_str_array()
        .map(<[String]>::to_vec)
        .ok_or_else(|| format!("key `{key}` must be an array of strings"))
}

fn opt_str_array(table: &Table, key: &str) -> Result<Vec<String>, String> {
    match table.get(key) {
        None => Ok(Vec::new()),
        Some(v) => v
            .as_str_array()
            .map(<[String]>::to_vec)
            .ok_or_else(|| format!("key `{key}` must be an array of strings")),
    }
}

/// Parse an `"a -> b"` edge declaration.
fn parse_edge(text: &str) -> Result<(String, String), String> {
    let (a, b) = text
        .split_once("->")
        .ok_or_else(|| format!("edge `{text}` must look like \"first -> then\""))?;
    let (a, b) = (a.trim(), b.trim());
    if a.is_empty() || b.is_empty() {
        return Err(format!("edge `{text}` must name both locks"));
    }
    Ok((a.to_string(), b.to_string()))
}

/// Lex a pattern/attribute string into its token texts.
fn lex_tokens(text: &str) -> Result<Vec<String>, String> {
    let lexed = lexer::lex(text);
    if lexed.tokens.is_empty() {
        return Err(format!("`{text}` contains no tokens"));
    }
    Ok(lexed.tokens.into_iter().map(|t| t.text).collect())
}

fn parse_rule(table: &Table, line: usize) -> Result<Rule, String> {
    let id = get_str(table, "id")?;
    let reason = get_str(table, "reason")?;
    let paths = get_str_array(table, "paths")?;
    let exempt = opt_str_array(table, "exempt")?;
    let kind = match get_str(table, "kind")?.as_str() {
        "forbidden-path" => {
            let patterns = get_str_array(table, "patterns")?
                .iter()
                .map(|p| lex_tokens(p))
                .collect::<Result<Vec<_>, _>>()?;
            let include_tests = match table.get("include-tests") {
                None => false,
                Some(toml::Value::Bool(b)) => *b,
                Some(_) => return Err("key `include-tests` must be a boolean".into()),
            };
            RuleKind::ForbiddenPath {
                patterns,
                include_tests,
            }
        }
        "no-unwrap" => {
            let methods = if table.get("methods").is_some() {
                get_str_array(table, "methods")?
            } else {
                vec!["unwrap".into(), "expect".into()]
            };
            RuleKind::NoUnwrap { methods }
        }
        "crate-attr" => {
            let attr_text = get_str(table, "attr")?;
            RuleKind::CrateAttr {
                attr_tokens: lex_tokens(&attr_text)?,
                attr_text,
            }
        }
        "no-index-hot-path" => RuleKind::NoIndexHotPath,
        "paired-call" => {
            let releases = get_str_array(table, "release")?;
            if releases.is_empty() {
                return Err("key `release` must name at least one call".into());
            }
            RuleKind::PairedCall {
                acquire: get_str(table, "acquire")?,
                releases,
            }
        }
        "protocol-conformance" => RuleKind::ProtocolConformance {
            enum_name: opt_str(table, "enum", "Msg")?,
            tag_fn: opt_str(table, "tag-fn", "tag")?,
            decode_fn: opt_str(table, "decode-fn", "decode")?,
            require_in: if table.get("require-in").is_some() {
                get_str_array(table, "require-in")?
            } else {
                vec!["encode".into(), "encoded_len".into()]
            },
        },
        "lock-order-graph" => RuleKind::LockOrderGraph {
            declared: opt_str_array(table, "declared")?
                .iter()
                .map(|e| parse_edge(e))
                .collect::<Result<Vec<_>, _>>()?,
            receivers: opt_str_array(table, "receivers")?,
        },
        "telemetry-registry" => RuleKind::TelemetryRegistry {
            registry: get_str(table, "registry")?,
        },
        other => return Err(format!("unknown rule kind `{other}`")),
    };
    Ok(Rule {
        id,
        reason,
        paths,
        exempt,
        line: line as u32,
        kind,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_kind() {
        let rules = parse_rules(
            r#"
[[rule]]
id = "a"
kind = "forbidden-path"
patterns = ["std::net", "Instant::now"]
reason = "r"
paths = ["**"]

[[rule]]
id = "b"
kind = "no-unwrap"
reason = "r"
paths = ["src/**"]
exempt = ["src/gen/**"]

[[rule]]
id = "c"
kind = "crate-attr"
attr = "forbid(unsafe_code)"
reason = "r"
paths = ["*/src/lib.rs"]

[[rule]]
id = "d"
kind = "lock-order-graph"
declared = ["cache -> touches"]
reason = "r"
paths = ["**"]

[[rule]]
id = "e"
kind = "no-index-hot-path"
reason = "r"
paths = ["**"]

[[rule]]
id = "f"
kind = "paired-call"
acquire = "offer"
release = ["release", "note_shed"]
reason = "r"
paths = ["**"]

[[rule]]
id = "g"
kind = "protocol-conformance"
reason = "r"
paths = ["src/protocol.rs"]

[[rule]]
id = "h"
kind = "telemetry-registry"
registry = "analyze/telemetry.toml"
reason = "r"
paths = ["**"]
"#,
        )
        .unwrap();
        assert_eq!(rules.len(), 8);
        assert_eq!(
            rules[0].kind,
            RuleKind::ForbiddenPath {
                patterns: vec![
                    vec!["std".into(), "::".into(), "net".into()],
                    vec!["Instant".into(), "::".into(), "now".into()],
                ],
                include_tests: false,
            }
        );
        assert!(rules[1].applies_to("src/a.rs"));
        assert!(!rules[1].applies_to("src/gen/a.rs"));
        assert!(
            matches!(&rules[2].kind, RuleKind::CrateAttr { attr_tokens, .. }
            if attr_tokens == &["forbid", "(", "unsafe_code", ")"])
        );
        assert!(
            matches!(&rules[3].kind, RuleKind::LockOrderGraph { declared, .. }
            if declared == &[("cache".to_string(), "touches".to_string())])
        );
        assert!(rules[3].kind.is_workspace());
        assert!(!rules[4].kind.is_workspace());
        assert!(
            matches!(&rules[5].kind, RuleKind::PairedCall { acquire, releases }
            if acquire == "offer" && releases.len() == 2)
        );
        assert!(
            matches!(&rules[6].kind, RuleKind::ProtocolConformance { enum_name, tag_fn, decode_fn, require_in }
            if enum_name == "Msg" && tag_fn == "tag" && decode_fn == "decode"
                && require_in == &["encode", "encoded_len"])
        );
        assert!(rules[7].kind.is_workspace());
        // Header lines anchor config-level findings.
        assert_eq!(rules[0].line, 2);
        assert!(rules[1].line > rules[0].line);
    }

    #[test]
    fn rejects_bad_configs() {
        assert!(parse_rules("").is_err());
        let err = parse_rules(
            "[[rule]]\nid = \"x\"\nkind = \"mystery\"\nreason = \"r\"\npaths = [\"**\"]",
        )
        .unwrap_err();
        assert!(err.contains("unknown rule kind"), "{err}");
        let err = parse_rules(
            "[[rule]]\nid = \"x\"\nkind = \"no-unwrap\"\nreason = \"r\"\npaths = [\"**\"]\n\
             [[rule]]\nid = \"x\"\nkind = \"no-unwrap\"\nreason = \"r\"\npaths = [\"**\"]",
        )
        .unwrap_err();
        assert!(err.contains("duplicate"), "{err}");
        let err = parse_rules(
            "[[rule]]\nid = \"x\"\nkind = \"lock-order-graph\"\ndeclared = [\"oops\"]\n\
             reason = \"r\"\npaths = [\"**\"]",
        )
        .unwrap_err();
        assert!(err.contains("first -> then"), "{err}");
        let err = parse_rules(
            "[[rule]]\nid = \"x\"\nkind = \"paired-call\"\nacquire = \"a\"\nrelease = []\n\
             reason = \"r\"\npaths = [\"**\"]",
        )
        .unwrap_err();
        assert!(err.contains("at least one"), "{err}");
    }
}

//! The sans-IO client request state machine.
//!
//! One request's lifecycle — prepare → descriptor query → hit/miss →
//! retry with backoff → deadline expiry → degrade-to-origin → edge
//! re-probe — lives here as a pure state machine. The engine performs no
//! IO and arms no real timers: drivers feed it events (timer fired, reply
//! arrived, transport failed) and it returns [`Effect`]s describing what
//! to do next. The simulator realizes effects with virtual timers and
//! simulated links; the live driver with sockets and sleeps. Both traverse
//! the same [`Decision`] trace for the same workload and fault schedule.

use super::clock::Clock;
use super::retry::RetryPolicy;
use super::stats::RobustnessStats;
use crate::qoe::{Path, Record};
use std::collections::HashMap;

/// Parameters of the client orchestration engine.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Per-path retry/backoff budget. The engine is the *only* consumer of
    /// [`RetryPolicy`]; drivers never compute backoffs.
    pub retry: RetryPolicy,
    /// Per-attempt reply deadline, ns. Zero disables deadline timers (only
    /// safe when the transport itself reports failures).
    pub deadline_ns: u64,
    /// While degraded, minimum spacing between edge re-probes, ns.
    pub probe_interval_ns: u64,
    /// Route requests through the cooperative edge path. `false` is the
    /// origin baseline: every request goes straight to the cloud.
    pub use_edge: bool,
    /// When the edge path is exhausted (retries spent or the edge answered
    /// `Unavailable`), degrade to the origin path instead of failing.
    pub origin_fallback: bool,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig {
            retry: RetryPolicy::default(),
            deadline_ns: 5_000_000_000,
            probe_interval_ns: 100_000_000,
            use_edge: true,
            origin_fallback: false,
        }
    }
}

/// Timer classes the engine arms. Drivers realize them: the simulator as
/// virtual timers, the live driver as socket read deadlines (`Deadline`),
/// sleeps (`Backoff`) or synchronous preprocessing (`Prep`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimerKind {
    /// Client-side preprocessing finishes, the request can transmit.
    Prep,
    /// Reply deadline for the current attempt.
    Deadline,
    /// Backoff before the next attempt.
    Backoff,
}

/// Reply classes a driver feeds into [`ClientEngine::on_reply`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplyKind {
    /// Edge cache hit.
    Hit,
    /// Miss answered through the cloud by the edge.
    Result,
    /// Miss answered by a cooperating peer edge.
    PeerResult,
    /// Origin-path (cloud-direct) reply.
    Baseline,
    /// The edge needs the full payload before it can execute.
    NeedPayload,
    /// The edge refused (its upstream leg is unavailable).
    Unavailable,
    /// The edge shed the request under overload, with a retry-after hint.
    Overloaded {
        /// Milliseconds the edge asked us to wait before retrying it.
        retry_after_ms: u32,
    },
}

/// A transport effect: what the driver must do next. The engine never
/// performs IO; it returns these instead.
#[derive(Debug, Clone, PartialEq)]
pub enum Effect {
    /// Send the descriptor query for this attempt to the edge.
    SendQuery {
        /// Wire request id.
        req_id: u64,
        /// Logical per-client request index (fault-schedule key).
        seq: u64,
        /// 0-based attempt on the edge path.
        attempt: u32,
    },
    /// Send the full task payload to the edge (answering `NeedPayload`).
    SendUpload {
        /// Wire request id.
        req_id: u64,
    },
    /// Send the request directly to the cloud (origin path).
    SendOrigin {
        /// Wire request id.
        req_id: u64,
        /// Logical per-client request index (fault-schedule key).
        seq: u64,
        /// 0-based attempt on the origin path.
        attempt: u32,
    },
    /// Test whether the edge is reachable again; report the outcome via
    /// [`ClientEngine::on_probe_result`].
    ProbeEdge {
        /// Wire request id of the request waiting on the probe.
        req_id: u64,
    },
    /// Arm a timer; when it fires, call [`ClientEngine::on_timer`] with
    /// the same kind and epoch (stale timers are ignored by epoch).
    ArmTimer {
        /// Wire request id.
        req_id: u64,
        /// What the timer means.
        kind: TimerKind,
        /// Staleness tag: echo back on firing.
        epoch: u32,
        /// Delay from now, ns.
        delay_ns: u64,
    },
    /// The request completed; the engine recorded this QoE sample.
    Complete {
        /// Wire request id.
        req_id: u64,
        /// The per-request QoE record (path, latency, retries).
        record: Record,
    },
    /// The request exhausted every path and failed.
    GiveUp {
        /// Wire request id.
        req_id: u64,
    },
}

/// One entry in the engine's decision trace. Decisions carry logical
/// coordinates only — no timestamps, no wire ids — so the simulator and
/// the live driver produce byte-identical sequences for the same seed and
/// fault schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Edge-path attempt issued.
    Attempt {
        /// Logical request index.
        seq: u64,
        /// 0-based attempt.
        attempt: u32,
    },
    /// The in-flight attempt failed (deadline expiry or transport error).
    AttemptFailed {
        /// Logical request index.
        seq: u64,
        /// 0-based attempt.
        attempt: u32,
    },
    /// A retry was scheduled.
    Retry {
        /// Logical request index.
        seq: u64,
        /// The attempt about to run.
        attempt: u32,
    },
    /// The edge asked for the payload; an upload was issued.
    Upload {
        /// Logical request index.
        seq: u64,
    },
    /// The edge answered `Unavailable`.
    Unavailable {
        /// Logical request index.
        seq: u64,
    },
    /// The edge shed the request under overload (`Msg::Overloaded`).
    Overloaded {
        /// Logical request index.
        seq: u64,
    },
    /// Cooperative path abandoned; client degraded to origin.
    Degrade {
        /// Logical request index.
        seq: u64,
    },
    /// A degraded client probed the edge.
    Probe {
        /// Logical request index.
        seq: u64,
    },
    /// The probe succeeded; client rejoined the cooperative path.
    Rejoin {
        /// Logical request index.
        seq: u64,
    },
    /// Origin-path attempt issued.
    OriginAttempt {
        /// Logical request index.
        seq: u64,
        /// 0-based attempt.
        attempt: u32,
    },
    /// The request completed via `path`.
    Complete {
        /// Logical request index.
        seq: u64,
        /// The serving path.
        path: Path,
    },
    /// The request failed on every path.
    Fail {
        /// Logical request index.
        seq: u64,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Prep,
    EdgeInFlight,
    EdgeBackoff,
    OriginInFlight,
    OriginBackoff,
    ProbeWait,
    Done,
    Failed,
}

#[derive(Debug)]
struct ReqState {
    seq: u64,
    kind: &'static str,
    issued_ns: u64,
    attempt: u32,
    retries: u32,
    epoch: u32,
    phase: Phase,
}

/// The client orchestration engine: a deterministic, sans-IO state machine
/// parameterized by a [`Clock`]. See the module docs for the event/effect
/// contract.
#[derive(Debug)]
pub struct ClientEngine<C: Clock> {
    cfg: EngineConfig,
    clock: C,
    stats: RobustnessStats,
    degraded: bool,
    last_probe_ns: Option<u64>,
    next_seq: u64,
    reqs: HashMap<u64, ReqState>,
    decisions: Vec<Decision>,
    records: Vec<Record>,
}

impl<C: Clock> ClientEngine<C> {
    /// An engine reading time from `clock` and counting transitions into
    /// `stats` (share the handle to observe them from outside).
    pub fn new(cfg: EngineConfig, clock: C, stats: RobustnessStats) -> ClientEngine<C> {
        ClientEngine {
            cfg,
            clock,
            stats,
            degraded: false,
            last_probe_ns: None,
            next_seq: 0,
            reqs: HashMap::new(),
            decisions: Vec::new(),
            records: Vec::new(),
        }
    }

    /// Begin a request. `issued_ns` is when the user asked (latency is
    /// measured from here); `prep_ns` is the client-side preprocessing
    /// cost, realized as the `Prep` timer (pass 0 when the driver already
    /// ran preprocessing synchronously).
    pub fn begin(
        &mut self,
        req_id: u64,
        kind: &'static str,
        issued_ns: u64,
        prep_ns: u64,
    ) -> Vec<Effect> {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.reqs.insert(
            req_id,
            ReqState {
                seq,
                kind,
                issued_ns,
                attempt: 0,
                retries: 0,
                epoch: 0,
                phase: Phase::Prep,
            },
        );
        vec![Effect::ArmTimer {
            req_id,
            kind: TimerKind::Prep,
            epoch: 0,
            delay_ns: prep_ns,
        }]
    }

    /// A timer armed by an earlier [`Effect::ArmTimer`] fired. Stale
    /// timers (superseded epoch, or the request already terminal) are
    /// ignored.
    pub fn on_timer(&mut self, req_id: u64, kind: TimerKind, epoch: u32) -> Vec<Effect> {
        let mut out = Vec::new();
        let Some(st) = self.reqs.get(&req_id) else {
            return out;
        };
        let valid = match kind {
            TimerKind::Prep => st.phase == Phase::Prep,
            TimerKind::Deadline => {
                epoch == st.epoch && matches!(st.phase, Phase::EdgeInFlight | Phase::OriginInFlight)
            }
            TimerKind::Backoff => {
                epoch == st.epoch && matches!(st.phase, Phase::EdgeBackoff | Phase::OriginBackoff)
            }
        };
        if !valid {
            return out;
        }
        let phase = st.phase;
        match kind {
            TimerKind::Prep => self.start_request(req_id, &mut out),
            TimerKind::Deadline => self.fail_attempt(req_id, &mut out),
            TimerKind::Backoff => {
                if phase == Phase::EdgeBackoff {
                    self.send_edge_attempt(req_id, &mut out);
                } else {
                    self.send_origin_attempt(req_id, &mut out);
                }
            }
        }
        out
    }

    /// A reply for `req_id` arrived. `correct` is the driver's recognition
    /// verdict for result-bearing replies (it owns the ground truth).
    /// Duplicate replies after completion are ignored.
    pub fn on_reply(
        &mut self,
        req_id: u64,
        reply: ReplyKind,
        correct: Option<bool>,
    ) -> Vec<Effect> {
        let mut out = Vec::new();
        let Some(st) = self.reqs.get(&req_id) else {
            return out;
        };
        if matches!(st.phase, Phase::Done | Phase::Failed) {
            return out; // duplicate reply after a retransmission
        }
        let seq = st.seq;
        match reply {
            ReplyKind::Hit => self.complete(req_id, Path::EdgeHit, correct, &mut out),
            ReplyKind::Result => self.complete(req_id, Path::CloudMiss, correct, &mut out),
            ReplyKind::PeerResult => self.complete(req_id, Path::PeerHit, correct, &mut out),
            ReplyKind::Baseline => {
                if self.cfg.use_edge {
                    self.stats.count_fallback();
                }
                self.complete(req_id, Path::Baseline, correct, &mut out);
            }
            ReplyKind::NeedPayload => {
                self.decisions.push(Decision::Upload { seq });
                out.push(Effect::SendUpload { req_id });
            }
            ReplyKind::Unavailable => {
                self.stats.count_unavailable();
                self.decisions.push(Decision::Unavailable { seq });
                if self.cfg.use_edge && self.cfg.origin_fallback {
                    self.degrade(req_id);
                    if let Some(st) = self.req_mut(req_id) {
                        st.attempt = 0;
                    }
                    self.send_origin_attempt(req_id, &mut out);
                } else {
                    self.give_up(req_id, &mut out);
                }
            }
            ReplyKind::Overloaded { retry_after_ms } => {
                self.stats.count_overloaded();
                self.decisions.push(Decision::Overloaded { seq });
                if self.cfg.use_edge && self.cfg.origin_fallback {
                    // Shed load routes to the cloud immediately — exactly
                    // what the retry-after hint wants a loaded edge spared
                    // of. The probe/rejoin ladder brings the client back
                    // once the edge answers again.
                    self.degrade(req_id);
                    if let Some(st) = self.req_mut(req_id) {
                        st.attempt = 0;
                    }
                    self.send_origin_attempt(req_id, &mut out);
                } else {
                    // No fallback: retry the edge, but honor the server's
                    // hint instead of the local backoff schedule.
                    let hint_ns = u64::from(retry_after_ms) * 1_000_000;
                    self.fail_attempt_with_hint(req_id, Some(hint_ns), &mut out);
                }
            }
        }
        out
    }

    /// The transport failed while an attempt was in flight (send error,
    /// read timeout, decode failure, injected fault). Funnels into the
    /// same failure path as a deadline expiry, so sim and live traces
    /// agree.
    pub fn on_transport_failure(&mut self, req_id: u64) -> Vec<Effect> {
        let mut out = Vec::new();
        let Some(st) = self.reqs.get(&req_id) else {
            return out;
        };
        if !matches!(st.phase, Phase::EdgeInFlight | Phase::OriginInFlight) {
            return out;
        }
        self.fail_attempt(req_id, &mut out);
        out
    }

    /// The driver finished the [`Effect::ProbeEdge`] reachability check.
    pub fn on_probe_result(&mut self, req_id: u64, ok: bool) -> Vec<Effect> {
        let mut out = Vec::new();
        let Some(st) = self.reqs.get(&req_id) else {
            return out;
        };
        if st.phase != Phase::ProbeWait {
            return out;
        }
        let seq = st.seq;
        if ok {
            self.degraded = false;
            self.stats.count_recovered();
            self.decisions.push(Decision::Rejoin { seq });
            self.send_edge_attempt(req_id, &mut out);
        } else {
            self.send_origin_attempt(req_id, &mut out);
        }
        out
    }

    /// Is the client on the origin (cloud-direct) path?
    pub fn is_degraded(&self) -> bool {
        self.degraded
    }

    /// Start degraded (the edge was unreachable at construction). Counts
    /// the transition but adds no per-request decision.
    pub fn begin_degraded(&mut self) {
        if !self.degraded {
            self.degraded = true;
            self.stats.count_degraded();
        }
    }

    /// The full decision trace so far, in event order.
    pub fn decisions(&self) -> &[Decision] {
        &self.decisions
    }

    /// Take the decisions accumulated since the last drain.
    pub fn drain_decisions(&mut self) -> Vec<Decision> {
        std::mem::take(&mut self.decisions)
    }

    /// QoE records of every completed request, in completion order.
    pub fn records(&self) -> &[Record] {
        &self.records
    }

    /// The engine's stats handle (shared with the constructor's argument).
    pub fn stats(&self) -> &RobustnessStats {
        &self.stats
    }

    fn start_request(&mut self, req_id: u64, out: &mut Vec<Effect>) {
        if !self.cfg.use_edge {
            return self.send_origin_attempt(req_id, out);
        }
        if !self.degraded {
            return self.send_edge_attempt(req_id, out);
        }
        let now = self.clock.now_ns();
        let due = self
            .last_probe_ns
            .map(|t| now.saturating_sub(t) >= self.cfg.probe_interval_ns)
            .unwrap_or(true);
        if due {
            self.last_probe_ns = Some(now);
            self.stats.count_probe();
            if let Some(st) = self.req_mut(req_id) {
                st.phase = Phase::ProbeWait;
                let seq = st.seq;
                self.decisions.push(Decision::Probe { seq });
                out.push(Effect::ProbeEdge { req_id });
            }
        } else {
            self.send_origin_attempt(req_id, out);
        }
    }

    /// Internal invariant: every effect and event carries a live request
    /// id. A stale or corrupt id (e.g. replayed by a misbehaving
    /// transport) must not panic the engine, so lookups degrade to a
    /// no-op outside debug builds instead of unwrapping.
    fn req_mut(&mut self, req_id: u64) -> Option<&mut ReqState> {
        let st = self.reqs.get_mut(&req_id);
        debug_assert!(st.is_some(), "unknown req_id {req_id}");
        st
    }

    fn send_edge_attempt(&mut self, req_id: u64, out: &mut Vec<Effect>) {
        self.stats.count_attempt();
        let deadline = self.cfg.deadline_ns;
        let Some(st) = self.req_mut(req_id) else {
            return;
        };
        st.phase = Phase::EdgeInFlight;
        st.epoch += 1;
        let (seq, attempt, epoch) = (st.seq, st.attempt, st.epoch);
        self.decisions.push(Decision::Attempt { seq, attempt });
        out.push(Effect::SendQuery {
            req_id,
            seq,
            attempt,
        });
        if deadline > 0 {
            out.push(Effect::ArmTimer {
                req_id,
                kind: TimerKind::Deadline,
                epoch,
                delay_ns: deadline,
            });
        }
    }

    fn send_origin_attempt(&mut self, req_id: u64, out: &mut Vec<Effect>) {
        self.stats.count_attempt();
        let deadline = self.cfg.deadline_ns;
        let Some(st) = self.req_mut(req_id) else {
            return;
        };
        st.phase = Phase::OriginInFlight;
        st.epoch += 1;
        let (seq, attempt, epoch) = (st.seq, st.attempt, st.epoch);
        self.decisions
            .push(Decision::OriginAttempt { seq, attempt });
        out.push(Effect::SendOrigin {
            req_id,
            seq,
            attempt,
        });
        if deadline > 0 {
            out.push(Effect::ArmTimer {
                req_id,
                kind: TimerKind::Deadline,
                epoch,
                delay_ns: deadline,
            });
        }
    }

    fn fail_attempt(&mut self, req_id: u64, out: &mut Vec<Effect>) {
        self.fail_attempt_with_hint(req_id, None, out);
    }

    /// Like [`ClientEngine::fail_attempt`], but with an optional
    /// server-supplied retry-after hint (ns) overriding the local backoff
    /// schedule for the next attempt's delay.
    fn fail_attempt_with_hint(&mut self, req_id: u64, hint_ns: Option<u64>, out: &mut Vec<Effect>) {
        let max = self.cfg.retry.max_attempts.max(1);
        let Some(st) = self.req_mut(req_id) else {
            return;
        };
        let on_edge = st.phase == Phase::EdgeInFlight;
        let seq = st.seq;
        let attempt = st.attempt;
        self.decisions
            .push(Decision::AttemptFailed { seq, attempt });
        let next = attempt + 1;
        if next < max {
            let Some(st) = self.req_mut(req_id) else {
                return;
            };
            st.attempt = next;
            st.retries += 1;
            st.epoch += 1;
            st.phase = if on_edge {
                Phase::EdgeBackoff
            } else {
                Phase::OriginBackoff
            };
            let epoch = st.epoch;
            self.stats.count_retry();
            self.decisions.push(Decision::Retry { seq, attempt: next });
            let delay = self.cfg.retry.backoff_with_hint(seq, next - 1, hint_ns);
            out.push(Effect::ArmTimer {
                req_id,
                kind: TimerKind::Backoff,
                epoch,
                delay_ns: delay.as_nanos() as u64,
            });
        } else if on_edge && self.cfg.origin_fallback {
            self.degrade(req_id);
            if let Some(st) = self.req_mut(req_id) {
                st.attempt = 0;
            }
            self.send_origin_attempt(req_id, out);
        } else {
            self.give_up(req_id, out);
        }
    }

    fn degrade(&mut self, req_id: u64) {
        self.degraded = true;
        self.last_probe_ns = Some(self.clock.now_ns());
        self.stats.count_degraded();
        if let Some(seq) = self.reqs.get(&req_id).map(|st| st.seq) {
            self.decisions.push(Decision::Degrade { seq });
        }
    }

    fn give_up(&mut self, req_id: u64, out: &mut Vec<Effect>) {
        let Some(st) = self.req_mut(req_id) else {
            return;
        };
        st.phase = Phase::Failed;
        let seq = st.seq;
        self.decisions.push(Decision::Fail { seq });
        out.push(Effect::GiveUp { req_id });
    }

    fn complete(&mut self, req_id: u64, path: Path, correct: Option<bool>, out: &mut Vec<Effect>) {
        let now = self.clock.now_ns();
        let Some(st) = self.req_mut(req_id) else {
            return;
        };
        st.phase = Phase::Done;
        let record = Record {
            req_id,
            kind: st.kind,
            issued_ns: st.issued_ns,
            completed_ns: now,
            path,
            correct,
            retries: st.retries,
        };
        let seq = st.seq;
        self.decisions.push(Decision::Complete { seq, path });
        self.records.push(record);
        out.push(Effect::Complete { req_id, record });
    }
}

#[cfg(test)]
mod tests {
    use super::super::clock::SimClock;
    use super::*;
    use coic_netsim::SimTime;
    use std::time::Duration;

    fn engine(cfg: EngineConfig) -> (ClientEngine<SimClock>, SimClock) {
        let clock = SimClock::new();
        let e = ClientEngine::new(cfg, clock.clone(), RobustnessStats::default());
        (e, clock)
    }

    fn fast_cfg() -> EngineConfig {
        EngineConfig {
            retry: RetryPolicy {
                max_attempts: 3,
                base_backoff: Duration::from_millis(1),
                max_backoff: Duration::from_millis(4),
                jitter_frac: 0.0,
                seed: 0,
            },
            deadline_ns: 1_000_000_000,
            probe_interval_ns: 100_000_000,
            use_edge: true,
            origin_fallback: true,
        }
    }

    #[test]
    fn happy_path_hit() {
        let (mut e, _c) = engine(fast_cfg());
        let effs = e.begin(1, "model", 0, 0);
        assert!(matches!(
            effs.as_slice(),
            [Effect::ArmTimer {
                kind: TimerKind::Prep,
                ..
            }]
        ));
        let effs = e.on_timer(1, TimerKind::Prep, 0);
        assert!(matches!(effs[0], Effect::SendQuery { attempt: 0, .. }));
        assert!(matches!(
            effs[1],
            Effect::ArmTimer {
                kind: TimerKind::Deadline,
                ..
            }
        ));
        let effs = e.on_reply(1, ReplyKind::Hit, None);
        assert!(matches!(effs.as_slice(), [Effect::Complete { .. }]));
        assert_eq!(
            e.decisions(),
            &[
                Decision::Attempt { seq: 0, attempt: 0 },
                Decision::Complete {
                    seq: 0,
                    path: Path::EdgeHit
                }
            ]
        );
    }

    #[test]
    fn exhausted_edge_degrades_to_origin() {
        let (mut e, _c) = engine(fast_cfg());
        e.begin(1, "panorama", 0, 0);
        e.on_timer(1, TimerKind::Prep, 0);
        for attempt in 0..3u32 {
            let effs = e.on_transport_failure(1);
            if attempt < 2 {
                assert!(matches!(
                    effs.as_slice(),
                    [Effect::ArmTimer {
                        kind: TimerKind::Backoff,
                        ..
                    }]
                ));
                let Effect::ArmTimer { epoch, .. } = effs[0] else {
                    unreachable!()
                };
                let next = e.on_timer(1, TimerKind::Backoff, epoch);
                assert!(matches!(next[0], Effect::SendQuery { .. }));
            } else {
                // Third failure: degrade and go to origin in one step.
                assert!(matches!(
                    effs[0],
                    Effect::SendOrigin {
                        seq: 0,
                        attempt: 0,
                        ..
                    }
                ));
            }
        }
        assert!(e.is_degraded());
        let effs = e.on_reply(1, ReplyKind::Baseline, None);
        assert!(matches!(effs.as_slice(), [Effect::Complete { .. }]));
        let snap = e.stats().snapshot();
        assert_eq!(snap.retries, 2);
        assert_eq!(snap.degraded_transitions, 1);
        assert_eq!(snap.fallbacks, 1);
    }

    #[test]
    fn no_transitions_from_terminal_states() {
        let (mut e, _c) = engine(fast_cfg());
        e.begin(1, "model", 0, 0);
        e.on_timer(1, TimerKind::Prep, 0);
        e.on_reply(1, ReplyKind::Hit, None);
        let before = e.decisions().len();
        assert!(e.on_reply(1, ReplyKind::Result, None).is_empty());
        assert!(e.on_transport_failure(1).is_empty());
        assert!(e.on_timer(1, TimerKind::Deadline, 1).is_empty());
        assert!(e.on_probe_result(1, true).is_empty());
        assert_eq!(e.decisions().len(), before, "terminal state must be quiet");
    }

    #[test]
    fn stale_deadline_from_old_attempt_is_ignored() {
        let (mut e, _c) = engine(fast_cfg());
        e.begin(1, "model", 0, 0);
        e.on_timer(1, TimerKind::Prep, 0);
        // Attempt 0 (epoch 1) fails; attempt 1 (epoch 3) is in flight.
        e.on_transport_failure(1);
        let effs = e.on_timer(1, TimerKind::Backoff, 2);
        assert!(matches!(effs[0], Effect::SendQuery { attempt: 1, .. }));
        // The old attempt's deadline fires late: must not fail attempt 1.
        assert!(e.on_timer(1, TimerKind::Deadline, 1).is_empty());
        let effs = e.on_reply(1, ReplyKind::Hit, None);
        assert!(matches!(effs.as_slice(), [Effect::Complete { .. }]));
    }

    #[test]
    fn degraded_client_probes_then_rejoins() {
        let (mut e, c) = engine(fast_cfg());
        e.begin_degraded();
        assert!(e.is_degraded());
        c.set(SimTime::from_secs(1));
        e.begin(1, "model", 1_000_000_000, 0);
        let effs = e.on_timer(1, TimerKind::Prep, 0);
        assert!(matches!(effs.as_slice(), [Effect::ProbeEdge { .. }]));
        let effs = e.on_probe_result(1, true);
        assert!(!e.is_degraded());
        assert!(matches!(effs[0], Effect::SendQuery { .. }));
        assert_eq!(
            e.decisions()[..2],
            [Decision::Probe { seq: 0 }, Decision::Rejoin { seq: 0 }]
        );
    }

    #[test]
    fn probe_interval_gates_reprobing() {
        let (mut e, c) = engine(fast_cfg());
        e.begin_degraded();
        c.set(SimTime::from_millis(10));
        e.begin(1, "model", 0, 0);
        let effs = e.on_timer(1, TimerKind::Prep, 0);
        assert!(matches!(effs.as_slice(), [Effect::ProbeEdge { .. }]));
        let effs = e.on_probe_result(1, false);
        assert!(matches!(effs[0], Effect::SendOrigin { .. }));
        // 10 ms later: probe not due (interval 100 ms) → origin directly.
        c.set(SimTime::from_millis(20));
        e.begin(2, "model", 20_000_000, 0);
        let effs = e.on_timer(2, TimerKind::Prep, 0);
        assert!(matches!(effs[0], Effect::SendOrigin { .. }));
    }

    #[test]
    fn origin_only_mode_never_touches_the_edge() {
        let (mut e, _c) = engine(EngineConfig {
            use_edge: false,
            ..fast_cfg()
        });
        e.begin(1, "recognition", 0, 0);
        let effs = e.on_timer(1, TimerKind::Prep, 0);
        assert!(matches!(effs[0], Effect::SendOrigin { .. }));
        let effs = e.on_reply(1, ReplyKind::Baseline, Some(true));
        let Effect::Complete { record, .. } = &effs[0] else {
            panic!("expected completion");
        };
        assert_eq!(record.path, Path::Baseline);
        // Origin mode is the baseline, not a fallback.
        assert_eq!(e.stats().snapshot().fallbacks, 0);
    }

    #[test]
    fn give_up_without_fallback() {
        let (mut e, _c) = engine(EngineConfig {
            origin_fallback: false,
            ..fast_cfg()
        });
        e.begin(1, "model", 0, 0);
        e.on_timer(1, TimerKind::Prep, 0);
        let mut last = Vec::new();
        for _ in 0..3 {
            last = e.on_transport_failure(1);
            if let Some(&Effect::ArmTimer {
                kind: TimerKind::Backoff,
                epoch,
                ..
            }) = last.first()
            {
                last = e.on_timer(1, TimerKind::Backoff, epoch);
                assert!(matches!(last[0], Effect::SendQuery { .. }));
            }
        }
        let effs = last;
        assert!(matches!(effs.as_slice(), [Effect::GiveUp { .. }]));
        assert!(matches!(e.decisions().last(), Some(Decision::Fail { .. })));
        assert!(!e.is_degraded());
    }

    #[test]
    fn late_reply_after_retry_still_completes_once() {
        let (mut e, _c) = engine(fast_cfg());
        e.begin(1, "model", 0, 0);
        e.on_timer(1, TimerKind::Prep, 0);
        e.on_transport_failure(1); // attempt 0 failed, backoff armed
                                   // The original reply races in while we are in backoff.
        let effs = e.on_reply(1, ReplyKind::Result, None);
        assert!(matches!(effs.as_slice(), [Effect::Complete { .. }]));
        // The armed backoff timer fires afterwards: stale, no new attempt.
        assert!(e.on_timer(1, TimerKind::Backoff, 2).is_empty());
        assert_eq!(e.records().len(), 1);
        assert_eq!(e.records()[0].retries, 1);
    }
}

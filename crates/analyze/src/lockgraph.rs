//! Lock-order graph: a workspace-level deadlock check.
//!
//! Every matched file contributes acquisition edges: taking lock `b`
//! while a guard on lock `a` is live adds the edge `a -> b` with the
//! acquiring `file:line` as witness. Config may add `declared` edges for
//! orders that are part of a module's contract even when no single file
//! exhibits the nesting. Any cycle in the combined graph — two paths
//! that nest the same locks in opposite orders — is a finding carrying
//! the full witnessing chain, because such paths can deadlock against
//! each other at runtime.
//!
//! Guard tracking is heuristic but deliberately simple and auditable: a
//! guard is born at `<receiver> . <lock-op> (`, named by its `let`
//! binding when there is one, and dies at end of block, at `drop(var)`,
//! or — for unbound temporaries — at the end of its statement. Lock
//! receivers are field/variable names, so two unrelated locks that share
//! a receiver name would merge; keep lock field names distinct (they are
//! in this workspace) or scope the rule's `paths`.

use std::collections::{BTreeMap, BTreeSet};

use crate::checks::{is_ident, test_spans};
use crate::lexer::Token;
use crate::rules::Rule;
use crate::Finding;

const LOCK_OPS: [&str; 4] = ["lock", "read", "write", "try_lock"];

/// Acquisition edges: `(held, acquired) -> sorted witness sites`.
pub(crate) type Edges = BTreeMap<(String, String), Vec<(String, u32)>>;

#[derive(Debug)]
struct LiveGuard {
    receiver: String,
    var: Option<String>,
    depth: i32,
}

/// Collect acquisition edges from one file into `edges`. `receivers`
/// non-empty restricts tracking to those names. Test items are skipped:
/// deadlocks there fail the harness loudly rather than a live edge node.
pub(crate) fn collect_edges(
    rel_path: &str,
    tokens: &[Token],
    receivers: &[String],
    edges: &mut Edges,
) {
    let tests = test_spans(tokens);
    let in_test = |idx: usize| tests.iter().any(|&(s, e)| idx >= s && idx < e);
    let tracked = |name: &str| receivers.is_empty() || receivers.iter().any(|r| r == name);
    let mut depth: i32 = 0;
    let mut live: Vec<LiveGuard> = Vec::new();
    let mut stmt_start = 0usize;
    for at in 0..tokens.len() {
        match tokens[at].text.as_str() {
            "{" => {
                depth += 1;
                stmt_start = at + 1;
            }
            "}" => {
                depth -= 1;
                live.retain(|g| g.depth <= depth);
                stmt_start = at + 1;
            }
            ";" => {
                // Unbound temporaries die with their statement.
                live.retain(|g| g.var.is_some() || g.depth < depth);
                stmt_start = at + 1;
            }
            "drop"
                if tokens.get(at + 1).map(|t| t.text.as_str()) == Some("(")
                    && tokens.get(at + 3).map(|t| t.text.as_str()) == Some(")") =>
            {
                if let Some(var) = tokens.get(at + 2) {
                    live.retain(|g| g.var.as_deref() != Some(var.text.as_str()));
                }
            }
            op if LOCK_OPS.contains(&op)
                && at >= 2
                && tokens[at - 1].text == "."
                && tokens.get(at + 1).map(|t| t.text.as_str()) == Some("(")
                && is_ident(&tokens[at - 2]) =>
            {
                let receiver = tokens[at - 2].text.clone();
                if !tracked(&receiver) || in_test(at) {
                    continue;
                }
                for g in &live {
                    if g.receiver != receiver {
                        edges
                            .entry((g.receiver.clone(), receiver.clone()))
                            .or_default()
                            .push((rel_path.to_string(), tokens[at].line));
                    }
                }
                live.push(LiveGuard {
                    receiver,
                    var: binding_name(&tokens[stmt_start..at]),
                    depth,
                });
            }
            _ => {}
        }
    }
}

/// Add the config-declared edges, witnessed by the rules file itself.
pub(crate) fn declared_edges(
    declared: &[(String, String)],
    rules_rel: &str,
    rule_line: u32,
    edges: &mut Edges,
) {
    for (first, then) in declared {
        edges
            .entry((first.clone(), then.clone()))
            .or_default()
            .push((rules_rel.to_string(), rule_line));
    }
}

/// Report every cycle in `edges` as one finding, anchored at the first
/// witness of the cycle's first edge and carrying the whole chain.
pub(crate) fn report_cycles(rule: &Rule, edges: &mut Edges, out: &mut Vec<Finding>) {
    for witnesses in edges.values_mut() {
        witnesses.sort();
        witnesses.dedup();
    }
    let nodes: BTreeSet<&String> = edges.keys().flat_map(|(a, b)| [a, b]).collect();
    let reaches = |from: &String, to: &String| -> bool {
        let mut seen: BTreeSet<&String> = BTreeSet::new();
        let mut stack = vec![from];
        while let Some(n) = stack.pop() {
            if !seen.insert(n) {
                continue;
            }
            for ((a, b), _) in edges.iter() {
                if a == n {
                    if b == to {
                        return true;
                    }
                    stack.push(b);
                }
            }
        }
        false
    };
    // Strongly connected components via mutual reachability; report each
    // once, keyed by its (sorted) node set for determinism.
    let mut reported: BTreeSet<Vec<String>> = BTreeSet::new();
    for &start in &nodes {
        let scc: Vec<String> = nodes
            .iter()
            .filter(|&&n| n == start || (reaches(start, n) && reaches(n, start)))
            .filter(|&&n| n == start || reaches(start, n))
            .map(|&n| n.clone())
            .collect();
        if scc.len() < 2 {
            continue;
        }
        // Only report from the SCC's smallest node, once.
        if start != scc.iter().min().expect("non-empty") || !reported.insert(scc.clone()) {
            continue;
        }
        let cycle = shortest_cycle(start, &scc, edges);
        let chain = cycle
            .windows(2)
            .map(|w| {
                let (file, line) = edges[&(w[0].clone(), w[1].clone())]
                    .first()
                    .expect("cycle edges have witnesses");
                format!("{} -> {} ({file}:{line})", w[0], w[1])
            })
            .collect::<Vec<_>>()
            .join(", ");
        let (file, line) = edges[&(cycle[0].clone(), cycle[1].clone())]
            .first()
            .expect("witnessed")
            .clone();
        out.push(Finding {
            file,
            line,
            rule: rule.id.clone(),
            message: format!("lock-order cycle: {chain}: {}", rule.reason),
        });
    }
}

/// Shortest cycle through `start` staying inside `scc` (BFS; exists by
/// construction of the SCC).
fn shortest_cycle(start: &String, scc: &[String], edges: &Edges) -> Vec<String> {
    let mut prev: BTreeMap<&String, &String> = BTreeMap::new();
    let mut queue = std::collections::VecDeque::new();
    queue.push_back(start);
    while let Some(n) = queue.pop_front() {
        for ((a, b), _) in edges.iter() {
            if a != n || !scc.contains(b) {
                continue;
            }
            if b == start {
                // Reconstruct start -> ... -> n -> start.
                let mut path = vec![start.clone()];
                let mut walk = n;
                let mut rev = vec![walk.clone()];
                while walk != start {
                    walk = prev[walk];
                    rev.push(walk.clone());
                }
                rev.pop(); // drop the duplicated start
                path.extend(rev.into_iter().rev());
                path.push(start.clone());
                return path;
            }
            if !prev.contains_key(b) && b != start {
                prev.insert(b, n);
                queue.push_back(b);
            }
        }
    }
    unreachable!("SCC guarantees a cycle through every member")
}

/// The variable a statement binds to the lock guard: last plain
/// identifier between `let` and `=` (handles `let mut x`). `None` for
/// statements that don't bind, and for lock calls nested inside another
/// call (`let p = take(&mut *x.lock())` — any `(` between `=` and the
/// lock op means the guard is a temporary, not what `let` binds).
fn binding_name(stmt: &[Token]) -> Option<String> {
    let let_at = stmt.iter().position(|t| t.text == "let")?;
    let eq_at = stmt.iter().position(|t| t.text == "=")?;
    if eq_at <= let_at {
        return None;
    }
    if stmt[eq_at + 1..].iter().any(|t| t.text == "(") {
        return None;
    }
    stmt[let_at + 1..eq_at]
        .iter()
        .rev()
        .find(|t| {
            t.text != "mut"
                && t.text
                    .chars()
                    .next()
                    .is_some_and(|c| c.is_alphabetic() || c == '_')
        })
        .map(|t| t.text.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::rules::parse_rules;

    fn rule(declared: &str) -> Rule {
        parse_rules(&format!(
            "[[rule]]\nid = \"cycles\"\nkind = \"lock-order-graph\"\n{declared}\
             reason = \"r\"\npaths = [\"**\"]"
        ))
        .unwrap()
        .remove(0)
    }

    fn run(files: &[(&str, &str)], declared: &str) -> Vec<String> {
        let r = rule(declared);
        let mut edges = Edges::new();
        for (path, src) in files {
            collect_edges(path, &lex(src).tokens, &[], &mut edges);
        }
        if let crate::rules::RuleKind::LockOrderGraph { declared, .. } = &r.kind {
            declared_edges(declared, "rules.toml", r.line, &mut edges);
        }
        let mut out = Vec::new();
        report_cycles(&r, &mut edges, &mut out);
        out.into_iter()
            .map(|f| format!("{}:{} {}", f.file, f.line, f.message))
            .collect()
    }

    #[test]
    fn consistent_order_is_clean() {
        let a = "fn f(&self) { let g = s.cache.write(); let h = s.touches.lock(); drop(h); }";
        let b = "fn g(&self) { let g = s.cache.read(); let q = s.touches.try_lock(); }";
        assert_eq!(run(&[("a.rs", a), ("b.rs", b)], ""), Vec::<String>::new());
    }

    #[test]
    fn opposite_orders_across_files_form_a_cycle() {
        let a = "fn f(&self) { let g = s.cache.write(); let h = s.touches.lock(); }";
        let b = "fn g(&self) { let h = s.touches.lock(); let g = s.cache.write(); }";
        let got = run(&[("a.rs", a), ("b.rs", b)], "");
        assert_eq!(got.len(), 1, "{got:?}");
        assert!(got[0].contains("lock-order cycle"), "{got}", got = got[0]);
        assert!(got[0].contains("a.rs:1"), "{got}", got = got[0]);
        assert!(got[0].contains("b.rs:1"), "{got}", got = got[0]);
    }

    #[test]
    fn declared_edge_catches_a_lone_reversal() {
        // No file nests cache under touches AND the reverse; the declared
        // contract supplies the forward edge.
        let b = "fn g(&self) { let h = s.touches.lock(); let g = s.cache.write(); }";
        let got = run(&[("b.rs", b)], "declared = [\"cache -> touches\"]\n");
        assert_eq!(got.len(), 1, "{got:?}");
        assert!(got[0].contains("rules.toml"), "{got}", got = got[0]);
    }

    #[test]
    fn three_party_cycle_is_reported_with_full_chain() {
        let a = "fn f() { let x = s.a.lock(); let y = s.b.lock(); }";
        let b = "fn f() { let x = s.b.lock(); let y = s.c.lock(); }";
        let c = "fn f() { let x = s.c.lock(); let y = s.a.lock(); }";
        let got = run(&[("a.rs", a), ("b.rs", b), ("c.rs", c)], "");
        assert_eq!(got.len(), 1, "{got:?}");
        assert!(got[0].contains("a -> b"), "{got}", got = got[0]);
        assert!(got[0].contains("b -> c"), "{got}", got = got[0]);
        assert!(got[0].contains("c -> a"), "{got}", got = got[0]);
    }

    #[test]
    fn temporaries_and_drops_do_not_leak_guards() {
        let src = "\
fn f(&self) {
    let p = std::mem::take(&mut *s.touches.lock());
    let g = s.cache.write();
}
fn g(&self) {
    let h = s.touches.lock();
    drop(h);
    let g = s.cache.write();
}
fn declared_order(&self) { let g = s.cache.write(); let h = s.touches.lock(); }
";
        assert_eq!(run(&[("a.rs", src)], ""), Vec::<String>::new());
    }

    #[test]
    fn test_items_do_not_contribute_edges() {
        let src = "\
fn f(&self) { let g = s.cache.write(); let h = s.touches.lock(); }
#[cfg(test)]
mod tests {
    fn t() { let h = s.touches.lock(); let g = s.cache.write(); }
}
";
        assert_eq!(run(&[("a.rs", src)], ""), Vec::<String>::new());
    }
}

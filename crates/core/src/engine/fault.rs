//! Deterministic fault schedules for chaos and determinism tests.
//!
//! A schedule names attempts to kill by `(seq, attempt)`, where `seq` is
//! the engine's per-client logical request index (0-based issue order) and
//! `attempt` the 0-based try on a path. Drivers consult the schedule at
//! their IO boundary: the simulator suppresses the send so the virtual
//! deadline fires; the live driver synthesizes an immediate transport
//! failure. Either way the engine sees the same `AttemptFailed` decision,
//! which is what makes sim and live traces byte-identical under faults.

use std::collections::{BTreeMap, BTreeSet};

/// A deterministic set of injected transport faults.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultSchedule {
    edge: BTreeSet<(u64, u32)>,
    edge_all: BTreeSet<u64>,
    origin: BTreeSet<(u64, u32)>,
    slow_edge: BTreeMap<u64, u64>,
}

impl FaultSchedule {
    /// An empty schedule (no injected faults).
    pub fn new() -> FaultSchedule {
        FaultSchedule::default()
    }

    /// Kill one edge-path attempt of logical request `seq`.
    pub fn drop_edge_attempt(mut self, seq: u64, attempt: u32) -> FaultSchedule {
        self.edge.insert((seq, attempt));
        self
    }

    /// Kill every edge-path attempt of logical request `seq`, forcing it
    /// through retry exhaustion into degrade-to-origin (or failure).
    pub fn drop_edge_request(mut self, seq: u64) -> FaultSchedule {
        self.edge_all.insert(seq);
        self
    }

    /// Kill one origin-path attempt of logical request `seq`.
    pub fn drop_origin_attempt(mut self, seq: u64, attempt: u32) -> FaultSchedule {
        self.origin.insert((seq, attempt));
        self
    }

    /// Slow the edge's service of logical request `seq` by `extra_ns` —
    /// the slow-service fault that drives an admission-controlled edge
    /// past its latency target (overload without packet loss).
    pub fn slow_edge_request(mut self, seq: u64, extra_ns: u64) -> FaultSchedule {
        self.slow_edge.insert(seq, extra_ns);
        self
    }

    /// Should this edge-path attempt be killed?
    pub fn edge_dropped(&self, seq: u64, attempt: u32) -> bool {
        self.edge_all.contains(&seq) || self.edge.contains(&(seq, attempt))
    }

    /// Extra service time (ns) injected into the edge's handling of
    /// logical request `seq`; zero when unscheduled.
    pub fn edge_slow_ns(&self, seq: u64) -> u64 {
        self.slow_edge.get(&seq).copied().unwrap_or(0)
    }

    /// Should this origin-path attempt be killed?
    pub fn origin_dropped(&self, seq: u64, attempt: u32) -> bool {
        self.origin.contains(&(seq, attempt))
    }

    /// True when the schedule injects nothing.
    pub fn is_empty(&self) -> bool {
        self.edge.is_empty()
            && self.edge_all.is_empty()
            && self.origin.is_empty()
            && self.slow_edge.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedules_target_specific_attempts() {
        let f = FaultSchedule::new()
            .drop_edge_attempt(3, 1)
            .drop_edge_request(5)
            .drop_origin_attempt(5, 0);
        assert!(!f.edge_dropped(3, 0));
        assert!(f.edge_dropped(3, 1));
        assert!(f.edge_dropped(5, 0) && f.edge_dropped(5, 7));
        assert!(f.origin_dropped(5, 0));
        assert!(!f.origin_dropped(5, 1));
        assert!(!f.origin_dropped(3, 1), "edge faults do not leak to origin");
        assert!(!f.is_empty());
        assert!(FaultSchedule::new().is_empty());
    }

    #[test]
    fn slow_service_faults_are_per_request_and_count_as_nonempty() {
        let f = FaultSchedule::new().slow_edge_request(2, 5_000_000);
        assert_eq!(f.edge_slow_ns(2), 5_000_000);
        assert_eq!(f.edge_slow_ns(3), 0);
        assert!(!f.edge_dropped(2, 0), "slowing is not dropping");
        assert!(!f.is_empty());
    }
}

//! Approximate-match cache over feature descriptors.
//!
//! The recognition half of CoIC's edge lookup: "If the distance between the
//! new feature descriptor and another one in the cache is under a certain
//! threshold, CoIC determines that the computation result is already in the
//! cache." Lookups go through a nearest-neighbour index (exact linear scan,
//! classic LSH, or one of the batch-built [`crate::ann`] families behind
//! the [`crate::ann::DynamicAnn`] adapter), eviction and byte accounting
//! through the shared [`Store`].

use crate::ann::{AnnFamily, DynamicAnn};
use crate::policy::PolicyKind;
use crate::stats::CacheStats;
use crate::store::Store;
use coic_vision::features::FeatureVec;
use coic_vision::index::{LinearIndex, LshIndex, NnIndex};
use coic_vision::Metric;

/// Which nearest-neighbour structure backs the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexKind {
    /// Exact linear scan (small caches, ground truth).
    Linear,
    /// Classic incremental random-hyperplane LSH with the given
    /// tables × bits (the mutex-era baseline index).
    Lsh {
        /// Number of independent hash tables.
        tables: usize,
        /// Signature bits per table.
        bits: usize,
    },
    /// Multi-probe LSH ([`crate::ann::MultiProbeLsh`]): batch-built,
    /// probes margin-ranked neighbouring buckets instead of piling on
    /// tables.
    MultiProbeLsh {
        /// Number of independent hash tables.
        tables: usize,
        /// Signature bits per table.
        bits: usize,
        /// Buckets probed per table per lookup.
        probes: usize,
    },
    /// HNSW-style layered graph ([`crate::ann::HnswIndex`]): batch-built,
    /// greedy upper-level descent plus a beam search at the base layer.
    Hnsw {
        /// Maximum links per node above the base layer.
        max_links: usize,
        /// Beam width at the base layer.
        ef_search: usize,
    },
}

impl IndexKind {
    /// Default multi-probe LSH configuration (mirrors
    /// [`AnnFamily::DEFAULT_MPLSH`]).
    pub const DEFAULT_MPLSH: IndexKind = IndexKind::MultiProbeLsh {
        tables: 4,
        bits: 8,
        probes: 8,
    };

    /// Default HNSW configuration (mirrors [`AnnFamily::DEFAULT_HNSW`]).
    pub const DEFAULT_HNSW: IndexKind = IndexKind::Hnsw {
        max_links: 8,
        ef_search: 24,
    };

    /// Stable label for configs, CLI flags, and bench cell names.
    pub fn label(&self) -> &'static str {
        match self {
            IndexKind::Linear => "linear",
            IndexKind::Lsh { .. } => "lsh",
            IndexKind::MultiProbeLsh { .. } => "mp-lsh",
            IndexKind::Hnsw { .. } => "hnsw",
        }
    }

    /// Parse a label back into a kind with default parameters
    /// (`linear`, `lsh`, `mp-lsh`, `hnsw`).
    pub fn parse(name: &str) -> Option<IndexKind> {
        match name {
            "linear" => Some(IndexKind::Linear),
            "lsh" => Some(IndexKind::Lsh { tables: 8, bits: 8 }),
            "mp-lsh" | "mplsh" => Some(IndexKind::DEFAULT_MPLSH),
            "hnsw" => Some(IndexKind::DEFAULT_HNSW),
            _ => None,
        }
    }

    /// The batch-built [`AnnFamily`] equivalent of this kind, used by the
    /// snapshot cache (classic `Lsh` maps to multi-probe with default
    /// probing — the snapshot path has no incremental index).
    pub fn ann_family(&self) -> AnnFamily {
        match *self {
            IndexKind::Linear => AnnFamily::Linear,
            IndexKind::Lsh { tables, bits } => AnnFamily::MultiProbeLsh {
                tables,
                bits,
                probes: 8,
            },
            IndexKind::MultiProbeLsh {
                tables,
                bits,
                probes,
            } => AnnFamily::MultiProbeLsh {
                tables,
                bits,
                probes,
            },
            IndexKind::Hnsw {
                max_links,
                ef_search,
            } => AnnFamily::Hnsw {
                max_links,
                ef_search,
            },
        }
    }
}

/// Outcome of an approximate lookup.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ApproxLookup {
    /// A cached descriptor was within threshold, at this distance.
    Hit {
        /// Internal id of the matched entry.
        id: u64,
        /// Distance between query and the matched descriptor.
        distance: f32,
    },
    /// Nothing within threshold (closest distance reported if any).
    Miss {
        /// Distance to the nearest cached descriptor, if the cache was
        /// non-empty.
        nearest: Option<f32>,
    },
}

/// A feature-descriptor-keyed approximate cache.
///
/// # Examples
/// ```
/// use coic_cache::{ApproxCache, ApproxLookup, IndexKind, PolicyKind};
/// use coic_vision::FeatureVec;
///
/// let mut cache: ApproxCache<&str> =
///     ApproxCache::new(1024, PolicyKind::Lru, 0.5, IndexKind::Linear, 2);
/// cache.insert(FeatureVec::new(vec![1.0, 0.0]), "stop sign", 64, 0);
/// // A nearby descriptor (another user's view of the same sign) hits.
/// match cache.lookup(&FeatureVec::new(vec![0.95, 0.05]), 1) {
///     ApproxLookup::Hit { id, .. } => assert_eq!(cache.value(id), Some(&"stop sign")),
///     miss => panic!("expected a hit, got {miss:?}"),
/// }
/// ```
pub struct ApproxCache<V> {
    store: Store<u64, (FeatureVec, V)>,
    index: Box<dyn NnIndex + Send + Sync>,
    threshold: f32,
    next_id: u64,
    stats: CacheStats,
}

impl<V> ApproxCache<V> {
    /// Create a cache: hits require distance ≤ `threshold` (L2 over the
    /// descriptor embedding).
    ///
    /// # Panics
    /// Panics if `threshold` is not positive and finite, or `dim == 0` for
    /// an LSH index.
    pub fn new(
        capacity_bytes: u64,
        policy: PolicyKind,
        threshold: f32,
        index: IndexKind,
        dim: usize,
    ) -> Self {
        assert!(
            threshold.is_finite() && threshold > 0.0,
            "threshold must be positive"
        );
        let index: Box<dyn NnIndex + Send + Sync> = match index {
            IndexKind::Linear => Box::new(LinearIndex::new(Metric::L2)),
            IndexKind::Lsh { tables, bits } => {
                Box::new(LshIndex::new(dim, tables, bits, 0xC01C_15E3))
            }
            kind @ (IndexKind::MultiProbeLsh { .. } | IndexKind::Hnsw { .. }) => Box::new(
                DynamicAnn::new(kind.ann_family(), dim, crate::ann::DEFAULT_REBUILD_BATCH)
                    .with_radius(threshold),
            ),
        };
        ApproxCache {
            store: Store::new(capacity_bytes, policy, None),
            index,
            threshold,
            next_id: 0,
            stats: CacheStats::default(),
        }
    }

    /// The hit threshold.
    pub fn threshold(&self) -> f32 {
        self.threshold
    }

    /// Change the hit threshold (the threshold-sweep ablation).
    pub fn set_threshold(&mut self, threshold: f32) {
        assert!(
            threshold.is_finite() && threshold > 0.0,
            "threshold must be positive"
        );
        self.threshold = threshold;
    }

    /// Look up the nearest cached descriptor; a hit requires distance ≤
    /// threshold. Hits update recency.
    pub fn lookup(&mut self, query: &FeatureVec, now_ns: u64) -> ApproxLookup {
        match self.index.nearest(query) {
            Some((id, distance)) if distance <= self.threshold => {
                // Touch the entry for the eviction policy.
                let touched = self.store.get(&id, now_ns).is_some();
                debug_assert!(touched, "index and store out of sync for id {id}");
                self.stats.hits += 1;
                ApproxLookup::Hit { id, distance }
            }
            Some((_, distance)) => {
                self.stats.misses += 1;
                ApproxLookup::Miss {
                    nearest: Some(distance),
                }
            }
            None => {
                self.stats.misses += 1;
                ApproxLookup::Miss { nearest: None }
            }
        }
    }

    /// Read-only lookup through a shared reference: same hit/miss decision
    /// as [`ApproxCache::lookup`] but records no stats and refreshes no
    /// recency. Callers that count hits externally (e.g. in atomics) pair
    /// this with [`ApproxCache::touch`] to replay recency later.
    pub fn lookup_ro(&self, query: &FeatureVec) -> ApproxLookup {
        match self.index.nearest(query) {
            Some((id, distance)) if distance <= self.threshold => {
                ApproxLookup::Hit { id, distance }
            }
            Some((_, distance)) => ApproxLookup::Miss {
                nearest: Some(distance),
            },
            None => ApproxLookup::Miss { nearest: None },
        }
    }

    /// Replay a read-path hit's recency effect for entry `id`; returns
    /// `false` when the entry is gone (see [`crate::store::Store::touch`]).
    pub fn touch(&mut self, id: u64, now_ns: u64) -> bool {
        self.store.touch(&id, now_ns)
    }

    /// Fetch the value of a previously returned hit id.
    pub fn value(&self, id: u64) -> Option<&V> {
        self.store.peek(&id).map(|(_, v)| v)
    }

    /// Insert a descriptor/result pair of `size` bytes. Evicted entries are
    /// removed from the index; returns how many were evicted.
    pub fn insert(&mut self, descriptor: FeatureVec, value: V, size: u64, now_ns: u64) -> usize {
        let id = self.next_id;
        self.next_id += 1;
        self.index.insert(id, descriptor.clone());
        let evicted = self.store.insert(id, (descriptor, value), size, now_ns);
        // An oversized rejection leaves the index entry dangling: undo it.
        if self.store.peek(&id).is_none() {
            self.index.remove(id);
        }
        for (eid, _) in &evicted {
            self.index.remove(*eid);
        }
        self.stats.insertions += 1;
        self.stats.evictions += evicted.len() as u64;
        evicted.len()
    }

    /// Compact the cache: greedily merge entries whose descriptors lie
    /// within `merge_radius` of an earlier entry *and* whose values the
    /// caller deems equivalent (e.g. same recognition label). Co-located
    /// users inserting near-identical observations bloat the cache with
    /// redundant entries; compaction reclaims that space at a bounded
    /// coverage cost: by the triangle inequality, any query that would
    /// have hit a removed entry at distance `d` hits its survivor at
    /// `≤ d + merge_radius`, so choosing `merge_radius` well under the
    /// threshold keeps nearly all hits.
    ///
    /// Returns the number of entries removed. O(n²) in cache entries —
    /// intended as periodic housekeeping, not a per-request operation.
    pub fn compact_with<F>(&mut self, merge_radius: f32, mergeable: F) -> usize
    where
        F: Fn(&V, &V) -> bool,
    {
        use coic_vision::distance::l2;
        let mut ids: Vec<u64> = self.store.iter().map(|(&k, _)| k).collect();
        ids.sort_unstable();
        let mut dead: Vec<u64> = Vec::new();
        let mut dead_set = std::collections::HashSet::new();
        for i in 0..ids.len() {
            let a = ids[i];
            if dead_set.contains(&a) {
                continue;
            }
            let (va, vala) = self.store.peek(&a).expect("live id");
            let va = va.clone();
            let vala_owned: &V = vala;
            for &b in &ids[i + 1..] {
                if dead_set.contains(&b) {
                    continue;
                }
                let (vb, valb) = self.store.peek(&b).expect("live id");
                if l2(&va, vb) <= merge_radius && mergeable(vala_owned, valb) {
                    dead.push(b);
                    dead_set.insert(b);
                }
            }
        }
        for b in &dead {
            self.store.remove(b);
            self.index.remove(*b);
        }
        dead.len()
    }

    /// Fold any journaled index maintenance (batch rebuilds for the ANN
    /// families; a no-op for the incremental indexes). The engine tick
    /// drives this so rebuild cost lands at deterministic points instead
    /// of mid-lookup. Returns how many journaled mutations were folded.
    pub fn maintain(&mut self) -> usize {
        self.index.maintain()
    }

    /// Lookup counters (hits/misses counted at this layer).
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Number of cached descriptors.
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }

    /// Bytes in use.
    pub fn used_bytes(&self) -> u64 {
        self.store.used_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(data: &[f32]) -> FeatureVec {
        FeatureVec::new(data.to_vec())
    }

    fn cache(threshold: f32) -> ApproxCache<&'static str> {
        ApproxCache::new(10_000, PolicyKind::Lru, threshold, IndexKind::Linear, 2)
    }

    #[test]
    fn within_threshold_hits() {
        let mut c = cache(0.5);
        c.insert(v(&[1.0, 0.0]), "stop sign", 100, 0);
        match c.lookup(&v(&[1.1, 0.1]), 0) {
            ApproxLookup::Hit { id, distance } => {
                assert!(distance < 0.2);
                assert_eq!(c.value(id), Some(&"stop sign"));
            }
            other => panic!("expected hit, got {other:?}"),
        }
        assert_eq!(c.stats().hits, 1);
    }

    #[test]
    fn outside_threshold_misses_with_nearest() {
        let mut c = cache(0.1);
        c.insert(v(&[1.0, 0.0]), "a", 100, 0);
        match c.lookup(&v(&[0.0, 1.0]), 0) {
            ApproxLookup::Miss { nearest: Some(d) } => assert!(d > 1.0),
            other => panic!("expected miss, got {other:?}"),
        }
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn empty_cache_misses_without_nearest() {
        let mut c = cache(0.5);
        assert_eq!(
            c.lookup(&v(&[0.0, 0.0]), 0),
            ApproxLookup::Miss { nearest: None }
        );
    }

    #[test]
    fn eviction_keeps_index_in_sync() {
        let mut c: ApproxCache<u32> =
            ApproxCache::new(250, PolicyKind::Lru, 0.5, IndexKind::Linear, 2);
        // 100 B each: only two fit.
        c.insert(v(&[0.0, 0.0]), 0, 100, 0);
        c.insert(v(&[10.0, 0.0]), 1, 100, 0);
        c.insert(v(&[20.0, 0.0]), 2, 100, 0); // evicts the first
        assert_eq!(c.len(), 2);
        // The evicted descriptor must not be findable anymore.
        match c.lookup(&v(&[0.0, 0.0]), 0) {
            ApproxLookup::Miss { nearest: Some(d) } => assert!(d > 5.0),
            other => panic!("expected miss, got {other:?}"),
        }
        // The survivors still hit.
        assert!(matches!(
            c.lookup(&v(&[10.0, 0.0]), 0),
            ApproxLookup::Hit { .. }
        ));
        assert!(matches!(
            c.lookup(&v(&[20.0, 0.0]), 0),
            ApproxLookup::Hit { .. }
        ));
    }

    #[test]
    fn oversized_insert_leaves_no_ghost_in_index() {
        let mut c: ApproxCache<u32> =
            ApproxCache::new(50, PolicyKind::Lru, 0.5, IndexKind::Linear, 2);
        c.insert(v(&[1.0, 1.0]), 9, 1_000, 0); // larger than capacity
        assert_eq!(c.len(), 0);
        assert_eq!(
            c.lookup(&v(&[1.0, 1.0]), 0),
            ApproxLookup::Miss { nearest: None }
        );
    }

    #[test]
    fn threshold_sweep_changes_hit_boundary() {
        let mut c = cache(0.05);
        c.insert(v(&[1.0, 0.0]), "x", 100, 0);
        let probe = v(&[1.3, 0.0]);
        assert!(matches!(c.lookup(&probe, 0), ApproxLookup::Miss { .. }));
        c.set_threshold(0.5);
        assert!(matches!(c.lookup(&probe, 0), ApproxLookup::Hit { .. }));
    }

    #[test]
    fn lsh_backend_behaves_like_linear_for_hits() {
        // Random-hyperplane LSH is an *angular* scheme: it groups vectors
        // pointing the same way. Use angularly separated descriptors and
        // small angular perturbations as queries (which is exactly what
        // SimNet's unit-norm embeddings look like).
        let mut lin = cache(0.3);
        let mut lsh: ApproxCache<&'static str> = ApproxCache::new(
            10_000,
            PolicyKind::Lru,
            0.3,
            IndexKind::Lsh { tables: 8, bits: 6 },
            2,
        );
        let stored = [
            ([1.0f32, 0.0], "east"),
            ([0.0, 1.0], "north"),
            ([-1.0, 0.0], "west"),
            ([0.0, -1.0], "south"),
        ];
        for (d, name) in stored {
            lin.insert(v(&d), name, 10, 0);
            lsh.insert(v(&d), name, 10, 0);
        }
        for q in [[0.99f32, 0.05], [-0.03, 0.98], [-1.02, 0.02], [0.6, 0.6]] {
            let a = matches!(lin.lookup(&v(&q), 0), ApproxLookup::Hit { .. });
            let b = matches!(lsh.lookup(&v(&q), 0), ApproxLookup::Hit { .. });
            assert_eq!(a, b, "disagreement at {q:?}");
        }
    }

    #[test]
    fn compaction_merges_near_duplicates() {
        let mut c: ApproxCache<u32> =
            ApproxCache::new(1 << 20, PolicyKind::Lru, 0.5, IndexKind::Linear, 2);
        // Three near-identical descriptors with the same label, one distant.
        c.insert(v(&[1.0, 0.0]), 7, 100, 0);
        c.insert(v(&[1.01, 0.0]), 7, 100, 1);
        c.insert(v(&[0.99, 0.01]), 7, 100, 2);
        c.insert(v(&[0.0, 1.0]), 9, 100, 3);
        let removed = c.compact_with(0.1, |a, b| a == b);
        assert_eq!(removed, 2);
        assert_eq!(c.len(), 2);
        // Coverage preserved: queries near the merged cluster still hit.
        assert!(matches!(
            c.lookup(&v(&[1.0, 0.05]), 4),
            ApproxLookup::Hit { .. }
        ));
        assert!(matches!(
            c.lookup(&v(&[0.0, 1.0]), 5),
            ApproxLookup::Hit { .. }
        ));
    }

    #[test]
    fn compaction_respects_value_equivalence() {
        let mut c: ApproxCache<u32> =
            ApproxCache::new(1 << 20, PolicyKind::Lru, 0.5, IndexKind::Linear, 2);
        // Near-identical descriptors but *different* labels must survive.
        c.insert(v(&[1.0, 0.0]), 1, 100, 0);
        c.insert(v(&[1.01, 0.0]), 2, 100, 1);
        assert_eq!(c.compact_with(0.1, |a, b| a == b), 0);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn compaction_on_empty_cache_is_noop() {
        let mut c: ApproxCache<u32> =
            ApproxCache::new(1 << 20, PolicyKind::Lru, 0.5, IndexKind::Linear, 2);
        assert_eq!(c.compact_with(0.2, |_, _| true), 0);
    }

    #[test]
    fn ann_backends_behave_like_linear_for_hits() {
        let mut caches: Vec<ApproxCache<&'static str>> = vec![
            cache(0.3),
            ApproxCache::new(10_000, PolicyKind::Lru, 0.3, IndexKind::DEFAULT_MPLSH, 2),
            ApproxCache::new(10_000, PolicyKind::Lru, 0.3, IndexKind::DEFAULT_HNSW, 2),
        ];
        let stored = [
            ([1.0f32, 0.0], "east"),
            ([0.0, 1.0], "north"),
            ([-1.0, 0.0], "west"),
            ([0.0, -1.0], "south"),
        ];
        for c in &mut caches {
            for (d, name) in stored {
                c.insert(v(&d), name, 10, 0);
            }
            c.maintain();
        }
        for q in [[0.99f32, 0.05], [-0.03, 0.98], [-1.02, 0.02], [0.6, 0.6]] {
            let truth = matches!(caches[0].lookup(&v(&q), 0), ApproxLookup::Hit { .. });
            for c in &mut caches[1..] {
                let got = matches!(c.lookup(&v(&q), 0), ApproxLookup::Hit { .. });
                assert_eq!(truth, got, "disagreement at {q:?}");
            }
        }
    }

    #[test]
    fn maintain_is_noop_for_incremental_indexes() {
        let mut c = cache(0.5);
        c.insert(v(&[1.0, 0.0]), "x", 100, 0);
        assert_eq!(c.maintain(), 0);
    }

    #[test]
    fn index_kind_labels_roundtrip() {
        for kind in [
            IndexKind::Linear,
            IndexKind::Lsh { tables: 8, bits: 8 },
            IndexKind::DEFAULT_MPLSH,
            IndexKind::DEFAULT_HNSW,
        ] {
            assert_eq!(IndexKind::parse(kind.label()), Some(kind));
        }
        assert_eq!(IndexKind::parse("nope"), None);
        // Every kind maps onto a buildable ANN family.
        for kind in [
            IndexKind::Linear,
            IndexKind::Lsh { tables: 2, bits: 4 },
            IndexKind::DEFAULT_MPLSH,
            IndexKind::DEFAULT_HNSW,
        ] {
            let built = kind.ann_family().build(2, vec![(0, v(&[1.0, 0.0]))]);
            assert_eq!(built.len(), 1);
        }
    }

    #[test]
    #[should_panic(expected = "threshold must be positive")]
    fn bad_threshold_rejected() {
        let _ = cache(-1.0);
    }
}

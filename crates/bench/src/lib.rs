//! Shared helpers for the figure-reproduction binaries and benches.
//!
//! Each binary in `src/bin/` regenerates one paper figure or one extension
//! experiment (see DESIGN.md §5 and EXPERIMENTS.md); this crate holds the
//! standard workloads and table formatting they share.

#![forbid(unsafe_code)]

use coic_core::simrun::{Mode, SimConfig};
use coic_core::QoeReport;
use coic_workload::{Population, Request, SafeDrivingAr, VrVideo, ZoneId, ZoneModel};

pub mod json;
pub mod load;
pub mod perf;

/// The standard recognition workload behind Fig. 2a and several ablations:
/// co-located safe-driving users over a shared landmark pool.
///
/// Calibration: 4 users, 100 landmarks, Zipf(0.5) — moderate redundancy.
/// This puts the simulated hit ratio near 50%, which lands the peak
/// latency reduction in the neighbourhood the paper reports (52.28%);
/// smaller pools / heavier skew push the reduction well past the paper's
/// numbers (see the `ext_sharing` ablation).
pub fn fig2a_trace(requests: usize, seed: u64) -> Vec<Request> {
    SafeDrivingAr {
        population: Population::colocated(4, ZoneId(0)),
        zones: ZoneModel::new(1, 100, 1.0, 3),
        rate_per_sec: 4.0,
        zipf_s: 0.5,
        total_requests: requests,
    }
    .generate(seed)
}

/// A render-load trace where `users` co-located players repeatedly load a
/// palette of `num_models` models of `size_bytes` each.
pub fn render_trace(
    users: u32,
    num_models: u64,
    size_bytes: u64,
    requests: usize,
    seed: u64,
) -> Vec<Request> {
    let models: Vec<(u64, u64)> = (0..num_models).map(|i| (i, size_bytes)).collect();
    coic_workload::ArenaMultiplayer {
        population: Population::colocated(users, ZoneId(0)),
        models,
        zipf_s: 0.9,
        rate_per_sec: 0.5,
        total_requests: requests,
    }
    .generate(seed)
}

/// The synchronized co-watching panorama trace (experiment Ext D).
pub fn vr_trace(viewers: u32, frames: usize, stagger_ms: u64, seed: u64) -> Vec<Request> {
    VrVideo {
        population: Population::colocated(viewers, ZoneId(0)),
        frame_interval_ns: 100_000_000,
        max_start_skew_frames: 0,
        user_stagger_ns: stagger_ms * 1_000_000,
        frames_per_user: frames,
    }
    .generate(seed)
}

/// Run one trace under origin and CoIC with the given network condition.
pub fn run_pair(trace: &[Request], base: &SimConfig) -> (QoeReport, QoeReport, f64) {
    coic_core::simrun::compare(trace, base)
}

/// A network condition labelled like the paper's figure axes.
#[derive(Debug, Clone, Copy)]
pub struct NetCondition {
    /// `B_M->E` in Mbit/s.
    pub access_mbps: f64,
    /// `B_E->C` in Mbit/s.
    pub wan_mbps: f64,
}

impl NetCondition {
    /// Apply this condition to a config.
    pub fn apply(&self, cfg: &SimConfig) -> SimConfig {
        SimConfig {
            access_mbps: self.access_mbps,
            wan_mbps: self.wan_mbps,
            ..cfg.clone()
        }
    }
}

/// The grid of network conditions Fig. 2a sweeps: the paper's WiFi supports
/// up to 400 Mbps and `tc` throttles both segments.
pub const FIG2A_CONDITIONS: [NetCondition; 8] = [
    NetCondition {
        access_mbps: 400.0,
        wan_mbps: 100.0,
    },
    NetCondition {
        access_mbps: 400.0,
        wan_mbps: 50.0,
    },
    NetCondition {
        access_mbps: 400.0,
        wan_mbps: 20.0,
    },
    NetCondition {
        access_mbps: 400.0,
        wan_mbps: 10.0,
    },
    NetCondition {
        access_mbps: 100.0,
        wan_mbps: 50.0,
    },
    NetCondition {
        access_mbps: 100.0,
        wan_mbps: 10.0,
    },
    NetCondition {
        access_mbps: 50.0,
        wan_mbps: 10.0,
    },
    NetCondition {
        access_mbps: 50.0,
        wan_mbps: 5.0,
    },
];

/// Default experiment config: the paper testbed, 4 clients.
pub fn base_config() -> SimConfig {
    SimConfig {
        mode: Mode::CoIc,
        num_clients: 4,
        ..SimConfig::default()
    }
}

/// Print a horizontal rule sized to `width`.
pub fn rule(width: usize) {
    println!("{}", "─".repeat(width));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traces_are_nonempty_and_deterministic() {
        assert_eq!(fig2a_trace(50, 1), fig2a_trace(50, 1));
        assert_eq!(fig2a_trace(50, 1).len(), 50);
        assert_eq!(render_trace(4, 4, 100_000, 32, 2).len(), 32);
        assert_eq!(vr_trace(4, 10, 25, 3).len(), 40);
    }

    #[test]
    fn conditions_cover_the_grid() {
        assert!(FIG2A_CONDITIONS.iter().any(|c| c.wan_mbps <= 10.0));
        assert!(FIG2A_CONDITIONS.iter().any(|c| c.access_mbps >= 400.0));
    }
}

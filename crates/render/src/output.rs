//! Image file output (PGM/PPM, the no-dependency Netpbm formats).
//!
//! Lets examples and experiments dump actual rendered artifacts —
//! framebuffers, panoramas, viewport crops — that any image viewer opens.

use crate::raster::Framebuffer;
use std::io::{self, Write};
use std::path::Path;

/// Serialize 8-bit grayscale pixels as binary PGM (P5).
///
/// # Panics
/// Panics if `pixels.len() != width * height`.
pub fn encode_pgm(width: u32, height: u32, pixels: &[u8]) -> Vec<u8> {
    assert_eq!(
        pixels.len(),
        (width * height) as usize,
        "pixel buffer does not match dimensions"
    );
    let mut out = format!("P5\n{width} {height}\n255\n").into_bytes();
    out.extend_from_slice(pixels);
    out
}

/// Write grayscale pixels to a PGM file.
pub fn write_pgm(path: impl AsRef<Path>, width: u32, height: u32, pixels: &[u8]) -> io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    f.write_all(&encode_pgm(width, height, pixels))?;
    Ok(())
}

/// Write a framebuffer to a PGM file.
pub fn write_framebuffer_pgm(path: impl AsRef<Path>, fb: &Framebuffer) -> io::Result<()> {
    write_pgm(path, fb.width(), fb.height(), fb.pixels())
}

/// Parse a binary PGM (P5) produced by [`encode_pgm`] back into
/// `(width, height, pixels)`. Supports the single-whitespace header layout
/// this module emits (round-trip use, not a general Netpbm parser).
pub fn decode_pgm(data: &[u8]) -> Result<(u32, u32, Vec<u8>), String> {
    let header_end = data
        .windows(1)
        .enumerate()
        .scan(0u8, |newlines, (i, w)| {
            if w[0] == b'\n' {
                *newlines += 1;
            }
            Some((i, *newlines))
        })
        .find(|&(_, n)| n == 3)
        .map(|(i, _)| i + 1)
        .ok_or("truncated header")?;
    let header = std::str::from_utf8(&data[..header_end]).map_err(|_| "bad header utf8")?;
    let mut lines = header.lines();
    if lines.next() != Some("P5") {
        return Err("not a P5 PGM".into());
    }
    let dims = lines.next().ok_or("missing dimensions")?;
    let mut it = dims.split_whitespace();
    let width: u32 = it.next().and_then(|t| t.parse().ok()).ok_or("bad width")?;
    let height: u32 = it.next().and_then(|t| t.parse().ok()).ok_or("bad height")?;
    if lines.next() != Some("255") {
        return Err("unsupported maxval".into());
    }
    let pixels = data[header_end..].to_vec();
    if pixels.len() != (width * height) as usize {
        return Err(format!(
            "expected {} pixels, found {}",
            width * height,
            pixels.len()
        ));
    }
    Ok((width, height, pixels))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::math::{Mat4, Vec3};
    use crate::procgen;
    use crate::raster::draw;

    #[test]
    fn pgm_round_trip() {
        let pixels: Vec<u8> = (0..12).map(|i| i * 20).collect();
        let encoded = encode_pgm(4, 3, &pixels);
        let (w, h, back) = decode_pgm(&encoded).unwrap();
        assert_eq!((w, h), (4, 3));
        assert_eq!(back, pixels);
    }

    #[test]
    fn pgm_header_is_standard() {
        let encoded = encode_pgm(2, 2, &[0, 1, 2, 3]);
        assert!(encoded.starts_with(b"P5\n2 2\n255\n"));
        assert_eq!(encoded.len(), b"P5\n2 2\n255\n".len() + 4);
    }

    #[test]
    #[should_panic(expected = "does not match dimensions")]
    fn mismatched_dims_panic() {
        let _ = encode_pgm(3, 3, &[0; 4]);
    }

    #[test]
    fn framebuffer_writes_to_disk() {
        let mut fb = Framebuffer::new(32, 32);
        let mesh = procgen::uv_sphere(8, 12);
        let proj = Mat4::perspective(1.0, 1.0, 0.1, 100.0);
        let view = Mat4::look_at(
            Vec3::new(0.0, 0.0, 3.0),
            Vec3::ZERO,
            Vec3::new(0.0, 1.0, 0.0),
        );
        draw(
            &mut fb,
            &mesh,
            &proj.mul(&view),
            &Mat4::IDENTITY,
            Vec3::new(0.0, 0.0, -1.0),
        );
        let dir = std::env::temp_dir().join("coic_pgm_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sphere.pgm");
        write_framebuffer_pgm(&path, &fb).unwrap();
        let data = std::fs::read(&path).unwrap();
        let (w, h, pixels) = decode_pgm(&data).unwrap();
        assert_eq!((w, h), (32, 32));
        assert!(pixels.iter().any(|&p| p > 0), "rendered image is black");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(decode_pgm(b"").is_err());
        assert!(decode_pgm(b"P6\n2 2\n255\n0000").is_err());
        assert!(decode_pgm(b"P5\n2 2\n255\n00").is_err()); // short pixels
    }
}

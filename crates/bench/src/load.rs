//! The `coic bench --load` live-scale load harness.
//!
//! Drives tens of thousands of **simulated clients** against a real
//! loopback edge (either IO driver) and emits a canonical
//! `BENCH_live.json` with connection-count-vs-p99 curves. The harness is
//! open-loop: every request in the run is generated up front from the
//! seed — arrival order never depends on service times — so two runs
//! with the same seed issue the identical request stream.
//!
//! **Multiplexing.** A run models `clients` logical sessions, each
//! issuing `reqs_per_client` requests, but multiplexes them over a
//! bounded pool of real TCP connections (`conns`): connection fan-in is
//! what the event loop is for, and the harness machine cannot afford
//! 100k real sockets any more than a phone fleet would share one NIC
//! politely. Request `i` of the global stream rides connection
//! `i % conns`, pipelined up to [`WINDOW`] deep — so at any moment up to
//! `conns × WINDOW` requests are in flight.
//!
//! **Determinism ledger.** Every reply's *result payload* is folded into
//! an FNV-1a accumulator *in global request order* (not completion
//! order), yielding one 64-bit ledger per cell. Whether a given request
//! was a `Hit` or a miss-path `Result` depends on races the harness does
//! not control, so the variant is normalized away before hashing; the
//! payload bytes themselves are deterministic functions of the seed, so
//! two runs of the same build must produce byte-identical ledger files —
//! the CI `live-scale-smoke` lane diffs exactly that.
//!
//! **Hung requests.** Every connection reads under a deadline; a reply
//! that never arrives counts in `hung` and fails the bench_check gate.
//! The acceptance bar is ≥10k simulated clients on the event loop with
//! `hung == 0`.

use crate::json::{self, num, obj, s, Json};
use coic_core::compute::ComputeConfig;
use coic_core::content::{ModelLibrary, PanoLibrary};
use coic_core::netrun::{spawn_cloud, spawn_edge_with, NetConfig};
use coic_core::services::EdgeConfig;
use coic_core::{DriverKind, FeatureDescriptor, Msg, TaskRequest};
use coic_netsim::rt::FrameConn;
use coic_vision::ObjectClass;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Pipelining depth per real connection.
pub const WINDOW: usize = 16;

/// Per-reply read deadline before a request is declared hung.
const READ_DEADLINE: Duration = Duration::from_secs(30);

/// Distinct panorama frames the simulated clients share.
const FRAME_POOL: u64 = 64;

/// Distinct models the simulated clients share.
const MODEL_POOL: u64 = 8;

/// Model payload size: small enough to keep quick runs quick, large
/// enough that write coalescing has something to coalesce.
const MODEL_BYTES: u64 = 100_000;

/// Configuration of one load run (all cells share it).
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Simulated (logical) clients.
    pub clients: usize,
    /// Requests each simulated client issues.
    pub reqs_per_client: usize,
    /// Real-connection pool sizes to sweep (the x-axis of the curves).
    pub conns: Vec<usize>,
    /// IO drivers to sweep.
    pub drivers: Vec<DriverKind>,
    /// Seed for the request stream and the content libraries.
    pub seed: u64,
}

impl Default for LoadConfig {
    fn default() -> LoadConfig {
        LoadConfig {
            clients: 10_000,
            reqs_per_client: 2,
            conns: vec![64, 256, 1000],
            drivers: vec![DriverKind::Threads, DriverKind::Evloop],
            seed: 7,
        }
    }
}

/// One measured (driver, conns) cell.
#[derive(Debug, Clone)]
pub struct LiveCell {
    /// IO driver the edge ran (`threads` / `evloop`).
    pub driver: String,
    /// Real connections in the pool.
    pub conns: usize,
    /// Requests completed.
    pub ops: u64,
    /// Requests that never got a reply within the deadline.
    pub hung: u64,
    /// Median per-request wall latency, ns.
    pub p50_ns: u64,
    /// 95th percentile, ns.
    pub p95_ns: u64,
    /// 99th percentile, ns.
    pub p99_ns: u64,
    /// Completed requests per wall-clock second.
    pub throughput_ops_per_sec: f64,
    /// Edge cache hit ratio at the end of the cell.
    pub hit_ratio: f64,
    /// FNV-1a ledger of all reply bytes in request order (hex).
    pub ledger: String,
    /// `loop.*` wakeups (0 for the threads driver).
    pub loop_wakeups: u64,
    /// Frames decoded per wakeup ×1000 (0 for the threads driver).
    pub frames_per_wakeup_milli: u64,
    /// Coalesced flushes (0 for the threads driver).
    pub loop_coalesced_writes: u64,
}

/// A full load run: the `BENCH_live.json` document.
#[derive(Debug, Clone)]
pub struct LiveReport {
    /// Schema tag (`coic-bench-live/v1`).
    pub schema: String,
    /// `git rev-parse --short HEAD`, or `unknown` outside a checkout.
    pub git_rev: String,
    /// Seed the request stream derives from.
    pub seed: u64,
    /// Simulated clients.
    pub clients: usize,
    /// Requests per simulated client.
    pub reqs_per_client: usize,
    /// All measured cells.
    pub results: Vec<LiveCell>,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(mut acc: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        acc ^= b as u64;
        acc = acc.wrapping_mul(FNV_PRIME);
    }
    acc
}

/// SplitMix64: the per-request pseudo-random stream. Cheap, seedable,
/// and stateless per index, so any worker can derive request `i`
/// without sharing an RNG.
fn splitmix(seed: u64, i: u64) -> u64 {
    let mut z = seed.wrapping_add(i.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The task for global request index `i`: a Zipf-ish skew over a shared
/// panorama pool, with every fourth request a model load. Both kinds
/// carry their task as the query hint, so each request is exactly one
/// round trip whatever the cache decides.
fn request_for(i: u64, seed: u64, panos: &PanoLibrary, models: &ModelLibrary) -> Msg {
    let r = splitmix(seed, i);
    let (descriptor, task) = if i % 4 == 3 {
        let model_id = r % MODEL_POOL;
        (
            FeatureDescriptor::ModelHash(models.digest(model_id, MODEL_BYTES)),
            TaskRequest::RenderLoad {
                model_id,
                size_bytes: MODEL_BYTES,
            },
        )
    } else {
        // u² skew: the head of the pool is hot, the tail long.
        let u = (r % 1000) as f64 / 1000.0;
        let frame_id = ((u * u) * FRAME_POOL as f64) as u64;
        (
            FeatureDescriptor::PanoramaHash(panos.digest(frame_id)),
            TaskRequest::Panorama { frame_id },
        )
    };
    Msg::Query {
        req_id: i,
        descriptor,
        hint: Some(task),
    }
}

/// Outcome of one worker: per-request latency samples and ledger inputs,
/// keyed by global request index.
struct WorkerOut {
    samples: Vec<(u64, u64)>,
    hashes: Vec<(u64, u64)>,
    hung: u64,
}

/// Drive the slice of the request stream owned by worker `w`: indices
/// `w, w + conns, w + 2·conns, …` pipelined [`WINDOW`] deep over one
/// connection. Replies come back in send order (both drivers preserve
/// per-connection FIFO), so a simple in-flight queue suffices.
fn drive_worker(
    addr: std::net::SocketAddr,
    w: usize,
    conns: usize,
    total: u64,
    seed: u64,
    panos: &PanoLibrary,
    models: &ModelLibrary,
) -> WorkerOut {
    let mut out = WorkerOut {
        samples: Vec::new(),
        hashes: Vec::new(),
        hung: 0,
    };
    let mut indices = (w as u64..total).step_by(conns.max(1));
    let mut conn = match FrameConn::connect(addr) {
        Ok(c) => c,
        Err(_) => {
            out.hung = (total - w as u64).div_ceil(conns as u64);
            return out;
        }
    };
    let _ = conn.set_read_deadline(Some(READ_DEADLINE));
    let mut inflight: std::collections::VecDeque<(u64, Instant)> =
        std::collections::VecDeque::new();
    loop {
        // Fill the window.
        while inflight.len() < WINDOW {
            match indices.next() {
                Some(i) => {
                    let msg = request_for(i, seed, panos, models);
                    if conn.send(&msg.encode()).is_err() {
                        out.hung += 1 + indices.by_ref().count() as u64 + inflight.len() as u64;
                        return out;
                    }
                    inflight.push_back((i, Instant::now()));
                }
                None => break,
            }
        }
        let Some((i, sent)) = inflight.pop_front() else {
            return out;
        };
        match conn.recv() {
            Ok(reply) => {
                out.samples.push((i, sent.elapsed().as_nanos() as u64));
                // Normalize Hit vs miss-path Result (which of the two a
                // racing request sees is not deterministic) down to the
                // payload, which is.
                let h = match Msg::decode(&reply) {
                    Ok(Msg::Hit { result, .. }) | Ok(Msg::Result { result, .. }) => {
                        fnv1a(FNV_OFFSET, &Msg::Hit { req_id: 0, result }.encode())
                    }
                    _ => FNV_OFFSET,
                };
                out.hashes.push((i, h));
            }
            Err(_) => {
                out.hung += 1 + indices.by_ref().count() as u64 + inflight.len() as u64;
                return out;
            }
        }
    }
}

/// Run one (driver, conns) cell: spawn a fresh cloud + edge pair, fan
/// the open-loop stream over the connection pool, and reduce.
fn run_cell(driver: DriverKind, conns: usize, cfg: &LoadConfig) -> LiveCell {
    let models = Arc::new(ModelLibrary::new());
    let panos = Arc::new(PanoLibrary::new(64));
    let compute = ComputeConfig::default();
    let classes: Vec<_> = (0..3).map(ObjectClass).collect();
    let cloud = spawn_cloud(
        &classes,
        64,
        compute,
        models.clone(),
        panos.clone(),
        cfg.seed,
    )
    .expect("cloud spawn");
    let net = NetConfig::builder().driver(driver).build();
    let edge =
        spawn_edge_with(cloud.addr(), &EdgeConfig::default(), net, None).expect("edge spawn");

    let total = (cfg.clients * cfg.reqs_per_client) as u64;
    let started = Instant::now();
    let mut outs: Vec<WorkerOut> = Vec::with_capacity(conns);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..conns)
            .map(|w| {
                let (panos, models) = (panos.clone(), models.clone());
                let addr = edge.addr();
                let seed = cfg.seed;
                std::thread::Builder::new()
                    .name(format!("coic-load-{w}"))
                    .stack_size(128 * 1024)
                    .spawn_scoped(scope, move || {
                        drive_worker(addr, w, conns, total, seed, &panos, &models)
                    })
                    .expect("spawn load worker")
            })
            .collect();
        for h in handles {
            outs.push(h.join().expect("load worker panicked"));
        }
    });
    let elapsed = started.elapsed().as_secs_f64();

    let mut samples: Vec<u64> = Vec::new();
    let mut hashes: Vec<(u64, u64)> = Vec::new();
    let mut hung = 0u64;
    for o in outs {
        samples.extend(o.samples.iter().map(|&(_, ns)| ns));
        hashes.extend(o.hashes);
        hung += o.hung;
    }
    samples.sort_unstable();
    // Fold reply hashes in *request* order: completion order is racy,
    // the stream order is the seed's.
    hashes.sort_unstable_by_key(|&(i, _)| i);
    let mut ledger = FNV_OFFSET;
    for (i, h) in &hashes {
        ledger = fnv1a(ledger, &i.to_be_bytes());
        ledger = fnv1a(ledger, &h.to_be_bytes());
    }

    let pct = |p: f64| -> u64 {
        if samples.is_empty() {
            0
        } else {
            samples[((samples.len() - 1) as f64 * p).round() as usize]
        }
    };
    let ops = samples.len() as u64;
    let stats = edge.loop_stats();
    LiveCell {
        driver: driver.as_str().to_string(),
        conns,
        ops,
        hung,
        p50_ns: pct(0.50),
        p95_ns: pct(0.95),
        p99_ns: pct(0.99),
        throughput_ops_per_sec: if elapsed > 0.0 {
            ops as f64 / elapsed
        } else {
            0.0
        },
        hit_ratio: edge.cache_hit_ratio(),
        ledger: format!("{ledger:016x}"),
        loop_wakeups: stats.wakeups,
        frames_per_wakeup_milli: (stats.frames_per_wakeup() * 1000.0) as u64,
        loop_coalesced_writes: stats.coalesced_writes,
    }
}

/// Run the full load grid: every driver × every connection count in
/// `cfg`, against a fresh edge per cell.
pub fn run_load(cfg: &LoadConfig) -> LiveReport {
    let mut results = Vec::new();
    for &driver in &cfg.drivers {
        for &conns in &cfg.conns {
            results.push(run_cell(driver, conns, cfg));
        }
    }
    LiveReport {
        schema: "coic-bench-live/v1".to_string(),
        git_rev: crate::perf::git_rev(),
        seed: cfg.seed,
        clients: cfg.clients,
        reqs_per_client: cfg.reqs_per_client,
        results,
    }
}

impl LiveReport {
    /// Canonical JSON form (sorted keys, fixed float precision).
    pub fn to_json(&self) -> Json {
        let results: Vec<Json> = self
            .results
            .iter()
            .map(|c| {
                obj(vec![
                    ("driver", s(&c.driver)),
                    ("conns", num(c.conns as f64)),
                    ("ops", num(c.ops as f64)),
                    ("hung", num(c.hung as f64)),
                    ("p50_ns", num(c.p50_ns as f64)),
                    ("p95_ns", num(c.p95_ns as f64)),
                    ("p99_ns", num(c.p99_ns as f64)),
                    ("throughput_ops_per_sec", num(c.throughput_ops_per_sec)),
                    ("hit_ratio", num(c.hit_ratio)),
                    ("ledger", s(&c.ledger)),
                    ("loop_wakeups", num(c.loop_wakeups as f64)),
                    (
                        "frames_per_wakeup_milli",
                        num(c.frames_per_wakeup_milli as f64),
                    ),
                    ("loop_coalesced_writes", num(c.loop_coalesced_writes as f64)),
                ])
            })
            .collect();
        obj(vec![
            ("schema", s(&self.schema)),
            ("git_rev", s(&self.git_rev)),
            ("seed", num(self.seed as f64)),
            ("clients", num(self.clients as f64)),
            ("reqs_per_client", num(self.reqs_per_client as f64)),
            ("results", Json::Arr(results)),
        ])
    }

    /// Parse a report back from its JSON form (bench_check --live).
    pub fn from_json(v: &Json) -> Result<LiveReport, String> {
        let schema = v
            .get("schema")
            .and_then(Json::as_str)
            .ok_or("missing schema")?;
        if schema != "coic-bench-live/v1" {
            return Err(format!("unsupported schema '{schema}'"));
        }
        let results = v
            .get("results")
            .and_then(Json::as_arr)
            .ok_or("missing results")?
            .iter()
            .map(|c| {
                let f = |k: &str| {
                    c.get(k)
                        .and_then(Json::as_f64)
                        .ok_or_else(|| format!("result missing numeric '{k}'"))
                };
                Ok(LiveCell {
                    driver: c
                        .get("driver")
                        .and_then(Json::as_str)
                        .ok_or("result missing driver")?
                        .to_string(),
                    conns: f("conns")? as usize,
                    ops: f("ops")? as u64,
                    hung: f("hung")? as u64,
                    p50_ns: f("p50_ns")? as u64,
                    p95_ns: f("p95_ns")? as u64,
                    p99_ns: f("p99_ns")? as u64,
                    throughput_ops_per_sec: f("throughput_ops_per_sec")?,
                    hit_ratio: f("hit_ratio")?,
                    ledger: c
                        .get("ledger")
                        .and_then(Json::as_str)
                        .unwrap_or("")
                        .to_string(),
                    loop_wakeups: f("loop_wakeups").unwrap_or(0.0) as u64,
                    frames_per_wakeup_milli: f("frames_per_wakeup_milli").unwrap_or(0.0) as u64,
                    loop_coalesced_writes: f("loop_coalesced_writes").unwrap_or(0.0) as u64,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(LiveReport {
            schema: schema.to_string(),
            git_rev: v
                .get("git_rev")
                .and_then(Json::as_str)
                .unwrap_or("unknown")
                .to_string(),
            seed: v.get("seed").and_then(Json::as_f64).unwrap_or(0.0) as u64,
            clients: v.get("clients").and_then(Json::as_f64).unwrap_or(0.0) as usize,
            reqs_per_client: v
                .get("reqs_per_client")
                .and_then(Json::as_f64)
                .unwrap_or(0.0) as usize,
            results,
        })
    }

    /// Write the canonical JSON (plus trailing newline) to `path`.
    pub fn write(&self, path: &std::path::Path) -> std::io::Result<()> {
        let mut text = self.to_json().to_canonical();
        text.push('\n');
        std::fs::write(path, text)
    }

    /// Load a report from a canonical JSON file.
    pub fn load(path: &std::path::Path) -> Result<LiveReport, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        LiveReport::from_json(&json::parse(&text)?)
    }

    /// The deterministic ledger artifact: one line per cell, nothing that
    /// varies between two runs of the same build and seed. This is what
    /// the CI lane diffs byte-for-byte.
    pub fn ledger_text(&self) -> String {
        let mut out = format!(
            "coic-load-ledger/v1 seed={} clients={} reqs_per_client={}\n",
            self.seed, self.clients, self.reqs_per_client
        );
        for c in &self.results {
            out.push_str(&format!(
                "driver={} conns={} ops={} ledger={}\n",
                c.driver, c.conns, c.ops, c.ledger
            ));
        }
        out
    }
}

/// Verdict of [`check_live_gate`].
#[derive(Debug, Default)]
pub struct LiveVerdict {
    /// Human-readable failures; empty means the gate passes.
    pub failures: Vec<String>,
    /// Confirmations for the log.
    pub notes: Vec<String>,
}

/// The live-scale regression gate, applied *within* one report (one
/// host, one run — no tolerance band needed between machines):
///
/// 1. zero hung requests in every cell;
/// 2. at the largest connection count both drivers measured, the event
///    loop's p99 is no worse than `tolerance ×` the threads driver's;
/// 3. every cell completed its full request stream.
pub fn check_live_gate(report: &LiveReport, tolerance: f64) -> LiveVerdict {
    let mut v = LiveVerdict::default();
    let expected_ops = (report.clients * report.reqs_per_client) as u64;
    for c in &report.results {
        if c.hung > 0 {
            v.failures.push(format!(
                "{}/{} conns: {} hung requests",
                c.driver, c.conns, c.hung
            ));
        }
        if c.ops != expected_ops {
            v.failures.push(format!(
                "{}/{} conns: completed {} of {expected_ops} requests",
                c.driver, c.conns, c.ops
            ));
        }
    }
    if v.failures.is_empty() {
        v.notes.push(format!(
            "all {} cells completed {expected_ops} requests, zero hung",
            report.results.len()
        ));
    }

    let threads: Vec<&LiveCell> = report
        .results
        .iter()
        .filter(|c| c.driver == "threads")
        .collect();
    let evloop: Vec<&LiveCell> = report
        .results
        .iter()
        .filter(|c| c.driver == "evloop")
        .collect();
    let common = threads
        .iter()
        .filter_map(|t| evloop.iter().find(|e| e.conns == t.conns).map(|e| (*t, *e)))
        .max_by_key(|(t, _)| t.conns);
    match common {
        Some((t, e)) => {
            let bound = t.p99_ns as f64 * tolerance;
            if (e.p99_ns as f64) > bound {
                v.failures.push(format!(
                    "evloop p99 at {} conns is {} ns, threads is {} ns (allowed ≤ {:.0})",
                    e.conns, e.p99_ns, t.p99_ns, bound
                ));
            } else {
                v.notes.push(format!(
                    "evloop p99 at {} conns: {} ns vs threads {} ns (within {:.2}×)",
                    e.conns, e.p99_ns, t.p99_ns, tolerance
                ));
            }
        }
        None => v.failures.push(
            "no connection count was measured on both drivers — cannot compare p99".to_string(),
        ),
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> LoadConfig {
        LoadConfig {
            clients: 200,
            reqs_per_client: 1,
            conns: vec![8],
            drivers: vec![DriverKind::Threads, DriverKind::Evloop],
            seed: 7,
        }
    }

    #[test]
    fn tiny_load_run_completes_with_zero_hung_and_matching_ledgers() {
        let report = run_load(&tiny());
        assert_eq!(report.results.len(), 2);
        for c in &report.results {
            assert_eq!(c.ops, 200, "{c:?}");
            assert_eq!(c.hung, 0, "{c:?}");
            assert!(c.hit_ratio > 0.0, "{c:?}");
        }
        // Same seed, same stream, same deterministic content: the two
        // drivers must produce the identical reply ledger.
        assert_eq!(
            report.results[0].ledger, report.results[1].ledger,
            "drivers disagree on reply bytes"
        );
        let verdict = check_live_gate(&report, 10.0);
        assert!(verdict.failures.is_empty(), "{:?}", verdict.failures);
        // The evloop cell actually ran on the event loop.
        let ev = report
            .results
            .iter()
            .find(|c| c.driver == "evloop")
            .unwrap();
        assert!(ev.loop_wakeups > 0, "{ev:?}");
    }

    #[test]
    fn ledgers_are_stable_across_runs_and_reports_round_trip() {
        let cfg = tiny();
        let a = run_load(&cfg);
        let b = run_load(&cfg);
        assert_eq!(a.ledger_text(), b.ledger_text(), "ledger must be seeded");
        let parsed = LiveReport::from_json(&a.to_json()).unwrap();
        assert_eq!(parsed.ledger_text(), a.ledger_text());
        assert_eq!(parsed.results.len(), a.results.len());
        assert_eq!(parsed.results[0].p99_ns, a.results[0].p99_ns);
    }

    #[test]
    fn gate_flags_hung_requests_and_p99_blowups() {
        let cell = |driver: &str, p99: u64, hung: u64| LiveCell {
            driver: driver.to_string(),
            conns: 8,
            ops: 200,
            hung,
            p50_ns: 1,
            p95_ns: 1,
            p99_ns: p99,
            throughput_ops_per_sec: 1.0,
            hit_ratio: 1.0,
            ledger: "0".into(),
            loop_wakeups: 0,
            frames_per_wakeup_milli: 0,
            loop_coalesced_writes: 0,
        };
        let report = LiveReport {
            schema: "coic-bench-live/v1".into(),
            git_rev: "test".into(),
            seed: 7,
            clients: 200,
            reqs_per_client: 1,
            results: vec![cell("threads", 100, 0), cell("evloop", 1000, 1)],
        };
        let verdict = check_live_gate(&report, 2.0);
        assert_eq!(verdict.failures.len(), 2, "{:?}", verdict.failures);
        let ok = LiveReport {
            results: vec![cell("threads", 100, 0), cell("evloop", 150, 0)],
            ..report
        };
        assert!(check_live_gate(&ok, 2.0).failures.is_empty());
    }
}

//! Per-tier compute cost configuration for the three task families.
//!
//! All costs are virtual nanoseconds derived from MAC counts and per-tier
//! throughput ([`coic_vision::ComputeProfile`]) or byte counts and per-tier
//! load rates ([`coic_render::LoadCostModel`]). Only the *ratios* between
//! tiers shape the experiment results; absolute values are calibrated to
//! 2018-era hardware classes matching the paper's testbed.

use coic_render::LoadCostModel;
use coic_vision::{ComputeProfile, FULL_DNN_MACS};
use serde::{Deserialize, Serialize};

/// Compute cost knobs for an experiment.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ComputeConfig {
    /// Client device profile.
    pub mobile: ComputeProfile,
    /// Edge server profile.
    pub edge: ComputeProfile,
    /// Cloud server profile.
    pub cloud: ComputeProfile,
    /// MACs of the on-device descriptor extraction (the paper's client
    /// "pre-processes the request to generate ... a feature descriptor" —
    /// a small front slice of the recognition network).
    pub descriptor_macs: u64,
    /// MACs of the full recognition DNN the cloud runs.
    pub full_dnn_macs: u64,
    /// Edge cache lookup time (hash/NN probe plus queueing), ns.
    pub lookup_ns: u64,
    /// Cloud-side model load cost model (storage read + parse + stage).
    pub load_cloud: LoadCostModel,
    /// Edge-side staging cost when serving a cached, already-parsed model.
    pub load_edge: LoadCostModel,
    /// Cloud time to produce one panoramic frame, ns.
    pub pano_render_ns: u64,
}

impl Default for ComputeConfig {
    fn default() -> Self {
        ComputeConfig {
            mobile: ComputeProfile::MOBILE,
            edge: ComputeProfile::EDGE,
            cloud: ComputeProfile::CLOUD,
            descriptor_macs: 100_000_000, // ~22 ms on the mobile tier
            full_dnn_macs: FULL_DNN_MACS,
            lookup_ns: 1_000_000, // 1 ms
            load_cloud: LoadCostModel::CLOUD,
            load_edge: LoadCostModel::EDGE,
            pano_render_ns: 8_000_000, // 8 ms/frame on a server GPU
        }
    }
}

impl ComputeConfig {
    /// Client-side descriptor extraction time.
    pub fn descriptor_ns(&self) -> u64 {
        self.mobile.time_ns(self.descriptor_macs)
    }

    /// Cloud-side full DNN inference time.
    pub fn cloud_infer_ns(&self) -> u64 {
        self.cloud.time_ns(self.full_dnn_macs)
    }

    /// What full recognition would cost *on the device* — the reason the
    /// task is offloaded at all.
    pub fn mobile_infer_ns(&self) -> u64 {
        self.mobile.time_ns(self.full_dnn_macs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offloading_is_worthwhile() {
        let c = ComputeConfig::default();
        // The whole premise: descriptor extraction is much cheaper on the
        // phone than full inference, and cloud inference is much faster
        // than mobile inference.
        assert!(c.descriptor_ns() * 4 < c.mobile_infer_ns());
        assert!(c.cloud_infer_ns() * 10 < c.mobile_infer_ns());
    }

    #[test]
    fn lookup_is_cheap_relative_to_inference() {
        let c = ComputeConfig::default();
        assert!(c.lookup_ns < c.cloud_infer_ns());
    }
}

//! Fixture: broken allow directives are findings, and suppress nothing.

// lint: allow(no-std-net) LINT-EXPECT: malformed-allow-directive
use std::net::TcpStream; // LINT-EXPECT: no-std-net

fn dial(addr: &str) -> std::io::Result<TcpStream> {
    // lint: allow misspelled syntax LINT-EXPECT: malformed-allow-directive
    std::net::TcpStream::connect(addr) // LINT-EXPECT: no-std-net
}

//! Criterion microbenchmarks for the performance-critical substrate paths:
//! digesting, cache lookups (exact, linear-NN, LSH), feature extraction,
//! protocol codec, CMF parse, rasterization and panorama cropping.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use std::hint::black_box;

use coic_cache::{ApproxCache, Digest, ExactCache, IndexKind, PolicyKind};
use coic_core::{FeatureDescriptor, Msg, RecognitionResult, TaskRequest, TaskResult};
use coic_render::{Camera, Framebuffer, Panorama, Scene};
use coic_vision::{FeatureVec, ObjectClass, SceneGenerator, SimNet};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn bench_digest(c: &mut Criterion) {
    let mut g = c.benchmark_group("digest");
    for size in [1_000usize, 100_000, 1_000_000] {
        let data = vec![0xA5u8; size];
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_function(format!("sha256/{size}B"), |b| {
            b.iter(|| Digest::of(black_box(&data)))
        });
    }
    g.finish();
}

fn bench_exact_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("exact_cache");
    let mut cache: ExactCache<u64> = ExactCache::new(1 << 30, PolicyKind::Lru, None);
    let keys: Vec<Digest> = (0..10_000u64)
        .map(|i| Digest::of(&i.to_le_bytes()))
        .collect();
    for (i, k) in keys.iter().enumerate() {
        cache.insert(*k, i as u64, 100, 0);
    }
    let mut i = 0usize;
    g.bench_function("lookup_hit/10k_entries", |b| {
        b.iter(|| {
            i = (i + 1) % keys.len();
            black_box(cache.lookup(&keys[i], 0).copied())
        })
    });
    let absent = Digest::of(b"never inserted");
    g.bench_function("lookup_miss/10k_entries", |b| {
        b.iter(|| black_box(cache.lookup(&absent, 0).copied()))
    });
    g.finish();
}

fn rand_vec(rng: &mut StdRng, dim: usize) -> FeatureVec {
    FeatureVec::new((0..dim).map(|_| rng.random::<f32>() * 2.0 - 1.0).collect()).normalized()
}

fn bench_approx_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("approx_cache");
    for n in [100usize, 1_000, 10_000] {
        let mut rng = StdRng::seed_from_u64(1);
        let mut linear: ApproxCache<u32> =
            ApproxCache::new(1 << 30, PolicyKind::Lru, 0.3, IndexKind::Linear, 32);
        let mut lsh: ApproxCache<u32> = ApproxCache::new(
            1 << 30,
            PolicyKind::Lru,
            0.3,
            IndexKind::Lsh {
                tables: 8,
                bits: 10,
            },
            32,
        );
        for i in 0..n {
            let v = rand_vec(&mut rng, 32);
            linear.insert(v.clone(), i as u32, 100, 0);
            lsh.insert(v, i as u32, 100, 0);
        }
        let q = rand_vec(&mut rng, 32);
        g.bench_function(format!("linear_lookup/{n}"), |b| {
            b.iter(|| black_box(linear.lookup(black_box(&q), 0)))
        });
        g.bench_function(format!("lsh_lookup/{n}"), |b| {
            b.iter(|| black_box(lsh.lookup(black_box(&q), 0)))
        });
    }
    g.finish();
}

fn bench_simnet(c: &mut Criterion) {
    let mut g = c.benchmark_group("simnet");
    let gen = SceneGenerator::new(64);
    let net = SimNet::default_net();
    let img = gen.canonical(ObjectClass(3));
    g.bench_function("extract/64px", |b| b.iter(|| net.extract(black_box(&img))));
    g.bench_function("extract_layers/64px", |b| {
        b.iter(|| net.extract_layers(black_box(&img)))
    });
    let mut rng = StdRng::seed_from_u64(0);
    g.bench_function("observe/64px", |b| {
        b.iter(|| {
            gen.observe(
                black_box(ObjectClass(3)),
                &coic_vision::ViewParams::default(),
                &mut rng,
            )
        })
    });
    g.finish();
}

fn bench_protocol(c: &mut Criterion) {
    let mut g = c.benchmark_group("protocol");
    let query = Msg::Query {
        req_id: 7,
        descriptor: FeatureDescriptor::Dnn(FeatureVec::new(vec![0.5; 32])),
        hint: None,
    };
    g.bench_function("encode/query", |b| b.iter(|| black_box(&query).encode()));
    let bytes = query.encode();
    g.bench_function("decode/query", |b| {
        b.iter(|| Msg::decode(black_box(&bytes)).unwrap())
    });
    let result = Msg::Result {
        req_id: 7,
        result: TaskResult::Recognition(RecognitionResult {
            label: 1,
            distance: 0.2,
        }),
    };
    g.bench_function("encode/result", |b| b.iter(|| black_box(&result).encode()));
    let upload = Msg::Upload {
        req_id: 7,
        task: TaskRequest::Recognition {
            image: coic_vision::Image::new(64, 64, 128),
        },
    };
    let upload_bytes = upload.encode();
    g.throughput(Throughput::Bytes(upload_bytes.len() as u64));
    g.bench_function("decode/upload_4kB", |b| {
        b.iter(|| Msg::decode(black_box(&upload_bytes)).unwrap())
    });
    g.finish();
}

fn bench_cmf(c: &mut Criterion) {
    let mut g = c.benchmark_group("cmf");
    for target in [100_000u64, 1_000_000] {
        let mesh = coic_render::procgen::model_of_size(target, 5);
        let bytes = coic_render::encode(&mesh);
        g.throughput(Throughput::Bytes(bytes.len() as u64));
        g.bench_function(format!("encode/{target}B"), |b| {
            b.iter(|| coic_render::encode(black_box(&mesh)))
        });
        g.bench_function(format!("decode/{target}B"), |b| {
            b.iter(|| coic_render::decode(black_box(&bytes)).unwrap())
        });
    }
    g.finish();
}

fn bench_raster(c: &mut Criterion) {
    let mut g = c.benchmark_group("raster");
    let mut scene = Scene::new();
    let id = scene.add_model(coic_render::procgen::uv_sphere(24, 32));
    scene.add_instance(id, coic_render::Mat4::IDENTITY);
    g.bench_function("sphere/128px", |b| {
        b.iter_batched(
            || Framebuffer::new(128, 128),
            |mut fb| {
                scene.render(&Camera::default(), &mut fb);
                fb
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_panorama(c: &mut Criterion) {
    let mut g = c.benchmark_group("panorama");
    g.bench_function("synthesize/256", |b| {
        b.iter(|| Panorama::synthesize(black_box(9), 256))
    });
    let pano = Panorama::synthesize(9, 256);
    g.bench_function("crop/128x72", |b| {
        b.iter(|| pano.crop_viewport(black_box(0.7), 0.1, 1.4, 128, 72))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_digest,
    bench_exact_cache,
    bench_approx_cache,
    bench_simnet,
    bench_protocol,
    bench_cmf,
    bench_raster,
    bench_panorama
);
criterion_main!(benches);

//! Per-digest request counters driving hot-entry replication.

use coic_cache::Digest;
use std::collections::BTreeMap;

/// Counts where requests *land* (not where inserts happened) so the
/// cluster replicates content toward its demand: a non-owner edge keeps a
/// local replica once enough of its own misses asked for a digest, and an
/// owner pushes a failover copy to its ring successor once enough peer
/// probes did.
///
/// The map is a `BTreeMap` so iteration (the aging sweep) is
/// deterministic, and it is bounded: past [`HotTracker::MAX_TRACKED`]
/// digests every count is halved and zeroes dropped — classic aging that
/// forgets cold content without ever reshuffling hot ranks.
pub struct HotTracker {
    counts: BTreeMap<Digest, u32>,
    threshold: u32,
}

impl HotTracker {
    /// Aging bound on distinct tracked digests.
    pub const MAX_TRACKED: usize = 65_536;

    /// Track crossings of `threshold`; zero disables tracking entirely.
    pub fn new(threshold: u32) -> Self {
        HotTracker {
            counts: BTreeMap::new(),
            threshold,
        }
    }

    /// Count one request landing for `d`. Returns `true` exactly when the
    /// count *reaches* the threshold — the single moment the caller
    /// should act (replicate), so repeated requests do not re-replicate.
    pub fn note(&mut self, d: &Digest) -> bool {
        if self.threshold == 0 {
            return false;
        }
        if self.counts.len() >= Self::MAX_TRACKED && !self.counts.contains_key(d) {
            self.age();
        }
        let c = self.counts.entry(*d).or_insert(0);
        *c = c.saturating_add(1);
        *c == self.threshold
    }

    /// Has `d` crossed the threshold?
    pub fn is_hot(&self, d: &Digest) -> bool {
        self.threshold > 0 && self.counts.get(d).is_some_and(|&c| c >= self.threshold)
    }

    /// Halve every count and drop the zeroes.
    fn age(&mut self) {
        self.counts.retain(|_, c| {
            *c /= 2;
            *c > 0
        });
    }

    /// Number of digests currently tracked.
    pub fn tracked(&self) -> usize {
        self.counts.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(i: u64) -> Digest {
        Digest::of(&i.to_le_bytes())
    }

    #[test]
    fn crossing_fires_exactly_once() {
        let mut h = HotTracker::new(3);
        assert!(!h.note(&d(1)));
        assert!(!h.note(&d(1)));
        assert!(!h.is_hot(&d(1)));
        assert!(h.note(&d(1)), "third request crosses");
        assert!(h.is_hot(&d(1)));
        assert!(!h.note(&d(1)), "already hot: no re-fire");
        assert!(h.is_hot(&d(1)));
    }

    #[test]
    fn zero_threshold_disables() {
        let mut h = HotTracker::new(0);
        for _ in 0..10 {
            assert!(!h.note(&d(7)));
        }
        assert!(!h.is_hot(&d(7)));
        assert_eq!(h.tracked(), 0);
    }

    #[test]
    fn threshold_one_fires_immediately() {
        let mut h = HotTracker::new(1);
        assert!(h.note(&d(9)));
        assert!(!h.note(&d(9)));
    }

    #[test]
    fn aging_forgets_cold_digests_but_keeps_hot_ones() {
        let mut h = HotTracker::new(2);
        for _ in 0..8 {
            h.note(&d(0)); // hot: count 8
        }
        h.note(&d(1)); // cold: count 1
        h.age();
        assert!(h.is_hot(&d(0)), "8/2 = 4 still over threshold");
        assert_eq!(h.tracked(), 1, "count 1 aged to zero and dropped");
    }
}

//! "SimNet": a deterministic, layered feature extractor.
//!
//! CoIC treats the recognition DNN as a black box with two relevant
//! behaviours: (1) it maps an input image to a feature vector whose pairwise
//! distance reflects input similarity (the paper uses "the feature vector
//! generated from the input image as the feature descriptor"), and (2) full
//! inference has a cost worth offloading. SimNet supplies both, from
//! scratch:
//!
//! * a mean-pooling front end over a `G × G` grid (translation-robust,
//!   contrast-normalized),
//! * a stack of fixed, seeded random-projection layers with a `tanh`
//!   nonlinearity (Johnson–Lindenstrauss-style distance preservation),
//! * an L2-normalized output embedding.
//!
//! Every layer's activation is exposed, which the fine-grained layer-cache
//! extension (paper §4, "the result of a specific DNN layer") builds on.

use crate::image::Image;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// A dense feature vector.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeatureVec {
    data: Vec<f32>,
}

impl FeatureVec {
    /// Wrap raw components.
    pub fn new(data: Vec<f32>) -> Self {
        FeatureVec { data }
    }

    /// Dimensionality.
    pub fn dim(&self) -> usize {
        self.data.len()
    }

    /// Components.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Euclidean norm.
    pub fn l2_norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// Return a unit-norm copy (zero vectors are returned unchanged).
    pub fn normalized(&self) -> FeatureVec {
        let n = self.l2_norm();
        if n == 0.0 {
            return self.clone();
        }
        FeatureVec {
            data: self.data.iter().map(|x| x / n).collect(),
        }
    }

    /// Size on the wire: 4 bytes per component plus a small header. This is
    /// what the client uploads instead of the full image — the asymmetry
    /// that makes CoIC's descriptor-first protocol cheap.
    pub fn byte_size(&self) -> u64 {
        4 * self.data.len() as u64 + 16
    }
}

/// Architecture of a SimNet instance.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimNetConfig {
    /// Pooling grid side; the front end produces `grid * grid` features.
    pub grid: u32,
    /// Output width of each projection layer, in order.
    pub layer_dims: Vec<usize>,
    /// Seed from which all layer weights are derived.
    pub weight_seed: u64,
}

impl Default for SimNetConfig {
    fn default() -> Self {
        SimNetConfig {
            grid: 8,
            layer_dims: vec![64, 48, 32],
            weight_seed: 0x51A4_E7B1,
        }
    }
}

/// A fixed-weight feature extractor.
///
/// # Examples
/// ```
/// use coic_vision::{ObjectClass, SceneGenerator, SimNet};
///
/// let net = SimNet::default_net();
/// let gen = SceneGenerator::new(64);
/// let descriptor = net.extract(&gen.canonical(ObjectClass(3)));
/// // Descriptors are unit-norm and deterministic across nodes.
/// assert!((descriptor.l2_norm() - 1.0).abs() < 1e-5);
/// assert_eq!(descriptor, SimNet::default_net().extract(&gen.canonical(ObjectClass(3))));
/// ```
pub struct SimNet {
    config: SimNetConfig,
    /// weights[l] is a (out_dim × in_dim) row-major matrix.
    weights: Vec<Vec<f32>>,
    dims: Vec<usize>, // dims[0] = grid², dims[l+1] = layer_dims[l]
}

impl SimNet {
    /// Build the network, deriving every weight deterministically from the
    /// config seed. Two SimNets with the same config are identical — this
    /// is what lets the client, the edge and the cloud agree on
    /// descriptors without exchanging a model.
    pub fn new(config: SimNetConfig) -> Self {
        assert!(config.grid >= 2, "pooling grid must be at least 2x2");
        assert!(!config.layer_dims.is_empty(), "need at least one layer");
        let mut dims = vec![(config.grid * config.grid) as usize];
        dims.extend(config.layer_dims.iter().copied());
        let mut weights = Vec::new();
        for l in 0..config.layer_dims.len() {
            let fan_in = dims[l];
            let fan_out = dims[l + 1];
            let mut rng = StdRng::seed_from_u64(config.weight_seed.wrapping_add(l as u64 * 7919));
            let scale = (1.0 / fan_in as f32).sqrt();
            let w: Vec<f32> = (0..fan_in * fan_out)
                .map(|_| (rng.random::<f32>() * 2.0 - 1.0) * scale * 1.7320508) // uniform, matched variance
                .collect();
            weights.push(w);
        }
        SimNet {
            config,
            weights,
            dims,
        }
    }

    /// Build with default architecture.
    pub fn default_net() -> Self {
        SimNet::new(SimNetConfig::default())
    }

    /// The architecture.
    pub fn config(&self) -> &SimNetConfig {
        &self.config
    }

    /// Number of projection layers (excludes the pooling front end).
    pub fn num_layers(&self) -> usize {
        self.config.layer_dims.len()
    }

    /// Output embedding dimensionality.
    pub fn embedding_dim(&self) -> usize {
        *self.dims.last().unwrap()
    }

    /// Pool the image to the `grid × grid` front-end features, with
    /// per-image contrast normalization (zero mean, unit variance) so the
    /// embedding is robust to illumination gain — the perturbation
    /// co-located users differ by.
    pub fn pool(&self, img: &Image) -> FeatureVec {
        let g = self.config.grid;
        let cell_w = img.width() as f64 / g as f64;
        let cell_h = img.height() as f64 / g as f64;
        let mut feats = Vec::with_capacity((g * g) as usize);
        for gy in 0..g {
            for gx in 0..g {
                let x0 = (gx as f64 * cell_w) as u32;
                let y0 = (gy as f64 * cell_h) as u32;
                let x1 = (((gx + 1) as f64 * cell_w) as u32).min(img.width());
                let y1 = (((gy + 1) as f64 * cell_h) as u32).min(img.height());
                let mut acc = 0.0f64;
                let mut n = 0u32;
                for y in y0..y1.max(y0 + 1).min(img.height()) {
                    for x in x0..x1.max(x0 + 1).min(img.width()) {
                        acc += img.get(x, y) as f64;
                        n += 1;
                    }
                }
                feats.push(if n > 0 { (acc / n as f64) as f32 } else { 0.0 });
            }
        }
        // Contrast-normalize.
        let mean = feats.iter().sum::<f32>() / feats.len() as f32;
        let var = feats.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / feats.len() as f32;
        let std = var.sqrt().max(1e-6);
        FeatureVec::new(feats.into_iter().map(|x| (x - mean) / std).collect())
    }

    fn forward_layer(&self, l: usize, input: &FeatureVec) -> FeatureVec {
        let fan_in = self.dims[l];
        let fan_out = self.dims[l + 1];
        assert_eq!(input.dim(), fan_in, "layer {l} input dim mismatch");
        let w = &self.weights[l];
        let x = input.as_slice();
        let mut out = Vec::with_capacity(fan_out);
        for o in 0..fan_out {
            let row = &w[o * fan_in..(o + 1) * fan_in];
            let mut acc = 0.0f32;
            for i in 0..fan_in {
                acc += row[i] * x[i];
            }
            out.push(acc.tanh());
        }
        FeatureVec::new(out)
    }

    /// Run the full network, returning every intermediate activation:
    /// element 0 is the pooled front end, element `k` (1-based) the output
    /// of projection layer `k`. The final element is L2-normalized — it is
    /// *the* feature descriptor CoIC ships to the edge.
    pub fn extract_layers(&self, img: &Image) -> Vec<FeatureVec> {
        let mut acts = vec![self.pool(img)];
        for l in 0..self.num_layers() {
            let next = self.forward_layer(l, acts.last().unwrap());
            acts.push(next);
        }
        let last = acts.last_mut().unwrap();
        *last = last.normalized();
        acts
    }

    /// Run the full network and return only the final embedding.
    pub fn extract(&self, img: &Image) -> FeatureVec {
        self.extract_layers(img).pop().unwrap()
    }

    /// Resume the forward pass from the activation of layer `k` (as indexed
    /// in [`SimNet::extract_layers`]); used by the fine-grained layer cache
    /// to reuse a cached prefix.
    pub fn extract_from_layer(&self, k: usize, activation: &FeatureVec) -> FeatureVec {
        assert!(k <= self.num_layers(), "layer index out of range");
        assert_eq!(activation.dim(), self.dims[k], "activation dim mismatch");
        let mut cur = activation.clone();
        for l in k..self.num_layers() {
            cur = self.forward_layer(l, &cur);
        }
        cur.normalized()
    }

    /// Multiply–accumulate count of the pooling front end for an image.
    pub fn pool_flops(&self, img: &Image) -> u64 {
        (img.width() as u64) * (img.height() as u64)
    }

    /// MAC count of projection layer `l` (0-based).
    pub fn layer_flops(&self, l: usize) -> u64 {
        (self.dims[l] * self.dims[l + 1]) as u64 * 2
    }

    /// Total MAC count for a full extraction on `img`.
    pub fn total_flops(&self, img: &Image) -> u64 {
        self.pool_flops(img)
            + (0..self.num_layers())
                .map(|l| self.layer_flops(l))
                .sum::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scene::{ObjectClass, SceneGenerator, ViewParams};
    use rand::SeedableRng;

    fn dist(a: &FeatureVec, b: &FeatureVec) -> f32 {
        a.as_slice()
            .iter()
            .zip(b.as_slice())
            .map(|(x, y)| (x - y) * (x - y))
            .sum::<f32>()
            .sqrt()
    }

    #[test]
    fn deterministic_across_instances() {
        let g = SceneGenerator::new(64);
        let img = g.canonical(ObjectClass(5));
        let a = SimNet::default_net().extract(&img);
        let b = SimNet::default_net().extract(&img);
        assert_eq!(a, b);
    }

    #[test]
    fn output_is_unit_norm() {
        let g = SceneGenerator::new(64);
        let net = SimNet::default_net();
        for c in 0..5 {
            let e = net.extract(&g.canonical(ObjectClass(c)));
            assert!((e.l2_norm() - 1.0).abs() < 1e-5);
            assert_eq!(e.dim(), net.embedding_dim());
        }
    }

    #[test]
    fn intra_class_closer_than_inter_class() {
        let g = SceneGenerator::new(64);
        let net = SimNet::default_net();
        let mut rng = StdRng::seed_from_u64(11);
        let classes = 8;
        let views = 6;
        let mut embeds: Vec<Vec<FeatureVec>> = Vec::new();
        for c in 0..classes {
            let mut per = Vec::new();
            for _ in 0..views {
                let v = ViewParams::jittered(&mut rng, 0.08, 4.0);
                per.push(net.extract(&g.observe(ObjectClass(c), &v, &mut rng)));
            }
            embeds.push(per);
        }
        let mut intra = (0.0f64, 0u64);
        let mut inter = (0.0f64, 0u64);
        for c in 0..classes as usize {
            for i in 0..views {
                for j in (i + 1)..views {
                    intra.0 += dist(&embeds[c][i], &embeds[c][j]) as f64;
                    intra.1 += 1;
                }
            }
            for c2 in (c + 1)..classes as usize {
                for i in 0..views {
                    for j in 0..views {
                        inter.0 += dist(&embeds[c][i], &embeds[c2][j]) as f64;
                        inter.1 += 1;
                    }
                }
            }
        }
        let intra_mean = intra.0 / intra.1 as f64;
        let inter_mean = inter.0 / inter.1 as f64;
        assert!(
            inter_mean > 2.0 * intra_mean,
            "separation too weak: intra {intra_mean:.3} inter {inter_mean:.3}"
        );
    }

    #[test]
    fn illumination_invariance() {
        let g = SceneGenerator::new(64);
        let net = SimNet::default_net();
        let img = g.canonical(ObjectClass(9));
        let brighter = img.scaled(1.2);
        let d = dist(&net.extract(&img), &net.extract(&brighter));
        assert!(d < 0.15, "illumination shifted embedding by {d}");
    }

    #[test]
    fn layer_outputs_chain() {
        let g = SceneGenerator::new(64);
        let net = SimNet::default_net();
        let img = g.canonical(ObjectClass(2));
        let layers = net.extract_layers(&img);
        assert_eq!(layers.len(), net.num_layers() + 1);
        // Resuming from layer k reproduces the final embedding (note that
        // extract_layers normalizes the last element, so resume from the
        // unnormalized chain: recompute through forward passes).
        for k in 0..net.num_layers() {
            let resumed = net.extract_from_layer(k, &layers[k]);
            let full = layers.last().unwrap();
            assert!(
                dist(&resumed, full) < 1e-5,
                "resume from layer {k} diverged"
            );
        }
    }

    #[test]
    fn flops_accounting() {
        let net = SimNet::default_net();
        let img = Image::new(64, 64, 0);
        assert_eq!(net.pool_flops(&img), 64 * 64);
        assert_eq!(net.layer_flops(0), 64 * 64 * 2);
        assert_eq!(net.layer_flops(1), 64 * 48 * 2);
        assert_eq!(net.layer_flops(2), 48 * 32 * 2);
        assert_eq!(
            net.total_flops(&img),
            64 * 64 + 64 * 64 * 2 + 64 * 48 * 2 + 48 * 32 * 2
        );
    }

    #[test]
    fn byte_size_is_compact() {
        let net = SimNet::default_net();
        let g = SceneGenerator::new(64);
        let img = g.canonical(ObjectClass(0));
        let e = net.extract(&img);
        // Descriptor must be much smaller than the image it summarizes.
        assert!(e.byte_size() * 10 < img.byte_size());
    }

    #[test]
    #[should_panic(expected = "dim mismatch")]
    fn resume_with_wrong_dim_panics() {
        let net = SimNet::default_net();
        let bad = FeatureVec::new(vec![0.0; 7]);
        let _ = net.extract_from_layer(1, &bad);
    }

    #[test]
    fn normalized_zero_vector_is_identity() {
        let z = FeatureVec::new(vec![0.0; 4]);
        assert_eq!(z.normalized(), z);
    }
}

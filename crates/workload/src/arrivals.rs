//! Request arrival processes.

use rand::rngs::StdRng;
use rand::RngExt;

/// An arrival process generating inter-arrival gaps in nanoseconds.
pub trait ArrivalProcess {
    /// Draw the gap to the next arrival.
    fn next_gap_ns(&mut self, rng: &mut StdRng) -> u64;
}

/// Poisson arrivals (exponential inter-arrival times).
#[derive(Debug, Clone)]
pub struct Poisson {
    rate_per_sec: f64,
}

impl Poisson {
    /// Create a process with the given mean rate.
    ///
    /// # Panics
    /// Panics unless the rate is positive and finite.
    pub fn new(rate_per_sec: f64) -> Self {
        assert!(
            rate_per_sec.is_finite() && rate_per_sec > 0.0,
            "arrival rate must be positive"
        );
        Poisson { rate_per_sec }
    }
}

impl ArrivalProcess for Poisson {
    fn next_gap_ns(&mut self, rng: &mut StdRng) -> u64 {
        let u: f64 = rng.random::<f64>().max(1e-15);
        let secs = -u.ln() / self.rate_per_sec;
        (secs * 1e9) as u64
    }
}

/// Deterministic fixed-interval arrivals (e.g. a 30 fps camera pipeline).
#[derive(Debug, Clone)]
pub struct Periodic {
    interval_ns: u64,
}

impl Periodic {
    /// Create a process with a fixed interval.
    ///
    /// # Panics
    /// Panics if the interval is zero.
    pub fn new(interval_ns: u64) -> Self {
        assert!(interval_ns > 0, "interval must be positive");
        Periodic { interval_ns }
    }

    /// Convenience: a frame-rate process.
    pub fn fps(frames_per_sec: u64) -> Self {
        assert!(frames_per_sec > 0, "fps must be positive");
        Periodic::new(1_000_000_000 / frames_per_sec)
    }
}

impl ArrivalProcess for Periodic {
    fn next_gap_ns(&mut self, _rng: &mut StdRng) -> u64 {
        self.interval_ns
    }
}

/// Diurnal modulation of a base arrival process: the instantaneous rate is
/// scaled by a sinusoidal day/night envelope, so an edge sees rush-hour
/// peaks and overnight lulls. The gap of the wrapped process is stretched
/// by the inverse envelope at the current virtual time.
#[derive(Debug, Clone)]
pub struct Diurnal<P> {
    base: P,
    /// Seconds per full day cycle.
    period_s: f64,
    /// Envelope floor in (0, 1]: the overnight rate as a fraction of peak.
    floor: f64,
    /// Running virtual time of the process, ns.
    now_ns: u64,
}

impl<P: ArrivalProcess> Diurnal<P> {
    /// Wrap `base` with a day cycle of `period_s` seconds whose trough is
    /// `floor` of the peak rate.
    ///
    /// # Panics
    /// Panics unless `period_s > 0` and `0 < floor <= 1`.
    pub fn new(base: P, period_s: f64, floor: f64) -> Self {
        assert!(period_s > 0.0, "period must be positive");
        assert!(floor > 0.0 && floor <= 1.0, "floor must be in (0,1]");
        Diurnal {
            base,
            period_s,
            floor,
            now_ns: 0,
        }
    }

    fn envelope(&self, at_ns: u64) -> f64 {
        let phase = at_ns as f64 / 1e9 / self.period_s * std::f64::consts::TAU;
        // Peak at phase 0, trough at phase π, scaled into [floor, 1].
        let unit = (phase.cos() + 1.0) / 2.0;
        self.floor + (1.0 - self.floor) * unit
    }
}

impl<P: ArrivalProcess> ArrivalProcess for Diurnal<P> {
    fn next_gap_ns(&mut self, rng: &mut StdRng) -> u64 {
        let gap = self.base.next_gap_ns(rng);
        let env = self.envelope(self.now_ns).max(1e-6);
        let stretched = (gap as f64 / env) as u64;
        self.now_ns = self.now_ns.saturating_add(stretched);
        stretched
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn poisson_mean_gap_matches_rate() {
        let mut p = Poisson::new(100.0); // 100 req/s -> mean gap 10 ms
        let mut rng = StdRng::seed_from_u64(7);
        let n = 50_000;
        let total: u64 = (0..n).map(|_| p.next_gap_ns(&mut rng)).sum();
        let mean_ms = total as f64 / n as f64 / 1e6;
        assert!((9.5..10.5).contains(&mean_ms), "mean gap {mean_ms}ms");
    }

    #[test]
    fn poisson_gaps_vary() {
        let mut p = Poisson::new(10.0);
        let mut rng = StdRng::seed_from_u64(7);
        let a = p.next_gap_ns(&mut rng);
        let b = p.next_gap_ns(&mut rng);
        assert_ne!(a, b);
    }

    #[test]
    fn periodic_is_constant() {
        let mut p = Periodic::fps(30);
        let mut rng = StdRng::seed_from_u64(0);
        let gap = p.next_gap_ns(&mut rng);
        assert_eq!(gap, 33_333_333);
        assert_eq!(p.next_gap_ns(&mut rng), gap);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_rejected() {
        let _ = Poisson::new(0.0);
    }

    #[test]
    fn diurnal_peak_rate_exceeds_trough_rate() {
        // Count arrivals in the first (peak) quarter-day vs the half-day
        // around the trough.
        let mut p = Diurnal::new(Periodic::new(1_000_000), 10.0, 0.2);
        let mut rng = StdRng::seed_from_u64(1);
        let mut t = 0u64;
        let mut peak = 0u64;
        let mut trough = 0u64;
        for _ in 0..20_000 {
            t += p.next_gap_ns(&mut rng);
            let phase_s = (t as f64 / 1e9) % 10.0;
            if !(2.5..=7.5).contains(&phase_s) {
                peak += 1;
            } else {
                trough += 1;
            }
            if t > 20_000_000_000 {
                break;
            }
        }
        assert!(
            peak as f64 > 1.5 * trough as f64,
            "peak {peak} vs trough {trough}"
        );
    }

    #[test]
    fn diurnal_floor_one_is_identity() {
        let mut plain = Periodic::new(5_000);
        let mut wrapped = Diurnal::new(Periodic::new(5_000), 60.0, 1.0);
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..100 {
            assert_eq!(wrapped.next_gap_ns(&mut rng), plain.next_gap_ns(&mut rng));
        }
    }

    #[test]
    #[should_panic(expected = "floor must be")]
    fn diurnal_bad_floor_rejected() {
        let _ = Diurnal::new(Periodic::new(1), 10.0, 0.0);
    }
}

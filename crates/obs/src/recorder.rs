//! The [`Recorder`] trait and the [`Telemetry`] handle that implements it.

use crate::metrics::MetricsRegistry;
use crate::trace::{TraceKind, TraceLog, Value};

/// What instrumented code reports through. The trait stays sans-IO:
/// every method takes caller-supplied data (including timestamps from the
/// caller's `Clock`) and performs no IO.
pub trait Recorder {
    /// Add to a named counter.
    fn counter_add(&self, name: &str, delta: u64);
    /// Set a named gauge.
    fn gauge_set(&self, name: &str, value: i64);
    /// Record a latency observation (integer ns) into a named histogram.
    fn observe(&self, name: &str, value_ns: u64);
    /// Open a span.
    fn span_enter(&self, at_ns: u64, name: &'static str, fields: Vec<(&'static str, Value)>);
    /// Close a span.
    fn span_exit(&self, at_ns: u64, name: &'static str, fields: Vec<(&'static str, Value)>);
    /// Record a point event.
    fn event(&self, at_ns: u64, name: &'static str, fields: Vec<(&'static str, Value)>);
}

/// A recorder that discards everything.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    fn counter_add(&self, _name: &str, _delta: u64) {}
    fn gauge_set(&self, _name: &str, _value: i64) {}
    fn observe(&self, _name: &str, _value_ns: u64) {}
    fn span_enter(&self, _at_ns: u64, _name: &'static str, _fields: Vec<(&'static str, Value)>) {}
    fn span_exit(&self, _at_ns: u64, _name: &'static str, _fields: Vec<(&'static str, Value)>) {}
    fn event(&self, _at_ns: u64, _name: &'static str, _fields: Vec<(&'static str, Value)>) {}
}

/// The concrete observability handle: a shared [`MetricsRegistry`] plus a
/// shared [`TraceLog`]. Clones share both, so one handle threads through
/// every layer of a run. `Telemetry::default()` is disabled — metrics
/// still register (they are cheap and always useful) but the trace drops
/// records, so default-constructed configs carry no tracing overhead.
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    registry: MetricsRegistry,
    trace: TraceLog,
}

impl Telemetry {
    /// A recording handle (metrics + trace both live).
    pub fn new() -> Telemetry {
        Telemetry {
            registry: MetricsRegistry::new(),
            trace: TraceLog::enabled(),
        }
    }

    /// A handle whose trace discards records. The registry still works.
    pub fn disabled() -> Telemetry {
        Telemetry::default()
    }

    /// Is the trace recording?
    pub fn trace_enabled(&self) -> bool {
        self.trace.is_enabled()
    }

    /// The shared metrics registry.
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// The shared trace log.
    pub fn trace(&self) -> &TraceLog {
        &self.trace
    }

    /// JSONL export of the trace (see [`TraceLog::to_jsonl`]).
    pub fn trace_jsonl(&self) -> String {
        self.trace.to_jsonl()
    }

    /// Canonical metrics snapshot (see
    /// [`MetricsRegistry::canonical`]).
    pub fn metrics_canonical(&self) -> String {
        self.registry.canonical()
    }
}

impl Recorder for Telemetry {
    fn counter_add(&self, name: &str, delta: u64) {
        self.registry.counter_add(name, delta);
    }
    fn gauge_set(&self, name: &str, value: i64) {
        self.registry.gauge_set(name, value);
    }
    fn observe(&self, name: &str, value_ns: u64) {
        self.registry.observe(name, value_ns);
    }
    fn span_enter(&self, at_ns: u64, name: &'static str, fields: Vec<(&'static str, Value)>) {
        self.trace.push(at_ns, TraceKind::Enter, name, fields);
    }
    fn span_exit(&self, at_ns: u64, name: &'static str, fields: Vec<(&'static str, Value)>) {
        self.trace.push(at_ns, TraceKind::Exit, name, fields);
    }
    fn event(&self, at_ns: u64, name: &'static str, fields: Vec<(&'static str, Value)>) {
        self.trace.push(at_ns, TraceKind::Event, name, fields);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn telemetry_routes_to_registry_and_trace() {
        let tel = Telemetry::new();
        tel.counter_add("c", 2);
        tel.observe("lat", 5_000_000);
        tel.event(7, "e", vec![("k", Value::U64(1))]);
        assert_eq!(tel.registry().counter("c"), 2);
        assert_eq!(tel.registry().histogram("lat").unwrap().count(), 1);
        assert_eq!(tel.trace().len(), 1);
    }

    #[test]
    fn disabled_telemetry_still_counts_but_does_not_trace() {
        let tel = Telemetry::disabled();
        tel.counter_add("c", 1);
        tel.event(0, "e", vec![]);
        assert_eq!(tel.registry().counter("c"), 1);
        assert!(tel.trace().is_empty());
        assert!(!tel.trace_enabled());
    }

    #[test]
    fn null_recorder_is_inert() {
        let r = NullRecorder;
        r.counter_add("c", 1);
        r.event(0, "e", vec![]);
        r.span_enter(0, "s", vec![]);
        r.span_exit(1, "s", vec![]);
    }
}

//! Real-socket deployment of CoIC.
//!
//! The same [`crate::services`] logic as the simulator, but deployed over
//! framed TCP ([`coic_netsim::rt`]): a cloud process, an edge process with
//! shared caches serving each client connection from its own thread, and a
//! blocking client. Used by the `live_deployment` example and the loopback
//! integration tests; latency here is real wall-clock time (the SimNet
//! inference, CMF parsing and panorama synthesis all actually run).

use crate::content::{ModelLibrary, PanoLibrary};
use crate::protocol::Msg;
use crate::qoe::Path;
use crate::services::{
    ClientConfig, ClientLogic, CloudService, EdgeConfig, EdgeReply, EdgeService,
};
use crate::task::TaskResult;
use crate::compute::ComputeConfig;
use coic_netsim::rt::{FrameConn, FrameServer};
use coic_vision::{ObjectClass, SceneGenerator};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Instant;

fn epoch_ns(start: Instant) -> u64 {
    start.elapsed().as_nanos() as u64
}

/// A running cloud process.
pub struct CloudHandle {
    addr: SocketAddr,
    _server: FrameServer,
}

impl CloudHandle {
    /// Address clients/edges should connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

/// Start a cloud server on an ephemeral loopback port.
pub fn spawn_cloud(
    classes: &[ObjectClass],
    image_side: u32,
    compute: ComputeConfig,
    models: Arc<ModelLibrary>,
    panos: Arc<PanoLibrary>,
    seed: u64,
) -> std::io::Result<CloudHandle> {
    let gen = SceneGenerator::new(image_side);
    let service = Arc::new(CloudService::new(
        classes, &gen, compute, models, panos, seed,
    ));
    let server = FrameServer::spawn("127.0.0.1:0", move |frame| {
        let msg = Msg::decode(&frame).ok()?;
        let reply = match msg {
            Msg::Forward { req_id, task } => {
                let (result, _cost) = service.execute(&task);
                Msg::CloudReply { req_id, result }
            }
            Msg::BaselineRequest { req_id, task } => {
                let (result, _cost) = service.execute(&task);
                Msg::BaselineReply { req_id, result }
            }
            _ => return None,
        };
        Some(reply.encode().to_vec())
    })?;
    Ok(CloudHandle {
        addr: server.local_addr(),
        _server: server,
    })
}

/// A running edge process.
pub struct EdgeHandle {
    addr: SocketAddr,
    peers: Arc<Mutex<Vec<SocketAddr>>>,
    _server: FrameServer,
}

impl EdgeHandle {
    /// Address clients should connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Register a cooperating peer edge: exact-task misses will ask it
    /// before going to the cloud.
    pub fn add_peer(&self, addr: SocketAddr) {
        self.peers.lock().push(addr);
    }
}

/// Start an edge server on an ephemeral loopback port, forwarding misses
/// to `cloud_addr`.
pub fn spawn_edge(cloud_addr: SocketAddr, cfg: &EdgeConfig) -> std::io::Result<EdgeHandle> {
    let service = Arc::new(Mutex::new(EdgeService::new(cfg)));
    let pending = Arc::new(Mutex::new(HashMap::new()));
    let peers: Arc<Mutex<Vec<SocketAddr>>> = Arc::new(Mutex::new(Vec::new()));
    let peers_in_handler = peers.clone();
    let start = Instant::now();
    let server = FrameServer::spawn("127.0.0.1:0", move |frame| {
        let peers = &peers_in_handler;
        let msg = Msg::decode(&frame).ok()?;
        let now = epoch_ns(start);
        let reply = match msg {
            Msg::Query {
                req_id,
                descriptor,
                hint,
            } => {
                let decision = service.lock().handle_query(&descriptor, hint.as_ref(), now);
                match decision {
                    EdgeReply::Hit(result) => Msg::Hit { req_id, result },
                    EdgeReply::NeedPayload => {
                        pending.lock().insert(req_id, descriptor);
                        Msg::NeedPayload { req_id }
                    }
                    EdgeReply::Forward(task) => {
                        // Cooperative lookup: ask each registered peer edge
                        // before paying the cloud round trip (exact tasks
                        // carry their digest in the descriptor).
                        let peer_hit = crate::services::descriptor_digest(&descriptor)
                            .and_then(|digest| {
                                let addrs = peers.lock().clone();
                                for addr in addrs {
                                    let Ok(mut peer) = FrameConn::connect(addr) else {
                                        continue;
                                    };
                                    if peer
                                        .send(&Msg::PeerQuery { req_id, digest }.encode())
                                        .is_err()
                                    {
                                        continue;
                                    }
                                    let Ok(resp) = peer.recv() else { continue };
                                    if let Ok(Msg::PeerReply {
                                        result: Some(result),
                                        ..
                                    }) = Msg::decode(&resp)
                                    {
                                        return Some(result);
                                    }
                                }
                                None
                            });
                        if let Some(result) = peer_hit {
                            service.lock().insert(&descriptor, &result, now);
                            Msg::PeerResult { req_id, result }
                        } else {
                            // Synchronous edge→cloud RPC on this connection's
                            // thread; other clients proceed on their threads.
                            let mut cloud = FrameConn::connect(cloud_addr).ok()?;
                            cloud.send(&Msg::Forward { req_id, task }.encode()).ok()?;
                            let resp = cloud.recv().ok()?;
                            match Msg::decode(&resp).ok()? {
                                Msg::CloudReply { result, .. } => {
                                    service.lock().insert(&descriptor, &result, now);
                                    Msg::Result { req_id, result }
                                }
                                _ => return None,
                            }
                        }
                    }
                }
            }
            Msg::PeerQuery { req_id, digest } => {
                let result = service.lock().exact_lookup(&digest, now);
                Msg::PeerReply { req_id, result }
            }
            Msg::Upload { req_id, task } => {
                let descriptor = pending.lock().remove(&req_id)?;
                let mut cloud = FrameConn::connect(cloud_addr).ok()?;
                cloud.send(&Msg::Forward { req_id, task }.encode()).ok()?;
                let resp = cloud.recv().ok()?;
                match Msg::decode(&resp).ok()? {
                    Msg::CloudReply { result, .. } => {
                        service.lock().insert(&descriptor, &result, now);
                        Msg::Result { req_id, result }
                    }
                    _ => return None,
                }
            }
            _ => return None,
        };
        Some(reply.encode().to_vec())
    })?;
    Ok(EdgeHandle {
        addr: server.local_addr(),
        peers,
        _server: server,
    })
}

/// Outcome of one live request.
#[derive(Debug)]
pub struct LiveOutcome {
    /// The result delivered to the client.
    pub result: TaskResult,
    /// Wall-clock latency.
    pub elapsed: std::time::Duration,
    /// Hit/miss path taken.
    pub path: Path,
}

/// A blocking CoIC client over a live edge connection.
pub struct NetClient {
    conn: FrameConn,
    logic: ClientLogic,
    next_req: u64,
}

impl NetClient {
    /// Connect to a live edge.
    pub fn connect(
        edge_addr: SocketAddr,
        client_cfg: ClientConfig,
        compute: ComputeConfig,
        models: Arc<ModelLibrary>,
        panos: Arc<PanoLibrary>,
    ) -> std::io::Result<NetClient> {
        Ok(NetClient {
            conn: FrameConn::connect(edge_addr)?,
            logic: ClientLogic::new(client_cfg, compute, models, panos),
            next_req: 1,
        })
    }

    /// Execute one workload request end to end, returning the result, the
    /// measured wall latency and whether it was served from the edge cache.
    pub fn execute(
        &mut self,
        req: &coic_workload::Request,
    ) -> Result<LiveOutcome, Box<dyn std::error::Error>> {
        let started = Instant::now();
        let prepared = self.logic.prepare(req);
        let req_id = self.next_req;
        self.next_req += 1;
        let hint = match &prepared.task {
            crate::task::TaskRequest::Recognition { .. } => None,
            t => Some(t.clone()),
        };
        self.conn.send(
            &Msg::Query {
                req_id,
                descriptor: prepared.descriptor.clone(),
                hint,
            }
            .encode(),
        )?;
        loop {
            let frame = self.conn.recv()?;
            match Msg::decode(&frame)? {
                Msg::Hit { result, .. } => {
                    return Ok(LiveOutcome {
                        result,
                        elapsed: started.elapsed(),
                        path: Path::EdgeHit,
                    })
                }
                Msg::Result { result, .. } => {
                    return Ok(LiveOutcome {
                        result,
                        elapsed: started.elapsed(),
                        path: Path::CloudMiss,
                    })
                }
                Msg::PeerResult { result, .. } => {
                    return Ok(LiveOutcome {
                        result,
                        elapsed: started.elapsed(),
                        path: Path::PeerHit,
                    })
                }
                Msg::NeedPayload { req_id } => {
                    self.conn.send(
                        &Msg::Upload {
                            req_id,
                            task: prepared.task.clone(),
                        }
                        .encode(),
                    )?;
                }
                other => return Err(format!("unexpected reply {other:?}").into()),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coic_workload::{Request, RequestKind, UserId, ZoneId};

    fn stack() -> (CloudHandle, EdgeHandle, NetClient) {
        let models = Arc::new(ModelLibrary::new());
        let panos = Arc::new(PanoLibrary::new(64));
        let compute = ComputeConfig::default();
        let classes: Vec<_> = (0..5).map(ObjectClass).collect();
        let cloud = spawn_cloud(
            &classes,
            64,
            compute,
            models.clone(),
            panos.clone(),
            3,
        )
        .unwrap();
        let edge = spawn_edge(cloud.addr(), &EdgeConfig::default()).unwrap();
        let client = NetClient::connect(
            edge.addr(),
            ClientConfig::default(),
            compute,
            models,
            panos,
        )
        .unwrap();
        (cloud, edge, client)
    }

    fn recog(class: u32, seed: u64) -> Request {
        Request {
            user: UserId(0),
            zone: ZoneId(0),
            at_ns: 0,
            kind: RequestKind::Recognition {
                class,
                view_seed: seed,
            },
        }
    }

    #[test]
    fn live_recognition_miss_then_hit() {
        let (_cloud, _edge, mut client) = stack();
        let first = client.execute(&recog(2, 10)).unwrap();
        assert_eq!(first.path, Path::CloudMiss);
        match &first.result {
            TaskResult::Recognition(r) => assert_eq!(r.label, 2),
            other => panic!("unexpected {other:?}"),
        }
        // Same viewpoint again: identical descriptor, guaranteed hit.
        let second = client.execute(&recog(2, 10)).unwrap();
        assert_eq!(second.path, Path::EdgeHit);
    }

    #[test]
    fn live_model_load_shares_across_clients() {
        let models = Arc::new(ModelLibrary::new());
        let panos = Arc::new(PanoLibrary::new(64));
        let compute = ComputeConfig::default();
        let classes = vec![ObjectClass(0)];
        let cloud =
            spawn_cloud(&classes, 64, compute, models.clone(), panos.clone(), 3).unwrap();
        let edge = spawn_edge(cloud.addr(), &EdgeConfig::default()).unwrap();
        let req = Request {
            user: UserId(0),
            zone: ZoneId(0),
            at_ns: 0,
            kind: RequestKind::RenderLoad {
                model_id: 5,
                size_bytes: 60_000,
            },
        };
        let mut a = NetClient::connect(
            edge.addr(),
            ClientConfig::default(),
            compute,
            models.clone(),
            panos.clone(),
        )
        .unwrap();
        let mut b = NetClient::connect(
            edge.addr(),
            ClientConfig::default(),
            compute,
            models,
            panos,
        )
        .unwrap();
        // Client A warms the cache; client B hits it.
        assert_eq!(a.execute(&req).unwrap().path, Path::CloudMiss);
        let out = b.execute(&req).unwrap();
        assert_eq!(out.path, Path::EdgeHit);
        match out.result {
            TaskResult::Model(bytes) => {
                coic_render::load_cmf(&bytes).unwrap();
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn live_peer_edges_cooperate() {
        let models = Arc::new(ModelLibrary::new());
        let panos = Arc::new(PanoLibrary::new(64));
        let compute = ComputeConfig::default();
        let classes = vec![ObjectClass(0)];
        let cloud =
            spawn_cloud(&classes, 64, compute, models.clone(), panos.clone(), 3).unwrap();
        let edge_a = spawn_edge(cloud.addr(), &EdgeConfig::default()).unwrap();
        let edge_b = spawn_edge(cloud.addr(), &EdgeConfig::default()).unwrap();
        edge_a.add_peer(edge_b.addr());
        edge_b.add_peer(edge_a.addr());

        let req = Request {
            user: UserId(0),
            zone: ZoneId(0),
            at_ns: 0,
            kind: RequestKind::RenderLoad {
                model_id: 3,
                size_bytes: 80_000,
            },
        };
        // Warm edge B through its own client.
        let mut b_client = NetClient::connect(
            edge_b.addr(),
            ClientConfig::default(),
            compute,
            models.clone(),
            panos.clone(),
        )
        .unwrap();
        assert_eq!(b_client.execute(&req).unwrap().path, Path::CloudMiss);

        // Edge A's client now gets the model via the peer, not the cloud.
        let mut a_client = NetClient::connect(
            edge_a.addr(),
            ClientConfig::default(),
            compute,
            models,
            panos,
        )
        .unwrap();
        let out = a_client.execute(&req).unwrap();
        assert_eq!(out.path, Path::PeerHit);
        // And it is now cached locally at A.
        assert_eq!(a_client.execute(&req).unwrap().path, Path::EdgeHit);
    }

    #[test]
    fn live_panorama_flow() {
        let (_cloud, _edge, mut client) = stack();
        let req = Request {
            user: UserId(0),
            zone: ZoneId(0),
            at_ns: 0,
            kind: RequestKind::Panorama { frame_id: 3 },
        };
        let miss = client.execute(&req).unwrap();
        assert_eq!(miss.path, Path::CloudMiss);
        let hit = client.execute(&req).unwrap();
        assert_eq!(hit.path, Path::EdgeHit);
        assert_eq!(miss.result, hit.result);
    }
}

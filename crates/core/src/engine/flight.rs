//! Single-flight miss coalescing.
//!
//! The first miss on a key becomes the *leader* and drives the upstream
//! fetch; concurrent misses on the same key are *queued* as waiters and
//! share the leader's answer. One table serves both drivers: the simulated
//! edge queues `(NodeId, req_id)` pairs and answers them on `CloudReply`;
//! the live edge queues condvar-style signals that block connection
//! threads until the leader completes.

use std::collections::HashMap;
use std::hash::Hash;

/// What [`SingleFlight::claim`] decided for a caller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlightClaim {
    /// No fetch is in flight for this key: the caller must perform it and
    /// then call [`SingleFlight::complete`].
    Leader,
    /// A fetch is already in flight; the caller's waiter was queued and
    /// will be returned to the leader by [`SingleFlight::complete`].
    Queued,
}

/// Coalesces concurrent misses on the same key into one upstream fetch.
#[derive(Debug)]
pub struct SingleFlight<K, W> {
    inflight: HashMap<K, Vec<W>>,
}

impl<K: Eq + Hash + Clone, W> SingleFlight<K, W> {
    /// An empty table.
    pub fn new() -> SingleFlight<K, W> {
        SingleFlight {
            inflight: HashMap::new(),
        }
    }

    /// Claim the fetch for `key`. The leader's own waiter is *not* queued —
    /// it answers itself from the fetch result.
    pub fn claim(&mut self, key: K, waiter: W) -> FlightClaim {
        match self.inflight.get_mut(&key) {
            Some(waiters) => {
                waiters.push(waiter);
                FlightClaim::Queued
            }
            None => {
                self.inflight.insert(key, Vec::new());
                FlightClaim::Leader
            }
        }
    }

    /// Finish the flight for `key`, returning every queued waiter for the
    /// leader to answer. Unknown keys return no waiters.
    pub fn complete(&mut self, key: &K) -> Vec<W> {
        self.inflight.remove(key).unwrap_or_default()
    }

    /// Is a fetch currently in flight for `key`?
    pub fn is_inflight(&self, key: &K) -> bool {
        self.inflight.contains_key(key)
    }
}

impl<K: Eq + Hash + Clone, W> Default for SingleFlight<K, W> {
    fn default() -> Self {
        SingleFlight::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_claim_leads_rest_queue() {
        let mut f: SingleFlight<u32, &str> = SingleFlight::new();
        assert_eq!(f.claim(7, "a"), FlightClaim::Leader);
        assert_eq!(f.claim(7, "b"), FlightClaim::Queued);
        assert_eq!(f.claim(7, "c"), FlightClaim::Queued);
        assert!(f.is_inflight(&7));
        assert_eq!(f.complete(&7), vec!["b", "c"]);
        assert!(!f.is_inflight(&7));
        // After completion the next miss leads again.
        assert_eq!(f.claim(7, "d"), FlightClaim::Leader);
    }

    #[test]
    fn keys_are_independent() {
        let mut f: SingleFlight<u32, u32> = SingleFlight::new();
        assert_eq!(f.claim(1, 10), FlightClaim::Leader);
        assert_eq!(f.claim(2, 20), FlightClaim::Leader);
        assert_eq!(f.claim(1, 11), FlightClaim::Queued);
        assert_eq!(f.complete(&2), Vec::<u32>::new());
        assert_eq!(f.complete(&1), vec![11]);
    }
}

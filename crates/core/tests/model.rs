//! Exhaustive interleaving exploration of the engine's concurrency
//! primitives (build with `--features model-check`).
//!
//! The `model-check` feature reroutes the engine's locks and atomics
//! through the in-tree `loom` shim, so every lock and atomic operation in
//! [`ShardedSingleFlight`] and [`CircuitBreaker`] becomes a scheduling
//! point. Each test runs its scenario under every bounded-preemption
//! interleaving and asserts the structure's invariant in all of them.

#![cfg(feature = "model-check")]

use coic_core::engine::{BreakerState, CircuitBreaker, FlightClaim, ShardedSingleFlight};
use loom::model::Builder;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

#[test]
fn single_flight_elects_exactly_one_leader_and_loses_no_waiter() {
    let report = Builder::with_preemption_bound(3)
        .check(|| {
            let flight: Arc<ShardedSingleFlight<u64, u64>> = Arc::new(ShardedSingleFlight::new(2));
            let leaders = Arc::new(AtomicU64::new(0));
            let threads: Vec<_> = (0..3u64)
                .map(|i| {
                    let flight = Arc::clone(&flight);
                    let leaders = Arc::clone(&leaders);
                    loom::thread::spawn(move || {
                        if flight.claim(42, i) == FlightClaim::Leader {
                            leaders.fetch_add(1, Ordering::Relaxed);
                        }
                    })
                })
                .collect();
            for t in threads {
                t.join().unwrap();
            }
            assert_eq!(
                leaders.load(Ordering::Relaxed),
                1,
                "concurrent misses on one key must elect exactly one leader"
            );
            let mut waiters = flight.complete(&42);
            waiters.sort_unstable();
            assert_eq!(waiters.len(), 2, "no queued waiter may be lost");
            assert!(
                waiters.iter().all(|w| (0..3).contains(w)),
                "waiters are the two non-leader callers: {waiters:?}"
            );
            assert!(!flight.is_inflight(&42), "completion clears the flight");
            // The next miss after completion leads again.
            assert_eq!(flight.claim(42, 9), FlightClaim::Leader);
        })
        .unwrap_or_else(|failure| panic!("single-flight invariant violated:\n{failure}"));
    println!(
        "single-flight coalescing: {} schedules explored (complete: {})",
        report.schedules, report.complete
    );
    assert!(report.complete);
    assert!(
        report.schedules >= 1_000,
        "expected >= 1000 interleavings, got {}",
        report.schedules
    );
}

fn stale_success_scenario() {
    // One slow call is admitted while the breaker is closed; concurrent
    // failures then trip it. Whenever the trip lands before the slow
    // call's success is recorded, that success is stale — it must not
    // close the breaker and skip the cooldown/probe sequence.
    let breaker = Arc::new(CircuitBreaker::new(3, Duration::from_secs(1)));
    let slow = {
        let b = Arc::clone(&breaker);
        loom::thread::spawn(move || {
            if b.allow(0) {
                b.record(true, 0);
            }
        })
    };
    let failing: Vec<_> = (0..2)
        .map(|_| {
            let b = Arc::clone(&breaker);
            loom::thread::spawn(move || {
                for _ in 0..2 {
                    if b.allow(0) {
                        b.record(false, 0);
                    }
                }
            })
        })
        .collect();
    slow.join().unwrap();
    for f in failing {
        f.join().unwrap();
    }
    // All events happened at t=0 and the cooldown is 1s, so a tripped
    // breaker has no legitimate path back to Closed in this scenario: it
    // can only close via a half-open probe, which requires the cooldown
    // to elapse first.
    if breaker.trips() > 0 {
        assert_eq!(
            breaker.state(),
            BreakerState::Open,
            "a tripped breaker closed without a cooldown + probe"
        );
        assert_eq!(breaker.closes(), 0);
        assert!(!breaker.allow(1), "still cooling down");
    }
}

#[test]
fn stale_success_never_closes_a_tripped_breaker() {
    let report = Builder::with_preemption_bound(2)
        .check(stale_success_scenario)
        .unwrap_or_else(|failure| panic!("breaker invariant violated:\n{failure}"));
    println!(
        "breaker stale-success: {} schedules explored (complete: {})",
        report.schedules, report.complete
    );
    assert!(report.complete);
    assert!(
        report.schedules >= 1_000,
        "expected >= 1000 interleavings, got {}",
        report.schedules
    );
}

#[test]
fn half_open_breaker_grants_exactly_one_probe() {
    let report = Builder::with_preemption_bound(3)
        .check(|| {
            // Trip the breaker at t=0, then race three callers after the
            // cooldown: the half-open slot must admit exactly one probe,
            // no matter how the `allow` calls interleave.
            let breaker = Arc::new(CircuitBreaker::new(1, Duration::from_secs(1)));
            assert!(breaker.allow(0));
            breaker.record(false, 0);
            assert_eq!(breaker.state(), BreakerState::Open);

            let after_cooldown = 2_000_000_000;
            let granted = Arc::new(AtomicU64::new(0));
            let callers: Vec<_> = (0..3)
                .map(|_| {
                    let b = Arc::clone(&breaker);
                    let granted = Arc::clone(&granted);
                    loom::thread::spawn(move || {
                        if b.allow(after_cooldown) {
                            granted.fetch_add(1, Ordering::Relaxed);
                        }
                    })
                })
                .collect();
            for c in callers {
                c.join().unwrap();
            }
            assert_eq!(
                granted.load(Ordering::Relaxed),
                1,
                "the half-open slot must admit exactly one concurrent probe"
            );
            assert_eq!(breaker.state(), BreakerState::HalfOpen);
            // The probe's success closes the breaker for everyone.
            breaker.record(true, after_cooldown);
            assert_eq!(breaker.state(), BreakerState::Closed);
            assert!(breaker.allow(after_cooldown + 1));
        })
        .unwrap_or_else(|failure| panic!("half-open invariant violated:\n{failure}"));
    println!(
        "breaker half-open probe: {} schedules explored (complete: {})",
        report.schedules, report.complete
    );
    assert!(report.complete);
    assert!(
        report.schedules >= 100,
        "expected >= 100 interleavings, got {}",
        report.schedules
    );
}

#[test]
fn breaker_exploration_is_deterministic() {
    let run = |seed: u64| {
        Builder::with_preemption_bound(2)
            .seed(seed)
            .check(stale_success_scenario)
            .expect("invariant holds")
    };
    let a = run(11);
    let b = run(11);
    assert_eq!(
        a.schedules, b.schedules,
        "same seed must enumerate the same schedules in the same order"
    );
}

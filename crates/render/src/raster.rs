//! Software rasterizer.
//!
//! Proves that what the edge cache stores and ships is a *drawable model*,
//! not an opaque blob: meshes are transformed, culled, z-buffered and
//! Lambert-shaded into a framebuffer. Also the substrate behind panorama
//! synthesis for the VR task family.

use crate::math::{Mat4, Vec3};
use crate::mesh::Mesh;

/// A grayscale framebuffer with a depth buffer.
pub struct Framebuffer {
    width: u32,
    height: u32,
    color: Vec<u8>,
    depth: Vec<f32>,
}

impl Framebuffer {
    /// Create a cleared framebuffer (black, depth = +inf).
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn new(width: u32, height: u32) -> Self {
        assert!(
            width > 0 && height > 0,
            "framebuffer dimensions must be positive"
        );
        Framebuffer {
            width,
            height,
            color: vec![0; (width * height) as usize],
            depth: vec![f32::INFINITY; (width * height) as usize],
        }
    }

    /// Width in pixels.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Height in pixels.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Pixel intensity at `(x, y)`.
    pub fn get(&self, x: u32, y: u32) -> u8 {
        assert!(x < self.width && y < self.height, "pixel out of bounds");
        self.color[(y * self.width + x) as usize]
    }

    /// Depth value at `(x, y)`.
    pub fn depth_at(&self, x: u32, y: u32) -> f32 {
        assert!(x < self.width && y < self.height, "pixel out of bounds");
        self.depth[(y * self.width + x) as usize]
    }

    /// Raw intensity bytes, row-major.
    pub fn pixels(&self) -> &[u8] {
        &self.color
    }

    /// Reset to black / infinite depth.
    pub fn clear(&mut self) {
        self.color.fill(0);
        self.depth.fill(f32::INFINITY);
    }

    /// Fraction of pixels that were written at least once.
    pub fn coverage(&self) -> f64 {
        let covered = self.depth.iter().filter(|d| d.is_finite()).count();
        covered as f64 / self.depth.len() as f64
    }
}

/// Statistics from one draw call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DrawStats {
    /// Triangles submitted.
    pub triangles_in: u64,
    /// Triangles surviving clipping and backface culling.
    pub triangles_drawn: u64,
    /// Pixels that passed the depth test and were shaded.
    pub pixels_shaded: u64,
}

/// Draw `mesh` into `fb` under the model-view-projection matrix `mvp`,
/// shading with a directional light along `light_dir` (world space).
///
/// Conventions: right-handed eye space looking down -z, OpenGL-style NDC;
/// counter-clockwise (in NDC) triangles are front-facing.
pub fn draw(
    fb: &mut Framebuffer,
    mesh: &Mesh,
    mvp: &Mat4,
    model: &Mat4,
    light_dir: Vec3,
) -> DrawStats {
    let mut stats = DrawStats {
        triangles_in: mesh.triangle_count() as u64,
        ..DrawStats::default()
    };
    let light = light_dir.normalized();
    let w = fb.width as f32;
    let h = fb.height as f32;

    // Transform all vertices once.
    let clip: Vec<_> = mesh
        .vertices
        .iter()
        .map(|v| mvp.mul_vec4(v.pos.extend(1.0)))
        .collect();
    let world_normals: Vec<_> = mesh
        .vertices
        .iter()
        .map(|v| model.transform_dir(v.normal).normalized())
        .collect();

    for tri in mesh.indices.chunks_exact(3) {
        let (ia, ib, ic) = (tri[0] as usize, tri[1] as usize, tri[2] as usize);
        let (ca, cb, cc) = (clip[ia], clip[ib], clip[ic]);
        // Reject triangles touching the near plane or behind the camera
        // (full clipping is unnecessary for our bounded scenes).
        if ca.w <= 1e-6 || cb.w <= 1e-6 || cc.w <= 1e-6 {
            continue;
        }
        let a = ca.project();
        let b = cb.project();
        let c = cc.project();
        // Backface cull in NDC (z component of the 2D cross product).
        let area = (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x);
        if area <= 0.0 {
            continue;
        }
        stats.triangles_drawn += 1;

        // NDC -> pixel coordinates (y down).
        let px = |v: Vec3| ((v.x + 1.0) * 0.5 * w, (1.0 - v.y) * 0.5 * h, v.z);
        let (ax, ay, az) = px(a);
        let (bx, by, bz) = px(b);
        let (cx, cy, cz) = px(c);

        let min_x = ax.min(bx).min(cx).floor().max(0.0) as u32;
        let max_x = (ax.max(bx).max(cx).ceil() as i64).clamp(0, fb.width as i64) as u32;
        let min_y = ay.min(by).min(cy).floor().max(0.0) as u32;
        let max_y = (ay.max(by).max(cy).ceil() as i64).clamp(0, fb.height as i64) as u32;

        // Screen-space edge functions (note y-down flips the sign of the
        // area, handled by using the same orientation for all three).
        let denom = (bx - ax) * (cy - ay) - (by - ay) * (cx - ax);
        if denom.abs() < 1e-12 {
            continue;
        }
        // Flat-ish Gouraud: average the three vertex normals' lambert terms
        // per-vertex, interpolate by barycentrics.
        let shade = |n: Vec3| {
            let lambert = (-light).dot(n).max(0.0);
            0.15 + 0.85 * lambert
        };
        let sa = shade(world_normals[ia]);
        let sb = shade(world_normals[ib]);
        let sc = shade(world_normals[ic]);

        for y in min_y..max_y {
            for x in min_x..max_x {
                let pxc = x as f32 + 0.5;
                let pyc = y as f32 + 0.5;
                let w0 = ((bx - ax) * (pyc - ay) - (by - ay) * (pxc - ax)) / denom;
                let w1 = ((cx - bx) * (pyc - by) - (cy - by) * (pxc - bx)) / denom;
                let w2 = 1.0 - w0 - w1;
                // Barycentric sign test (consistent orientation).
                if w0 < 0.0 || w1 < 0.0 || w2 < 0.0 {
                    continue;
                }
                // w0 weights vertex c, w1 weights a, w2 weights b (from the
                // edge functions chosen above).
                let z = az * w1 + bz * w2 + cz * w0;
                let idx = (y * fb.width + x) as usize;
                if z < fb.depth[idx] {
                    fb.depth[idx] = z;
                    let s = sa * w1 + sb * w2 + sc * w0;
                    fb.color[idx] = (s.clamp(0.0, 1.0) * 255.0) as u8;
                    stats.pixels_shaded += 1;
                }
            }
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mesh::{Mesh, Vertex};
    use crate::procgen;

    fn camera(dist: f32, aspect: f32) -> Mat4 {
        let proj = Mat4::perspective(std::f32::consts::FRAC_PI_3, aspect, 0.1, 100.0);
        let view = Mat4::look_at(
            Vec3::new(0.0, 0.0, dist),
            Vec3::ZERO,
            Vec3::new(0.0, 1.0, 0.0),
        );
        proj.mul(&view)
    }

    #[test]
    fn sphere_renders_centered_blob() {
        let mut fb = Framebuffer::new(64, 64);
        let mesh = procgen::uv_sphere(16, 24);
        let mvp = camera(3.0, 1.0);
        let stats = draw(
            &mut fb,
            &mesh,
            &mvp,
            &Mat4::IDENTITY,
            Vec3::new(0.0, 0.0, -1.0),
        );
        assert!(stats.triangles_drawn > 0);
        assert!(stats.pixels_shaded > 100);
        // Center pixel covered, corners empty.
        assert!(fb.depth_at(32, 32).is_finite());
        assert!(!fb.depth_at(0, 0).is_finite());
        assert!(fb.coverage() > 0.05 && fb.coverage() < 0.9);
    }

    #[test]
    fn backfaces_are_culled() {
        let mut fb = Framebuffer::new(32, 32);
        let mesh = procgen::uv_sphere(8, 12);
        let mvp = camera(3.0, 1.0);
        let stats = draw(
            &mut fb,
            &mesh,
            &mvp,
            &Mat4::IDENTITY,
            Vec3::new(0.0, 0.0, -1.0),
        );
        // From distance 3 the visible cap of a unit sphere is about a third
        // of its surface; well over half the triangles must be culled, but
        // a healthy fraction must survive.
        assert!(stats.triangles_drawn * 2 < stats.triangles_in);
        assert!(stats.triangles_drawn as f64 > stats.triangles_in as f64 * 0.2);
    }

    #[test]
    fn depth_test_keeps_nearer_surface() {
        // Two parallel quads; the near one must win the framebuffer.
        let quad = |z: f32, name: &str| {
            let vs = [
                Vec3::new(-1.0, -1.0, z),
                Vec3::new(1.0, -1.0, z),
                Vec3::new(1.0, 1.0, z),
                Vec3::new(-1.0, 1.0, z),
            ];
            Mesh::new(
                name,
                vs.iter()
                    .map(|&pos| Vertex {
                        pos,
                        normal: Vec3::new(0.0, 0.0, 1.0),
                    })
                    .collect(),
                vec![0, 1, 2, 0, 2, 3],
            )
        };
        let mvp = camera(5.0, 1.0);
        let light = Vec3::new(0.3, 0.0, -1.0);
        let mut fb = Framebuffer::new(32, 32);
        // Draw far quad first, then near: near must overwrite.
        draw(&mut fb, &quad(-1.0, "far"), &mvp, &Mat4::IDENTITY, light);
        let far_depth = fb.depth_at(16, 16);
        draw(&mut fb, &quad(1.0, "near"), &mvp, &Mat4::IDENTITY, light);
        let near_depth = fb.depth_at(16, 16);
        assert!(near_depth < far_depth);

        // Draw in the opposite order: far must NOT overwrite.
        let mut fb2 = Framebuffer::new(32, 32);
        draw(&mut fb2, &quad(1.0, "near"), &mvp, &Mat4::IDENTITY, light);
        let d_near_only = fb2.depth_at(16, 16);
        draw(&mut fb2, &quad(-1.0, "far"), &mvp, &Mat4::IDENTITY, light);
        assert_eq!(fb2.depth_at(16, 16), d_near_only);
    }

    #[test]
    fn vertices_behind_camera_skipped() {
        let mut fb = Framebuffer::new(16, 16);
        let mesh = procgen::cube();
        // Camera inside the cube looking out: some triangles cross the near
        // plane and must be rejected without panicking.
        let proj = Mat4::perspective(1.0, 1.0, 0.1, 10.0);
        let view = Mat4::look_at(
            Vec3::ZERO,
            Vec3::new(0.0, 0.0, -1.0),
            Vec3::new(0.0, 1.0, 0.0),
        );
        let mvp = proj.mul(&view);
        let _ = draw(
            &mut fb,
            &mesh,
            &mvp,
            &Mat4::IDENTITY,
            Vec3::new(0.0, 0.0, -1.0),
        );
    }

    #[test]
    fn lighting_direction_changes_shading() {
        let mesh = procgen::uv_sphere(16, 24);
        let mvp = camera(3.0, 1.0);
        let mut fb_front = Framebuffer::new(64, 64);
        draw(
            &mut fb_front,
            &mesh,
            &mvp,
            &Mat4::IDENTITY,
            Vec3::new(0.0, 0.0, -1.0),
        );
        let mut fb_side = Framebuffer::new(64, 64);
        // light_dir is the propagation direction: +x means light travels
        // rightward, i.e. comes from the viewer's left.
        draw(
            &mut fb_side,
            &mesh,
            &mvp,
            &Mat4::IDENTITY,
            Vec3::new(1.0, 0.0, 0.0),
        );
        // Front-lit: center bright. Left-lit: left side brighter than right.
        let center_front = fb_front.get(32, 32);
        assert!(center_front > 150);
        let left = fb_side.get(16, 32);
        let right = fb_side.get(48, 32);
        assert!(left > right, "left {left} right {right}");
    }

    #[test]
    fn clear_resets_buffers() {
        let mut fb = Framebuffer::new(8, 8);
        let mvp = camera(3.0, 1.0);
        draw(
            &mut fb,
            &procgen::uv_sphere(8, 8),
            &mvp,
            &Mat4::IDENTITY,
            Vec3::new(0.0, 0.0, -1.0),
        );
        assert!(fb.coverage() > 0.0);
        fb.clear();
        assert_eq!(fb.coverage(), 0.0);
        assert!(fb.pixels().iter().all(|&p| p == 0));
    }

    #[test]
    fn model_transform_moves_object() {
        let mesh = procgen::uv_sphere(12, 16);
        let proj = camera(4.0, 1.0);
        // Shift the sphere right: left half of the image empties out.
        let model = Mat4::translate(Vec3::new(1.5, 0.0, 0.0));
        let mvp = proj.mul(&model);
        let mut fb = Framebuffer::new(64, 64);
        draw(&mut fb, &mesh, &mvp, &model, Vec3::new(0.0, 0.0, -1.0));
        let left_cov = (0..64)
            .flat_map(|y| (0..20).map(move |x| (x, y)))
            .filter(|&(x, y)| fb.depth_at(x, y).is_finite())
            .count();
        assert_eq!(left_cov, 0, "object should have moved right");
    }
}

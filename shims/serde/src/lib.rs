//! Minimal in-tree replacement for the `serde` crate (see
//! shims/README.md). The workspace derives `Serialize`/`Deserialize` on a
//! handful of config structs but never serializes anything, so the traits
//! are empty markers (blanket-implemented) and the derives are no-ops.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

//! **Ext C** — the co-location (cooperation) ablation.
//!
//! The paper's core claim is that redundancy comes from *co-located users*.
//! This experiment sweeps (a) how many users share one edge and (b) how
//! much their content pools overlap, and shows both drive the hit ratio
//! and hence the latency reduction.
//!
//! Run with: `cargo run --release -p coic-bench --bin ext_sharing`

use coic_bench::base_config;
use coic_core::simrun::compare;
use coic_workload::{Population, SafeDrivingAr, ZoneId, ZoneModel};

fn trace(users: u32, shared: f64, per_user: usize, seed: u64) -> Vec<coic_workload::Request> {
    SafeDrivingAr {
        population: Population::colocated(users, ZoneId(0)),
        zones: ZoneModel::new(1, 60, shared, 5),
        rate_per_sec: 4.0,
        zipf_s: 0.7,
        total_requests: users as usize * per_user,
    }
    .generate(seed)
}

fn main() {
    println!("Ext C — sharing ablation (recognition workload)\n");

    println!("users sharing one edge (60-landmark pool, 30 requests/user):");
    println!("{:>7} | {:>6} | {:>10}", "users", "hit%", "reduction");
    coic_bench::rule(31);
    for users in [1u32, 2, 4, 8, 16] {
        let t = trace(users, 1.0, 30, 31);
        let mut cfg = base_config();
        cfg.num_clients = users;
        let (_, coic, red) = compare(&t, &cfg);
        println!(
            "{:>7} | {:>5.1}% | {:>9.2}%",
            users,
            coic.hit_ratio() * 100.0,
            red
        );
    }

    println!("\ncontent overlap between users (8 users, distinct zones per user,");
    println!("overlap = fraction of each user's pool that is shared):");
    println!("{:>8} | {:>6} | {:>10}", "overlap", "hit%", "reduction");
    coic_bench::rule(32);
    for overlap in [0.0f64, 0.25, 0.5, 0.75, 1.0] {
        // Each user draws from its own zone pool; pools overlap by `overlap`.
        let t = SafeDrivingAr {
            population: Population::round_robin(8, 8),
            zones: ZoneModel::new(8, 60, overlap, 5),
            rate_per_sec: 4.0,
            zipf_s: 0.7,
            total_requests: 240,
        }
        .generate(33);
        let mut cfg = base_config();
        cfg.num_clients = 8;
        let (_, coic, red) = compare(&t, &cfg);
        println!(
            "{:>8.2} | {:>5.1}% | {:>9.2}%",
            overlap,
            coic.hit_ratio() * 100.0,
            red
        );
    }
    println!("\nBoth axes confirm the paper's premise: the benefit is cooperative —");
    println!("it grows with users per edge and with how much content they share.");
}

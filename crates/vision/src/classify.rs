//! Prototype (nearest-centroid) classifier over SimNet embeddings.
//!
//! This plays the role of the paper's cloud-side recognition model: given a
//! feature vector, produce a label (the "annotation" the AR app renders).
//! It also measures recognition *accuracy*, which the threshold-sweep
//! extension experiment trades off against cache hit rate.

use crate::distance::l2;
use crate::features::{FeatureVec, SimNet};
use crate::scene::{ObjectClass, SceneGenerator, ViewParams};
use rand::rngs::StdRng;

/// A trained nearest-centroid classifier.
pub struct PrototypeClassifier {
    centroids: Vec<(ObjectClass, FeatureVec)>,
}

impl PrototypeClassifier {
    /// Train one centroid per class from `samples_per_class` jittered
    /// observations each.
    #[allow(clippy::too_many_arguments)] // experiment knobs read clearest flat
    pub fn train(
        net: &SimNet,
        gen: &SceneGenerator,
        classes: &[ObjectClass],
        samples_per_class: usize,
        angle_spread: f64,
        noise_sigma: f64,
        rng: &mut StdRng,
    ) -> Self {
        assert!(samples_per_class > 0, "need at least one training sample");
        let mut centroids = Vec::with_capacity(classes.len());
        for &class in classes {
            let dim = net.embedding_dim();
            let mut acc = vec![0.0f32; dim];
            for _ in 0..samples_per_class {
                let view = ViewParams::jittered(rng, angle_spread, noise_sigma);
                let e = net.extract(&gen.observe(class, &view, rng));
                for (a, x) in acc.iter_mut().zip(e.as_slice()) {
                    *a += x;
                }
            }
            let centroid = FeatureVec::new(
                acc.into_iter()
                    .map(|x| x / samples_per_class as f32)
                    .collect(),
            )
            .normalized();
            centroids.push((class, centroid));
        }
        PrototypeClassifier { centroids }
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.centroids.len()
    }

    /// Predict the class of an embedding, returning the label and the
    /// distance to its centroid.
    ///
    /// # Panics
    /// Panics if the classifier has no classes.
    pub fn predict(&self, embedding: &FeatureVec) -> (ObjectClass, f32) {
        assert!(!self.centroids.is_empty(), "classifier has no classes");
        let mut best = (self.centroids[0].0, f32::INFINITY);
        for (class, centroid) in &self.centroids {
            let d = l2(embedding, centroid);
            if d < best.1 {
                best = (*class, d);
            }
        }
        best
    }

    /// Top-1 accuracy over freshly generated observations.
    #[allow(clippy::too_many_arguments)] // experiment knobs read clearest flat
    pub fn evaluate(
        &self,
        net: &SimNet,
        gen: &SceneGenerator,
        classes: &[ObjectClass],
        samples_per_class: usize,
        angle_spread: f64,
        noise_sigma: f64,
        rng: &mut StdRng,
    ) -> f64 {
        let mut correct = 0u64;
        let mut total = 0u64;
        for &class in classes {
            for _ in 0..samples_per_class {
                let view = ViewParams::jittered(rng, angle_spread, noise_sigma);
                let e = net.extract(&gen.observe(class, &view, rng));
                if self.predict(&e).0 == class {
                    correct += 1;
                }
                total += 1;
            }
        }
        correct as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn setup() -> (SimNet, SceneGenerator, Vec<ObjectClass>, StdRng) {
        let net = SimNet::default_net();
        let gen = SceneGenerator::new(64);
        let classes: Vec<_> = (0..10).map(ObjectClass).collect();
        (net, gen, classes, StdRng::seed_from_u64(21))
    }

    #[test]
    fn high_accuracy_under_mild_perturbation() {
        let (net, gen, classes, mut rng) = setup();
        let clf = PrototypeClassifier::train(&net, &gen, &classes, 5, 0.08, 4.0, &mut rng);
        let acc = clf.evaluate(&net, &gen, &classes, 10, 0.08, 4.0, &mut rng);
        assert!(acc > 0.95, "accuracy {acc} too low");
    }

    #[test]
    fn accuracy_degrades_with_heavy_perturbation() {
        let (net, gen, classes, mut rng) = setup();
        let clf = PrototypeClassifier::train(&net, &gen, &classes, 5, 0.08, 4.0, &mut rng);
        let mild = clf.evaluate(&net, &gen, &classes, 10, 0.05, 2.0, &mut rng);
        let harsh = clf.evaluate(&net, &gen, &classes, 10, 0.8, 60.0, &mut rng);
        assert!(
            mild >= harsh,
            "mild {mild} should be at least as accurate as harsh {harsh}"
        );
    }

    #[test]
    fn predict_returns_training_class_on_canonical_view() {
        let (net, gen, classes, mut rng) = setup();
        let clf = PrototypeClassifier::train(&net, &gen, &classes, 5, 0.08, 4.0, &mut rng);
        for &c in &classes {
            let e = net.extract(&gen.canonical(c));
            assert_eq!(clf.predict(&e).0, c);
        }
    }

    #[test]
    #[should_panic(expected = "no classes")]
    fn empty_classifier_panics() {
        let clf = PrototypeClassifier { centroids: vec![] };
        let _ = clf.predict(&FeatureVec::new(vec![0.0]));
    }
}

//! Fixture: panicking extractors outside test code. Never compiled.

fn parse(input: &str) -> u64 {
    let first = input.split(',').next().unwrap(); // LINT-EXPECT: no-unwrap
    first.parse().expect("numeric field") // LINT-EXPECT: no-unwrap
}

#[cfg(test)]
mod tests {
    #[test]
    fn in_tests_unwrap_is_fine() {
        assert_eq!(super::helper().unwrap(), 7);
    }
}

fn helper() -> Option<u32> {
    Some(7)
}

fn later(input: Option<u8>) -> u8 {
    input.unwrap() // LINT-EXPECT: no-unwrap
}

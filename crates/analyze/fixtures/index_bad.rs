//! Fixture: unchecked slice indexing on a request-serving path — one
//! stale cursor and the whole edge panics. Never compiled.

fn route(peers: &[u32], cursor: usize) -> u32 {
    peers[cursor] // LINT-EXPECT: no-index-hot-path
}

fn latest(events: &[Event]) -> &Event {
    &events[events.len() - 1] // LINT-EXPECT: no-index-hot-path
}

//! No-op derive macros standing in for `serde_derive` (see
//! shims/README.md). The workspace only *derives* `Serialize` and
//! `Deserialize` — nothing actually serializes — so the derives expand to
//! nothing and the marker traits in the `serde` shim are blanket-implemented.

#![forbid(unsafe_code)]

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#!/usr/bin/env sh
# Run the quick bench and gate it against the committed baseline —
# the same sequence CI's bench-smoke job runs. Usage:
#
#   scripts/bench_check.sh [--tolerance 0.25] [--min-speedup 1.2]
#
# Extra flags are passed through to bench_check. See EXPERIMENTS.md
# ("Edge bench + regression gate") for refreshing bench/baseline.json.
set -eu
cd "$(dirname "$0")/.."

if [ ! -f bench/baseline.json ]; then
    echo "bench_check: bench/baseline.json not found." >&2
    echo "Refresh it first (see EXPERIMENTS.md, 'Edge bench + regression gate'):" >&2
    echo "  cargo run --release -p coic-cli -- bench --seed 7 --runs 5 --out bench/baseline.json" >&2
    exit 2
fi

cargo build --release --locked -p coic-cli -p coic-bench
./target/release/coic bench --quick --seed 7 --out BENCH_edge.json
exec ./target/release/bench_check \
    --baseline bench/baseline.json --current BENCH_edge.json "$@"

//! Single-flight miss coalescing.
//!
//! The first miss on a key becomes the *leader* and drives the upstream
//! fetch; concurrent misses on the same key are *queued* as waiters and
//! share the leader's answer. One table serves both drivers: the simulated
//! edge queues `(NodeId, req_id)` pairs and answers them on `CloudReply`;
//! the live edge queues condvar-style signals that block connection
//! threads until the leader completes.

use super::sync::Mutex;
use std::collections::HashMap;
use std::hash::{BuildHasher, Hash, Hasher};

/// What [`SingleFlight::claim`] decided for a caller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlightClaim {
    /// No fetch is in flight for this key: the caller must perform it and
    /// then call [`SingleFlight::complete`].
    Leader,
    /// A fetch is already in flight; the caller's waiter was queued and
    /// will be returned to the leader by [`SingleFlight::complete`].
    Queued,
}

/// Coalesces concurrent misses on the same key into one upstream fetch.
#[derive(Debug)]
pub struct SingleFlight<K, W> {
    inflight: HashMap<K, Vec<W>, FnvBuildHasher>,
}

impl<K: Eq + Hash + Clone, W> SingleFlight<K, W> {
    /// An empty table.
    pub fn new() -> SingleFlight<K, W> {
        SingleFlight {
            inflight: HashMap::with_hasher(FnvBuildHasher),
        }
    }

    /// Claim the fetch for `key`. The leader's own waiter is *not* queued —
    /// it answers itself from the fetch result.
    pub fn claim(&mut self, key: K, waiter: W) -> FlightClaim {
        match self.inflight.get_mut(&key) {
            Some(waiters) => {
                waiters.push(waiter);
                FlightClaim::Queued
            }
            None => {
                self.inflight.insert(key, Vec::new());
                FlightClaim::Leader
            }
        }
    }

    /// Finish the flight for `key`, returning every queued waiter for the
    /// leader to answer. Unknown keys return no waiters.
    pub fn complete(&mut self, key: &K) -> Vec<W> {
        self.inflight.remove(key).unwrap_or_default()
    }

    /// Is a fetch currently in flight for `key`?
    pub fn is_inflight(&self, key: &K) -> bool {
        self.inflight.contains_key(key)
    }
}

impl<K: Eq + Hash + Clone, W> Default for SingleFlight<K, W> {
    fn default() -> Self {
        SingleFlight::new()
    }
}

/// FNV-1a hashing for the flight tables: shard routing in
/// [`ShardedSingleFlight`] and the waiter maps themselves. `RandomState`
/// would re-randomize key→shard assignment (and map iteration order)
/// every process start, which breaks schedule replay under the model
/// checker and makes contention profiles unreproducible; coalescing
/// correctness only needs same key ⇒ same shard, which any fixed hash
/// provides.
#[derive(Debug, Default, Clone, Copy)]
struct FnvBuildHasher;

impl BuildHasher for FnvBuildHasher {
    type Hasher = Fnv1a64;

    fn build_hasher(&self) -> Fnv1a64 {
        Fnv1a64(0xcbf2_9ce4_8422_2325)
    }
}

#[derive(Debug)]
struct Fnv1a64(u64);

impl Hasher for Fnv1a64 {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

/// A [`SingleFlight`] table split across independently locked shards, so
/// misses on *different* content never contend on one flight mutex. Used
/// by the live edge alongside the sharded caches: coalescing only has to
/// hold for misses on the *same* key, and same key ⇒ same shard.
pub struct ShardedSingleFlight<K, W> {
    shards: Vec<Mutex<SingleFlight<K, W>>>,
    hasher: FnvBuildHasher,
}

impl<K: Eq + Hash + Clone, W> ShardedSingleFlight<K, W> {
    /// An empty table with `shards` independent locks.
    ///
    /// # Panics
    /// Panics if `shards` is zero.
    pub fn new(shards: usize) -> ShardedSingleFlight<K, W> {
        assert!(shards > 0, "shard count must be positive");
        ShardedSingleFlight {
            shards: (0..shards)
                .map(|_| Mutex::new(SingleFlight::new()))
                .collect(),
            hasher: FnvBuildHasher,
        }
    }

    fn shard_of(&self, key: &K) -> &Mutex<SingleFlight<K, W>> {
        // lint: allow(no-index-hot-path, index is taken modulo len and the constructor asserts shards > 0)
        &self.shards[(self.hasher.hash_one(key) as usize) % self.shards.len()]
    }

    /// Claim the fetch for `key` (see [`SingleFlight::claim`]).
    pub fn claim(&self, key: K, waiter: W) -> FlightClaim {
        let shard = self.shard_of(&key);
        shard.lock().claim(key, waiter)
    }

    /// Finish the flight for `key`, returning queued waiters.
    pub fn complete(&self, key: &K) -> Vec<W> {
        self.shard_of(key).lock().complete(key)
    }

    /// Is a fetch currently in flight for `key`?
    pub fn is_inflight(&self, key: &K) -> bool {
        self.shard_of(key).lock().is_inflight(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_claim_leads_rest_queue() {
        let mut f: SingleFlight<u32, &str> = SingleFlight::new();
        assert_eq!(f.claim(7, "a"), FlightClaim::Leader);
        assert_eq!(f.claim(7, "b"), FlightClaim::Queued);
        assert_eq!(f.claim(7, "c"), FlightClaim::Queued);
        assert!(f.is_inflight(&7));
        assert_eq!(f.complete(&7), vec!["b", "c"]);
        assert!(!f.is_inflight(&7));
        // After completion the next miss leads again.
        assert_eq!(f.claim(7, "d"), FlightClaim::Leader);
    }

    #[test]
    fn keys_are_independent() {
        let mut f: SingleFlight<u32, u32> = SingleFlight::new();
        assert_eq!(f.claim(1, 10), FlightClaim::Leader);
        assert_eq!(f.claim(2, 20), FlightClaim::Leader);
        assert_eq!(f.claim(1, 11), FlightClaim::Queued);
        assert_eq!(f.complete(&2), Vec::<u32>::new());
        assert_eq!(f.complete(&1), vec![11]);
    }

    #[test]
    fn sharded_table_coalesces_same_key_across_threads() {
        use std::sync::Arc;
        let f: Arc<ShardedSingleFlight<u32, u32>> = Arc::new(ShardedSingleFlight::new(4));
        let handles: Vec<_> = (0..8u32)
            .map(|i| {
                let f = Arc::clone(&f);
                std::thread::spawn(move || f.claim(42, i))
            })
            .collect();
        let leaders = handles
            .into_iter()
            .map(|h| h.join().unwrap())
            .filter(|c| matches!(c, FlightClaim::Leader))
            .count();
        assert_eq!(leaders, 1, "exactly one thread must lead per key");
        assert_eq!(f.complete(&42).len(), 7);
        assert!(!f.is_inflight(&42));
    }
}

//! Cache statistics.

use serde::{Deserialize, Serialize};

/// Counters every cache variant maintains.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Lookups that returned a value.
    pub hits: u64,
    /// Lookups that returned nothing.
    pub misses: u64,
    /// Values inserted.
    pub insertions: u64,
    /// Values evicted to make room.
    pub evictions: u64,
    /// Values dropped because their TTL elapsed.
    pub expired: u64,
    /// Insertions rejected because a single value exceeded capacity.
    pub rejected: u64,
    /// Insertions rejected by the admission filter (TinyLFU).
    pub admission_rejects: u64,
}

impl CacheStats {
    /// Total lookups.
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hits over lookups; 0 when no lookups happened.
    pub fn hit_ratio(&self) -> f64 {
        let n = self.lookups();
        if n == 0 {
            0.0
        } else {
            self.hits as f64 / n as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_ratio_math() {
        let mut s = CacheStats::default();
        assert_eq!(s.hit_ratio(), 0.0);
        s.hits = 3;
        s.misses = 1;
        assert_eq!(s.lookups(), 4);
        assert!((s.hit_ratio() - 0.75).abs() < 1e-12);
    }
}

//! Fine-grained layer-level reuse (paper §4, ongoing work).
//!
//! "Since the current CoIC can only identify coarse-grained IC tasks ...
//! we are exploring the improvement that can efficiently and accurately
//! identify reusable IC workload in fine-grained (e.g., the result of a
//! specific DNN layer)."
//!
//! Here the client runs the DNN only up to layer `k`, ships the layer-`k`
//! activation as the descriptor, and the edge caches final results keyed by
//! that activation. On a miss the cloud *resumes* inference from layer `k`
//! instead of starting over. Lower `k` means less client compute but a less
//! invariant descriptor (lower hit rate); higher `k` approaches the
//! coarse-grained CoIC behaviour. The `ext_layercache` bench sweeps `k`.

use crate::compute::ComputeConfig;
use crate::task::RecognitionResult;
use coic_cache::{ApproxCache, ApproxLookup, IndexKind, PolicyKind};
use coic_vision::{Image, PrototypeClassifier, SimNet};

/// Per-request outcome of the layer-cache pipeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LayerOutcome {
    /// Served from the edge cache?
    pub hit: bool,
    /// The recognition result delivered.
    pub result: RecognitionResult,
    /// Client-side compute, ns (prefix through layer `k`).
    pub client_ns: u64,
    /// Cloud-side compute, ns (resume from layer `k`; zero on a hit).
    pub cloud_ns: u64,
    /// Descriptor size on the wire, bytes.
    pub descriptor_bytes: u64,
}

/// A CoIC edge cache keyed by the activation of one specific DNN layer.
pub struct LayerCache {
    net: SimNet,
    cache: ApproxCache<RecognitionResult>,
    layer: usize,
    compute: ComputeConfig,
}

impl LayerCache {
    /// Cache keyed by layer `layer` (0 = pooled front end, up to
    /// `net.num_layers()` = the final embedding, i.e. classic CoIC).
    ///
    /// # Panics
    /// Panics if `layer` is out of range.
    pub fn new(
        layer: usize,
        threshold: f32,
        cache_bytes: u64,
        policy: PolicyKind,
        compute: ComputeConfig,
    ) -> Self {
        Self::with_index(
            layer,
            threshold,
            cache_bytes,
            policy,
            compute,
            IndexKind::Linear,
        )
    }

    /// Like [`LayerCache::new`] but with an explicit index backend —
    /// intermediate activations are higher-dimensional than the final
    /// embedding, where the ANN families pay off sooner.
    ///
    /// # Panics
    /// Panics if `layer` is out of range.
    pub fn with_index(
        layer: usize,
        threshold: f32,
        cache_bytes: u64,
        policy: PolicyKind,
        compute: ComputeConfig,
        index: IndexKind,
    ) -> Self {
        let net = SimNet::default_net();
        assert!(layer <= net.num_layers(), "layer {layer} out of range");
        let dim = if layer == 0 {
            (net.config().grid * net.config().grid) as usize
        } else {
            net.config().layer_dims[layer - 1]
        };
        LayerCache {
            net,
            cache: ApproxCache::new(cache_bytes, policy, threshold, index, dim),
            layer,
            compute,
        }
    }

    /// The layer index in use.
    pub fn layer(&self) -> usize {
        self.layer
    }

    /// Fraction of total DNN work contained in the prefix through `layer`.
    pub fn prefix_fraction(&self, image: &Image) -> f64 {
        let total = self.net.total_flops(image) as f64;
        let mut prefix = self.net.pool_flops(image) as f64;
        for l in 0..self.layer {
            prefix += self.net.layer_flops(l) as f64;
        }
        prefix / total
    }

    /// Process one observation end to end.
    ///
    /// The cost model scales the paper-scale DNN (`compute.full_dnn_macs`)
    /// by the prefix/suffix fractions of the SimNet architecture, so the
    /// client/cloud split is architecture-faithful while staying at the
    /// calibrated absolute magnitude.
    pub fn process(
        &mut self,
        image: &Image,
        classifier: &PrototypeClassifier,
        now_ns: u64,
    ) -> LayerOutcome {
        let acts = self.net.extract_layers(image);
        // Normalize the key so one threshold works across layers.
        let key = acts[self.layer].normalized();
        let frac = self.prefix_fraction(image);
        let client_macs = (self.compute.full_dnn_macs as f64 * frac) as u64;
        let client_ns = self.compute.mobile.time_ns(client_macs);
        let descriptor_bytes = key.byte_size();

        match self.cache.lookup(&key, now_ns) {
            ApproxLookup::Hit { id, .. } => {
                let result = *self.cache.value(id).expect("hit id resolves");
                LayerOutcome {
                    hit: true,
                    result,
                    client_ns,
                    cloud_ns: 0,
                    descriptor_bytes,
                }
            }
            ApproxLookup::Miss { .. } => {
                // Cloud resumes from layer k: it received the activation,
                // runs the remaining layers, classifies.
                let embedding = self.net.extract_from_layer(self.layer, &acts[self.layer]);
                let (label, distance) = classifier.predict(&embedding);
                let result = RecognitionResult {
                    label: label.0,
                    distance,
                };
                let suffix_macs = (self.compute.full_dnn_macs as f64 * (1.0 - frac)) as u64;
                let cloud_ns = self.compute.cloud.time_ns(suffix_macs);
                let size = key.byte_size() + crate::task::ANNOTATION_BYTES;
                self.cache.insert(key, result, size, now_ns);
                LayerOutcome {
                    hit: false,
                    result,
                    client_ns,
                    cloud_ns,
                    descriptor_bytes,
                }
            }
        }
    }

    /// Fold any journaled index maintenance (batch rebuilds for the
    /// ANN-backed index kinds; a no-op for linear). Returns how many
    /// journaled mutations were folded.
    pub fn maintain(&mut self) -> usize {
        self.cache.maintain()
    }

    /// Cache hit/miss counters.
    pub fn stats(&self) -> coic_cache::CacheStats {
        *self.cache.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coic_vision::{ObjectClass, SceneGenerator, ViewParams};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn classifier(gen: &SceneGenerator) -> PrototypeClassifier {
        let net = SimNet::default_net();
        let classes: Vec<_> = (0..6).map(ObjectClass).collect();
        let mut rng = StdRng::seed_from_u64(5);
        PrototypeClassifier::train(&net, gen, &classes, 5, 0.08, 4.0, &mut rng)
    }

    #[test]
    fn repeat_observation_hits_at_every_layer() {
        let gen = SceneGenerator::new(64);
        let clf = classifier(&gen);
        let img = gen.canonical(ObjectClass(2));
        for layer in 0..=SimNet::default_net().num_layers() {
            let mut lc = LayerCache::new(
                layer,
                0.3,
                1 << 20,
                PolicyKind::Lru,
                ComputeConfig::default(),
            );
            let first = lc.process(&img, &clf, 0);
            assert!(!first.hit, "layer {layer}: first must miss");
            assert_eq!(first.result.label, 2);
            let second = lc.process(&img, &clf, 1);
            assert!(second.hit, "layer {layer}: identical input must hit");
            assert_eq!(second.result, first.result);
        }
    }

    #[test]
    fn ann_index_matches_linear_decisions() {
        let gen = SceneGenerator::new(64);
        let clf = classifier(&gen);
        let layer = SimNet::default_net().num_layers();
        let mk = |index| {
            LayerCache::with_index(
                layer,
                0.3,
                1 << 20,
                PolicyKind::Lru,
                ComputeConfig::default(),
                index,
            )
        };
        let mut linear = mk(IndexKind::Linear);
        let mut hnsw = mk(IndexKind::DEFAULT_HNSW);
        for (i, class) in (0..6).cycle().take(18).enumerate() {
            let img = gen.canonical(ObjectClass(class));
            let a = linear.process(&img, &clf, i as u64);
            let b = hnsw.process(&img, &clf, i as u64);
            assert_eq!(a.hit, b.hit, "step {i}: index families disagree");
            assert_eq!(a.result, b.result);
        }
        // Six classes → six first-miss inserts journaled; maintain folds
        // them and a second call has nothing left.
        assert_eq!(hnsw.maintain(), 6);
        assert_eq!(hnsw.maintain(), 0);
    }

    #[test]
    fn client_compute_grows_with_layer() {
        let gen = SceneGenerator::new(64);
        let clf = classifier(&gen);
        let img = gen.canonical(ObjectClass(1));
        let cost_at = |layer| {
            let mut lc = LayerCache::new(
                layer,
                0.3,
                1 << 20,
                PolicyKind::Lru,
                ComputeConfig::default(),
            );
            lc.process(&img, &clf, 0).client_ns
        };
        let max_layer = SimNet::default_net().num_layers();
        for l in 0..max_layer {
            assert!(
                cost_at(l) < cost_at(l + 1),
                "client cost must grow with layer ({l} vs {})",
                l + 1
            );
        }
    }

    #[test]
    fn cloud_resume_cost_shrinks_with_layer() {
        let gen = SceneGenerator::new(64);
        let clf = classifier(&gen);
        let img = gen.canonical(ObjectClass(1));
        let cloud_at = |layer| {
            let mut lc = LayerCache::new(
                layer,
                0.3,
                1 << 20,
                PolicyKind::Lru,
                ComputeConfig::default(),
            );
            lc.process(&img, &clf, 0).cloud_ns
        };
        let max_layer = SimNet::default_net().num_layers();
        assert!(cloud_at(0) > cloud_at(max_layer));
    }

    #[test]
    fn resumed_inference_matches_full_inference() {
        // Correctness of the split computation: the label via resume equals
        // the label of a full pass.
        let gen = SceneGenerator::new(64);
        let clf = classifier(&gen);
        let net = SimNet::default_net();
        let mut rng = StdRng::seed_from_u64(9);
        for c in 0..6 {
            let v = ViewParams::jittered(&mut rng, 0.05, 2.0);
            let img = gen.observe(ObjectClass(c), &v, &mut rng);
            let full = clf.predict(&net.extract(&img)).0;
            let mut lc =
                LayerCache::new(1, 0.3, 1 << 20, PolicyKind::Lru, ComputeConfig::default());
            let out = lc.process(&img, &clf, 0);
            assert_eq!(out.result.label, full.0);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_layer_rejected() {
        let _ = LayerCache::new(99, 0.3, 1024, PolicyKind::Lru, ComputeConfig::default());
    }
}

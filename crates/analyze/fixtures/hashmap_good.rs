//! Fixture: BTreeMap keeps canonical output byte-stable.

use std::collections::BTreeMap;

fn tally<'a>(keys: &[&'a str]) -> BTreeMap<&'a str, u32> {
    let mut counts = BTreeMap::new();
    for k in keys {
        *counts.entry(*k).or_insert(0) += 1;
    }
    counts
}

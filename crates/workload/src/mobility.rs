//! Users, zones and content locality.
//!
//! The paper's redundancy argument is *spatial*: "computation-intensive
//! tasks of mobile IC applications can be similar or redundant, especially
//! when applications/users are in the close location". This module models
//! that: users live in zones, each zone has a pool of locally relevant
//! content (the stop signs at those crossroads, the avatars in that arena),
//! and pools of different zones overlap by a controllable fraction.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// A user of some IC application.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct UserId(pub u32);

/// A geographic zone served by one edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ZoneId(pub u32);

/// Content identifier (object class, model id or video id depending on the
/// task family).
pub type ContentId = u64;

/// Zone-to-content mapping with controllable cross-zone overlap.
#[derive(Debug, Clone)]
pub struct ZoneModel {
    pools: Vec<Vec<ContentId>>,
}

impl ZoneModel {
    /// Build `zones` pools of `pool_size` content ids each. A fraction
    /// `shared` (in `[0, 1]`) of each pool is drawn from a global shared
    /// set (content popular everywhere); the rest is zone-exclusive.
    ///
    /// # Panics
    /// Panics on zero zones/pool size or `shared` outside `[0, 1]`.
    pub fn new(zones: u32, pool_size: u32, shared: f64, seed: u64) -> Self {
        assert!(
            zones > 0 && pool_size > 0,
            "zones and pools must be non-empty"
        );
        assert!((0.0..=1.0).contains(&shared), "shared fraction in [0,1]");
        let mut rng = StdRng::seed_from_u64(seed);
        let shared_count = (pool_size as f64 * shared).round() as u32;
        let exclusive = pool_size - shared_count;
        // The shared portion is literally the same content everywhere (ids
        // 0..shared_count — the globally popular stop signs / avatars);
        // exclusive ids are partitioned by zone so they never collide.
        // Each pool is then shuffled per-zone so popularity rank (Zipf is
        // applied over pool order) mixes shared and local content.
        let mut pools = Vec::with_capacity(zones as usize);
        for z in 0..zones {
            let mut pool: Vec<ContentId> = (0..shared_count as ContentId).collect();
            for e in 0..exclusive {
                pool.push(1_000_000 + (z as ContentId) * 1_000_000 + e as ContentId);
            }
            // Fisher–Yates with the zone model's own RNG.
            for i in (1..pool.len()).rev() {
                let j = rng.random_range(0..=i);
                pool.swap(i, j);
            }
            pools.push(pool);
        }
        ZoneModel { pools }
    }

    /// Number of zones.
    pub fn zones(&self) -> u32 {
        self.pools.len() as u32
    }

    /// The content pool of a zone (rank order = popularity order, ready for
    /// Zipf sampling).
    ///
    /// # Panics
    /// Panics for an unknown zone.
    pub fn pool(&self, zone: ZoneId) -> &[ContentId] {
        &self.pools[zone.0 as usize]
    }

    /// Fraction of zone `a`'s pool that also appears in zone `b`'s pool.
    pub fn overlap(&self, a: ZoneId, b: ZoneId) -> f64 {
        let pa = self.pool(a);
        let pb: std::collections::HashSet<_> = self.pool(b).iter().collect();
        let common = pa.iter().filter(|c| pb.contains(c)).count();
        common as f64 / pa.len() as f64
    }
}

/// A static population: users assigned round-robin to zones.
#[derive(Debug, Clone)]
pub struct Population {
    assignments: Vec<ZoneId>,
}

impl Population {
    /// Assign `users` round-robin over `zones`.
    ///
    /// # Panics
    /// Panics if either is zero.
    pub fn round_robin(users: u32, zones: u32) -> Self {
        assert!(users > 0 && zones > 0, "population must be non-empty");
        Population {
            assignments: (0..users).map(|u| ZoneId(u % zones)).collect(),
        }
    }

    /// Place every user in one zone (maximum co-location — the paper's
    /// "users in the same place" scenario).
    pub fn colocated(users: u32, zone: ZoneId) -> Self {
        assert!(users > 0, "population must be non-empty");
        Population {
            assignments: (0..users).map(|_| zone).collect(),
        }
    }

    /// Number of users.
    pub fn len(&self) -> usize {
        self.assignments.len()
    }

    /// True when empty (never: construction forbids it).
    pub fn is_empty(&self) -> bool {
        self.assignments.is_empty()
    }

    /// Zone of `user`.
    pub fn zone_of(&self, user: UserId) -> ZoneId {
        self.assignments[user.0 as usize]
    }

    /// All users in a zone.
    pub fn users_in(&self, zone: ZoneId) -> Vec<UserId> {
        self.assignments
            .iter()
            .enumerate()
            .filter(|(_, &z)| z == zone)
            .map(|(u, _)| UserId(u as u32))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pools_have_requested_size() {
        let zm = ZoneModel::new(4, 20, 0.5, 1);
        assert_eq!(zm.zones(), 4);
        for z in 0..4 {
            assert_eq!(zm.pool(ZoneId(z)).len(), 20);
        }
    }

    #[test]
    fn zero_shared_means_disjoint_pools() {
        let zm = ZoneModel::new(4, 20, 0.0, 1);
        for a in 0..4 {
            for b in 0..4 {
                if a != b {
                    assert_eq!(zm.overlap(ZoneId(a), ZoneId(b)), 0.0);
                }
            }
        }
    }

    #[test]
    fn full_shared_means_identical_content() {
        let zm = ZoneModel::new(2, 50, 1.0, 1);
        assert_eq!(zm.overlap(ZoneId(0), ZoneId(1)), 1.0);
    }

    #[test]
    fn overlap_equals_shared_fraction() {
        let zm = ZoneModel::new(3, 40, 0.25, 7);
        for a in 0..3 {
            for b in 0..3 {
                if a != b {
                    assert!((zm.overlap(ZoneId(a), ZoneId(b)) - 0.25).abs() < 1e-9);
                }
            }
        }
    }

    #[test]
    fn overlap_monotone_in_shared_fraction() {
        let lo = ZoneModel::new(2, 40, 0.2, 9);
        let hi = ZoneModel::new(2, 40, 0.9, 9);
        assert!(hi.overlap(ZoneId(0), ZoneId(1)) >= lo.overlap(ZoneId(0), ZoneId(1)));
    }

    #[test]
    fn round_robin_spreads_users() {
        let p = Population::round_robin(10, 3);
        assert_eq!(p.len(), 10);
        assert_eq!(p.zone_of(UserId(0)), ZoneId(0));
        assert_eq!(p.zone_of(UserId(4)), ZoneId(1));
        assert_eq!(p.users_in(ZoneId(0)).len(), 4); // users 0,3,6,9
    }

    #[test]
    fn colocated_puts_everyone_together() {
        let p = Population::colocated(5, ZoneId(2));
        assert_eq!(p.users_in(ZoneId(2)).len(), 5);
        assert!(p.users_in(ZoneId(0)).is_empty());
    }

    #[test]
    #[should_panic(expected = "shared fraction")]
    fn bad_shared_fraction_rejected() {
        let _ = ZoneModel::new(2, 10, 1.5, 0);
    }
}

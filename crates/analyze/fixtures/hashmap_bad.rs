//! Fixture: default-hasher map on a canonical-report path. Never compiled.

use std::collections::HashMap; // LINT-EXPECT: no-default-hashmap

fn tally(keys: &[&str]) -> HashMap<&str, u32> {
    let mut counts = HashMap::new(); // LINT-EXPECT: no-default-hashmap
    for k in keys {
        *counts.entry(*k).or_insert(0) += 1;
    }
    counts
}

//! The discrete-event simulation engine.
//!
//! Nodes are event-driven state machines implementing [`Node`]; the engine
//! pops time-ordered events and dispatches them. All interaction with the
//! world (sending messages, arming timers, reading the clock, drawing
//! randomness) goes through the [`Ctx`] handed to each callback, which keeps
//! nodes deterministic and free of shared mutable state — the style the
//! smoltcp/poll-based guides recommend for testable network code.

use crate::event::EventQueue;
use crate::link::{LinkParams, TxOutcome};
use crate::time::{SimDuration, SimTime};
use crate::topology::{NodeId, Topology};
use crate::trace::Trace;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// An event-driven simulation participant.
///
/// `M` is the application message type carried between nodes; the engine
/// treats it as opaque and charges the network only for the byte size the
/// sender declares (application-layer simulation, as in the paper's
/// request/response experiments).
pub trait Node<M> {
    /// Called once before any other callback, at t = 0.
    fn on_start(&mut self, _ctx: &mut Ctx<'_, M>) {}
    /// A message from `from` has fully arrived.
    fn on_message(&mut self, ctx: &mut Ctx<'_, M>, from: NodeId, msg: M);
    /// A timer armed with [`Ctx::set_timer`] has fired.
    fn on_timer(&mut self, _ctx: &mut Ctx<'_, M>, _token: u64) {}
}

enum SimEvent<M> {
    Deliver {
        from: NodeId,
        to: NodeId,
        /// Final destination when the engine is relaying hop-by-hop.
        dst: NodeId,
        bytes: u64,
        msg: M,
    },
    Timer {
        node: NodeId,
        token: u64,
    },
    Reshape {
        from: NodeId,
        to: NodeId,
        params: LinkParams,
    },
}

/// Counters the engine accumulates across the whole run.
#[derive(Debug, Clone, Copy, Default)]
pub struct SimStats {
    /// Events dispatched.
    pub events: u64,
    /// Messages handed to `on_message`.
    pub delivered: u64,
    /// Messages dropped by link loss.
    pub lost: u64,
    /// Messages dropped by droptail queues.
    pub queue_dropped: u64,
    /// Messages abandoned because no route existed.
    pub unroutable: u64,
}

impl SimStats {
    /// Publish the counters into the shared metrics registry under the
    /// `sim.` prefix.
    pub fn publish(&self, reg: &coic_obs::MetricsRegistry) {
        reg.counter_add("sim.events", self.events);
        reg.counter_add("sim.delivered", self.delivered);
        reg.counter_add("sim.lost", self.lost);
        reg.counter_add("sim.queue_dropped", self.queue_dropped);
        reg.counter_add("sim.unroutable", self.unroutable);
    }

    /// Reconstruct the counters from registry values published by
    /// [`SimStats::publish`].
    pub fn from_registry(reg: &coic_obs::MetricsRegistry) -> SimStats {
        SimStats {
            events: reg.counter("sim.events"),
            delivered: reg.counter("sim.delivered"),
            lost: reg.counter("sim.lost"),
            queue_dropped: reg.counter("sim.queue_dropped"),
            unroutable: reg.counter("sim.unroutable"),
        }
    }
}

struct World<M> {
    now: SimTime,
    queue: EventQueue<SimEvent<M>>,
    topo: Topology,
    rng: StdRng,
    stats: SimStats,
    trace: Option<Trace>,
}

impl<M> World<M> {
    fn trace(&mut self, what: impl FnOnce() -> String) {
        if let Some(t) = &mut self.trace {
            let now = self.now;
            t.record(now, what());
        }
    }

    /// Transmit one hop; schedule the Deliver event on success.
    fn transmit_hop(&mut self, from: NodeId, to: NodeId, dst: NodeId, bytes: u64, msg: M) {
        let Some(link) = self.topo.link_mut(from, to) else {
            panic!("no link {from}->{to}: send() requires a direct link; use send_routed()");
        };
        let now = self.now;
        match link.transmit(now, bytes, &mut self.rng) {
            TxOutcome::Delivered(at) => {
                self.queue.schedule(
                    at,
                    SimEvent::Deliver {
                        from,
                        to,
                        dst,
                        bytes,
                        msg,
                    },
                );
                self.trace(|| format!("tx {from}->{to} {bytes}B arrives@{at}"));
            }
            TxOutcome::Lost => {
                self.stats.lost += 1;
                self.trace(|| format!("loss {from}->{to} {bytes}B"));
            }
            TxOutcome::QueueDrop => {
                self.stats.queue_dropped += 1;
                self.trace(|| format!("qdrop {from}->{to} {bytes}B"));
            }
        }
    }
}

/// Handle through which a node interacts with the simulation.
pub struct Ctx<'a, M> {
    node: NodeId,
    world: &'a mut World<M>,
}

impl<'a, M> Ctx<'a, M> {
    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.world.now
    }

    /// Id of the node being dispatched.
    pub fn node_id(&self) -> NodeId {
        self.node
    }

    /// Deterministic per-run RNG (shared across nodes; draws are ordered by
    /// the deterministic event order, so runs reproduce exactly).
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.world.rng
    }

    /// Send `msg` (`bytes` long on the wire) over the *direct* link to `to`.
    ///
    /// # Panics
    /// Panics if no direct link exists — topology mistakes should fail loudly
    /// in experiments rather than silently blackhole traffic.
    pub fn send(&mut self, to: NodeId, bytes: u64, msg: M) {
        let from = self.node;
        self.world.transmit_hop(from, to, to, bytes, msg);
    }

    /// Send `msg` toward `dst`, relaying hop-by-hop along shortest paths.
    /// Intermediate nodes never observe the message (store-and-forward at
    /// the engine level). Unroutable messages are counted and dropped.
    pub fn send_routed(&mut self, dst: NodeId, bytes: u64, msg: M) {
        let from = self.node;
        match self.world.topo.next_hop(from, dst) {
            Some(hop) => self.world.transmit_hop(from, hop, dst, bytes, msg),
            None => {
                self.world.stats.unroutable += 1;
                self.world
                    .trace(|| format!("unroutable {from}->{dst} {bytes}B"));
            }
        }
    }

    /// Arm a timer that fires `after` from now, delivering `token` to
    /// [`Node::on_timer`]. Also the mechanism for modelling local compute
    /// delays: schedule a timer for the compute duration and continue the
    /// state machine when it fires.
    pub fn set_timer(&mut self, after: SimDuration, token: u64) {
        let node = self.node;
        let at = self.world.now + after;
        self.world
            .queue
            .schedule(at, SimEvent::Timer { node, token });
    }

    /// Immutable access to the topology (e.g. to look up names or link
    /// parameters when reporting).
    pub fn topology(&self) -> &Topology {
        &self.world.topo
    }
}

/// The simulation engine: owns the topology, the nodes, the clock and the
/// event queue.
pub struct Simulator<M> {
    nodes: Vec<Option<Box<dyn Node<M>>>>,
    world: World<M>,
    started: bool,
}

impl<M> Simulator<M> {
    /// Create a simulator over `topo`, seeding the deterministic RNG.
    pub fn new(topo: Topology, seed: u64) -> Self {
        let n = topo.node_count();
        let mut nodes = Vec::with_capacity(n);
        nodes.resize_with(n, || None);
        Simulator {
            nodes,
            world: World {
                now: SimTime::ZERO,
                queue: EventQueue::new(),
                topo,
                rng: StdRng::seed_from_u64(seed),
                stats: SimStats::default(),
                trace: None,
            },
            started: false,
        }
    }

    /// Attach the behaviour for node `id`.
    ///
    /// # Panics
    /// Panics if the id is out of range or already bound.
    pub fn bind(&mut self, id: NodeId, node: Box<dyn Node<M>>) {
        let slot = &mut self.nodes[id.0];
        assert!(slot.is_none(), "node {id} already bound");
        *slot = Some(node);
    }

    /// Enable bounded event tracing.
    pub fn enable_trace(&mut self, cap: usize) {
        self.world.trace = Some(Trace::new(cap));
    }

    /// The trace, if tracing was enabled.
    pub fn trace(&self) -> Option<&Trace> {
        self.world.trace.as_ref()
    }

    /// Engine counters.
    pub fn stats(&self) -> &SimStats {
        &self.world.stats
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.world.now
    }

    /// The topology (to inspect link stats after a run).
    pub fn topology(&self) -> &Topology {
        &self.world.topo
    }

    /// Mutable topology access between runs (e.g. reshaping links).
    pub fn topology_mut(&mut self) -> &mut Topology {
        &mut self.world.topo
    }

    fn dispatch<F>(&mut self, node_id: NodeId, f: F)
    where
        F: FnOnce(&mut dyn Node<M>, &mut Ctx<'_, M>),
    {
        let mut node = self.nodes[node_id.0]
            .take()
            .unwrap_or_else(|| panic!("event for unbound node {node_id}"));
        {
            let mut ctx = Ctx {
                node: node_id,
                world: &mut self.world,
            };
            f(node.as_mut(), &mut ctx);
        }
        self.nodes[node_id.0] = Some(node);
    }

    fn start_if_needed(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for i in 0..self.nodes.len() {
            if self.nodes[i].is_some() {
                self.dispatch(NodeId(i), |n, ctx| n.on_start(ctx));
            }
        }
    }

    /// Execute a single event. Returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        self.start_if_needed();
        let Some((at, ev)) = self.world.queue.pop() else {
            return false;
        };
        debug_assert!(at >= self.world.now, "time went backwards");
        self.world.now = at;
        self.world.stats.events += 1;
        match ev {
            SimEvent::Deliver {
                from,
                to,
                dst,
                bytes,
                msg,
            } => {
                if to != dst {
                    // Engine-level store-and-forward relay.
                    match self.world.topo.next_hop(to, dst) {
                        Some(hop) => self.world.transmit_hop(to, hop, dst, bytes, msg),
                        None => {
                            self.world.stats.unroutable += 1;
                        }
                    }
                } else {
                    self.world.stats.delivered += 1;
                    self.dispatch(to, |n, ctx| n.on_message(ctx, from, msg));
                }
            }
            SimEvent::Timer { node, token } => {
                self.dispatch(node, |n, ctx| n.on_timer(ctx, token));
            }
            SimEvent::Reshape { from, to, params } => {
                self.world.topo.reshape(from, to, params);
                self.world
                    .trace(|| format!("reshape {from}->{to} {}bps", params.bandwidth_bps));
            }
        }
        true
    }

    /// Schedule a live link-parameter change at virtual time `at` (models
    /// `tc` re-shaping an interface mid-experiment, or wireless fading
    /// steps). Affects only the `from → to` direction; in-flight messages
    /// keep their old schedule.
    pub fn reshape_at(&mut self, at: SimTime, from: NodeId, to: NodeId, params: LinkParams) {
        self.world
            .queue
            .schedule(at, SimEvent::Reshape { from, to, params });
    }

    /// Run until the event queue is empty or `max_events` were dispatched.
    /// Returns the number of events dispatched.
    pub fn run(&mut self, max_events: u64) -> u64 {
        let mut n = 0;
        while n < max_events && self.step() {
            n += 1;
        }
        n
    }

    /// Run until virtual time would exceed `until` (events at exactly
    /// `until` still fire) or the queue empties.
    pub fn run_until(&mut self, until: SimTime) {
        self.start_if_needed();
        while let Some(t) = self.world.queue.peek_time() {
            if t > until {
                break;
            }
            self.step();
        }
        if self.world.now < until {
            self.world.now = until;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkParams;

    /// Echoes every message straight back to its sender.
    struct Echo;
    impl Node<u32> for Echo {
        fn on_message(&mut self, ctx: &mut Ctx<'_, u32>, from: NodeId, msg: u32) {
            ctx.send(from, 100, msg + 1);
        }
    }

    /// Sends one message at start, records the reply time.
    struct Pinger {
        peer: NodeId,
        reply: Option<(SimTime, u32)>,
    }
    impl Node<u32> for Pinger {
        fn on_start(&mut self, ctx: &mut Ctx<'_, u32>) {
            ctx.send(self.peer, 100, 41);
        }
        fn on_message(&mut self, ctx: &mut Ctx<'_, u32>, _from: NodeId, msg: u32) {
            self.reply = Some((ctx.now(), msg));
        }
    }

    fn two_node_sim() -> (Simulator<u32>, NodeId, NodeId) {
        let mut topo = Topology::new();
        let a = topo.add_node("a");
        let b = topo.add_node("b");
        topo.connect(a, b, LinkParams::mbps_ms(8.0, 10)); // 1 MB/s, 10 ms
        (Simulator::new(topo, 1), a, b)
    }

    #[test]
    fn ping_pong_round_trip_time() {
        let (mut sim, a, b) = two_node_sim();
        sim.bind(
            a,
            Box::new(Pinger {
                peer: b,
                reply: None,
            }),
        );
        sim.bind(b, Box::new(Echo));
        sim.run(100);
        // 100 B at 1 MB/s = 0.1 ms serialization each way + 10 ms prop each way.
        assert_eq!(sim.now(), SimTime::from_micros(20_200));
        assert_eq!(sim.stats().delivered, 2);
    }

    #[test]
    fn timers_fire_in_order() {
        struct T {
            fired: Vec<u64>,
        }
        impl Node<()> for T {
            fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) {
                ctx.set_timer(SimDuration::from_millis(5), 5);
                ctx.set_timer(SimDuration::from_millis(1), 1);
                ctx.set_timer(SimDuration::from_millis(3), 3);
            }
            fn on_message(&mut self, _: &mut Ctx<'_, ()>, _: NodeId, _: ()) {}
            fn on_timer(&mut self, _: &mut Ctx<'_, ()>, token: u64) {
                self.fired.push(token);
            }
        }
        let mut topo = Topology::new();
        let a = topo.add_node("a");
        let mut sim: Simulator<()> = Simulator::new(topo, 0);
        sim.bind(a, Box::new(T { fired: vec![] }));
        sim.run(10);
        // Inspect by re-borrowing: easiest is via trace-free stats; instead
        // re-run logic — here we rely on the node being dropped with state.
        // Simpler: check time advanced to the last timer.
        assert_eq!(sim.now(), SimTime::from_millis(5));
        assert_eq!(sim.stats().events, 3);
    }

    #[test]
    fn routed_send_relays_through_middle() {
        struct Sink {
            got: Option<(NodeId, u32, SimTime)>,
        }
        impl Node<u32> for Sink {
            fn on_message(&mut self, ctx: &mut Ctx<'_, u32>, from: NodeId, msg: u32) {
                self.got = Some((from, msg, ctx.now()));
            }
        }
        struct Src {
            dst: NodeId,
        }
        impl Node<u32> for Src {
            fn on_start(&mut self, ctx: &mut Ctx<'_, u32>) {
                ctx.send_routed(self.dst, 1_000_000, 7);
            }
            fn on_message(&mut self, _: &mut Ctx<'_, u32>, _: NodeId, _: u32) {}
        }
        struct Idle;
        impl Node<u32> for Idle {
            fn on_message(&mut self, _: &mut Ctx<'_, u32>, _: NodeId, _: u32) {
                panic!("relay node must not see relayed messages");
            }
        }
        let (mut topo, c, e, s) = {
            let access = LinkParams::mbps_ms(80.0, 5); // 10 MB/s
            let wan = LinkParams::mbps_ms(80.0, 20);
            Topology::chain(access, wan)
        };
        let _ = topo.next_hop(c, s);
        let mut sim = Simulator::new(topo, 3);
        sim.bind(c, Box::new(Src { dst: s }));
        sim.bind(e, Box::new(Idle));
        sim.bind(s, Box::new(Sink { got: None }));
        sim.run(100);
        // hop1: 100 ms ser + 5 ms; hop2: 100 ms ser + 20 ms => 225 ms total.
        assert_eq!(sim.now(), SimTime::from_millis(225));
        assert_eq!(sim.stats().delivered, 1);
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let (mut sim, a, b) = two_node_sim();
        sim.bind(
            a,
            Box::new(Pinger {
                peer: b,
                reply: None,
            }),
        );
        sim.bind(b, Box::new(Echo));
        sim.run_until(SimTime::from_millis(10));
        // Only the first delivery (at 10.1 ms) is beyond the deadline.
        assert_eq!(sim.stats().delivered, 0);
        assert_eq!(sim.now(), SimTime::from_millis(10));
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(sim.stats().delivered, 2);
    }

    #[test]
    fn identical_seeds_reproduce_exactly() {
        let run = |seed: u64| {
            let mut topo = Topology::new();
            let a = topo.add_node("a");
            let b = topo.add_node("b");
            let mut params = LinkParams::mbps_ms(8.0, 10);
            params.jitter_max = SimDuration::from_millis(2);
            topo.connect(a, b, params);
            let mut sim = Simulator::new(topo, seed);
            sim.bind(
                a,
                Box::new(Pinger {
                    peer: b,
                    reply: None,
                }),
            );
            sim.bind(b, Box::new(Echo));
            sim.run(1000);
            (sim.now(), sim.stats().delivered)
        };
        assert_eq!(run(42), run(42));
    }

    #[test]
    #[should_panic(expected = "no link")]
    fn direct_send_without_link_panics() {
        struct Bad {
            dst: NodeId,
        }
        impl Node<()> for Bad {
            fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) {
                ctx.send(self.dst, 1, ());
            }
            fn on_message(&mut self, _: &mut Ctx<'_, ()>, _: NodeId, _: ()) {}
        }
        let mut topo = Topology::new();
        let a = topo.add_node("a");
        let b = topo.add_node("b"); // no link installed
        let mut sim: Simulator<()> = Simulator::new(topo, 0);
        sim.bind(a, Box::new(Bad { dst: b }));
        sim.run(1);
    }

    #[test]
    fn scheduled_reshape_changes_rates_mid_run() {
        // A sender transmits one message before and one after a scheduled
        // bandwidth drop; the second must serialize 10× slower.
        struct TwoShots {
            peer: NodeId,
        }
        impl Node<u32> for TwoShots {
            fn on_start(&mut self, ctx: &mut Ctx<'_, u32>) {
                ctx.set_timer(SimDuration::from_millis(0), 1);
                ctx.set_timer(SimDuration::from_millis(500), 2);
            }
            fn on_timer(&mut self, ctx: &mut Ctx<'_, u32>, token: u64) {
                ctx.send(self.peer, 1_000_000, token as u32);
            }
            fn on_message(&mut self, _: &mut Ctx<'_, u32>, _: NodeId, _: u32) {}
        }
        struct Recorder {
            arrivals: Rc<std::cell::RefCell<Vec<SimTime>>>,
        }
        impl Node<u32> for Recorder {
            fn on_message(&mut self, ctx: &mut Ctx<'_, u32>, _: NodeId, _: u32) {
                self.arrivals.borrow_mut().push(ctx.now());
            }
        }
        use std::rc::Rc;
        let mut topo = Topology::new();
        let a = topo.add_node("a");
        let b = topo.add_node("b");
        topo.connect(a, b, LinkParams::mbps_ms(80.0, 0)); // 10 MB/s
        let mut sim = Simulator::new(topo, 0);
        let arrivals = Rc::new(std::cell::RefCell::new(Vec::new()));
        sim.bind(a, Box::new(TwoShots { peer: b }));
        sim.bind(
            b,
            Box::new(Recorder {
                arrivals: arrivals.clone(),
            }),
        );
        sim.reshape_at(SimTime::from_millis(250), a, b, LinkParams::mbps_ms(8.0, 0));
        sim.run(100);
        let t = arrivals.borrow();
        // First: 1 MB at 10 MB/s = 100 ms. Second: sent at 500 ms, 1 MB at
        // 1 MB/s = 1000 ms -> arrives at 1500 ms.
        assert_eq!(t[0], SimTime::from_millis(100));
        assert_eq!(t[1], SimTime::from_millis(1500));
    }

    #[test]
    fn trace_records_transmissions() {
        let (mut sim, a, b) = two_node_sim();
        sim.enable_trace(100);
        sim.bind(
            a,
            Box::new(Pinger {
                peer: b,
                reply: None,
            }),
        );
        sim.bind(b, Box::new(Echo));
        sim.run(100);
        let trace = sim.trace().unwrap();
        assert!(trace.contains("tx n0->n1"));
        assert!(trace.contains("tx n1->n0"));
    }
}

//! # coic-vision
//!
//! Synthetic vision substrate for the CoIC reproduction: everything the
//! recognition task family needs, built from scratch.
//!
//! * [`image`] — grayscale rasters (the "camera frames"),
//! * [`scene`] — procedural object classes observed under controlled
//!   viewpoint/illumination/noise perturbations (the co-located-users
//!   redundancy structure the paper exploits),
//! * [`features`] — SimNet, a deterministic layered feature extractor whose
//!   final embedding is CoIC's recognition feature descriptor,
//! * [`hog`] — alternative extractors (HOG-style gradients, raw pooling)
//!   behind one [`hog::Extractor`] trait for the descriptor ablation,
//! * [`distance`] — the metrics the cache threshold is measured in,
//! * [`index`] — exact and LSH nearest-neighbour indexes for edge lookup,
//! * [`kmeans`] — unsupervised clustering (prototype discovery, threshold
//!   estimation from within-cluster spread),
//! * [`classify`] — the cloud-side recognition model (nearest centroid),
//! * [`eval`] — confusion matrices and per-class precision/recall,
//! * [`cost`] — MAC-based compute cost model per execution tier.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod classify;
pub mod cost;
pub mod distance;
pub mod eval;
pub mod features;
pub mod hog;
pub mod image;
pub mod index;
pub mod kmeans;
pub mod scene;

pub use classify::PrototypeClassifier;
pub use cost::{ComputeProfile, FULL_DNN_MACS};
pub use distance::Metric;
pub use eval::ConfusionMatrix;
pub use features::{FeatureVec, SimNet, SimNetConfig};
pub use hog::{Extractor, HogExtractor, PoolExtractor};
pub use image::Image;
pub use index::{LinearIndex, LshIndex, NnIndex};
pub use kmeans::KMeans;
pub use scene::{gaussian, ObjectClass, SceneGenerator, ViewParams};

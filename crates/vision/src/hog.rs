//! Histogram-of-oriented-gradients (HOG-style) descriptor.
//!
//! An alternative to SimNet for the descriptor-design ablation: classical
//! hand-crafted features with very different invariance behaviour —
//! contrast-robust (gradients + block normalization) but *orientation
//! sensitive*, so viewpoint rotation moves HOG descriptors much more than
//! SimNet embeddings. The `ext_descriptor` experiment measures what that
//! does to CoIC's hit ratio.

use crate::features::FeatureVec;
use crate::image::Image;

/// Pluggable descriptor extractor (SimNet, HOG, raw pooling, …).
pub trait Extractor {
    /// Produce the descriptor for an image.
    fn extract(&self, img: &Image) -> FeatureVec;
    /// Output dimensionality.
    fn dim(&self) -> usize;
    /// Multiply–accumulate cost of one extraction on `img`.
    fn macs(&self, img: &Image) -> u64;
    /// Short label for reports.
    fn name(&self) -> &'static str;
}

impl Extractor for crate::features::SimNet {
    fn extract(&self, img: &Image) -> FeatureVec {
        crate::features::SimNet::extract(self, img)
    }
    fn dim(&self) -> usize {
        self.embedding_dim()
    }
    fn macs(&self, img: &Image) -> u64 {
        self.total_flops(img)
    }
    fn name(&self) -> &'static str {
        "simnet"
    }
}

/// HOG-style extractor: gradient orientation histograms over a cell grid.
pub struct HogExtractor {
    /// Cells per side.
    pub grid: u32,
    /// Orientation bins (unsigned gradients, 0..π).
    pub bins: u32,
}

impl Default for HogExtractor {
    fn default() -> Self {
        HogExtractor { grid: 4, bins: 8 }
    }
}

impl HogExtractor {
    /// Create an extractor with `grid × grid` cells of `bins` orientations.
    ///
    /// # Panics
    /// Panics on degenerate parameters.
    pub fn new(grid: u32, bins: u32) -> Self {
        assert!(grid >= 2 && bins >= 2, "degenerate HOG parameters");
        HogExtractor { grid, bins }
    }
}

impl Extractor for HogExtractor {
    fn extract(&self, img: &Image) -> FeatureVec {
        let (w, h) = (img.width(), img.height());
        let mut hist = vec![0.0f32; (self.grid * self.grid * self.bins) as usize];
        let cell_w = w as f64 / self.grid as f64;
        let cell_h = h as f64 / self.grid as f64;
        for y in 0..h {
            for x in 0..w {
                // Central differences with clamped borders.
                let gx = img.get_clamped(x as i64 + 1, y as i64) as f32
                    - img.get_clamped(x as i64 - 1, y as i64) as f32;
                let gy = img.get_clamped(x as i64, y as i64 + 1) as f32
                    - img.get_clamped(x as i64, y as i64 - 1) as f32;
                let mag = (gx * gx + gy * gy).sqrt();
                if mag < 1e-6 {
                    continue;
                }
                // Unsigned orientation in [0, π).
                let mut theta = gy.atan2(gx);
                if theta < 0.0 {
                    theta += std::f32::consts::PI;
                }
                if theta >= std::f32::consts::PI {
                    theta -= std::f32::consts::PI;
                }
                let bin = ((theta / std::f32::consts::PI) * self.bins as f32) as u32 % self.bins;
                let cx = ((x as f64 / cell_w) as u32).min(self.grid - 1);
                let cy = ((y as f64 / cell_h) as u32).min(self.grid - 1);
                let idx = ((cy * self.grid + cx) * self.bins + bin) as usize;
                hist[idx] += mag;
            }
        }
        // Per-cell L2 block normalization (contrast robustness), then a
        // global normalization for threshold comparability.
        for cell in hist.chunks_mut(self.bins as usize) {
            let norm = cell.iter().map(|v| v * v).sum::<f32>().sqrt().max(1e-6);
            for v in cell {
                *v /= norm;
            }
        }
        FeatureVec::new(hist).normalized()
    }

    fn dim(&self) -> usize {
        (self.grid * self.grid * self.bins) as usize
    }

    fn macs(&self, img: &Image) -> u64 {
        // ~8 ops per pixel (two gradients, magnitude, atan2 amortized).
        img.byte_size() * 8
    }

    fn name(&self) -> &'static str {
        "hog"
    }
}

/// The trivial baseline extractor: the contrast-normalized pooled grid
/// (SimNet's front end without any projection layers).
pub struct PoolExtractor {
    net: crate::features::SimNet,
}

impl Default for PoolExtractor {
    fn default() -> Self {
        PoolExtractor {
            net: crate::features::SimNet::default_net(),
        }
    }
}

impl Extractor for PoolExtractor {
    fn extract(&self, img: &Image) -> FeatureVec {
        self.net.pool(img).normalized()
    }
    fn dim(&self) -> usize {
        let g = self.net.config().grid;
        (g * g) as usize
    }
    fn macs(&self, img: &Image) -> u64 {
        self.net.pool_flops(img)
    }
    fn name(&self) -> &'static str {
        "pool"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::l2;
    use crate::scene::{ObjectClass, SceneGenerator, ViewParams};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn hog_is_deterministic_and_unit_norm() {
        let g = SceneGenerator::new(64);
        let img = g.canonical(ObjectClass(1));
        let hog = HogExtractor::default();
        let a = hog.extract(&img);
        let b = hog.extract(&img);
        assert_eq!(a, b);
        assert!((a.l2_norm() - 1.0).abs() < 1e-5);
        assert_eq!(a.dim(), hog.dim());
    }

    #[test]
    fn hog_separates_classes() {
        let g = SceneGenerator::new(64);
        let hog = HogExtractor::default();
        let mut rng = StdRng::seed_from_u64(3);
        let mut intra = 0.0f64;
        let mut inter = 0.0f64;
        let mut n_intra = 0;
        let mut n_inter = 0;
        let mut embeds = Vec::new();
        for c in 0..6u32 {
            let mut per = Vec::new();
            for _ in 0..4 {
                let v = ViewParams::jittered(&mut rng, 0.03, 2.0);
                per.push(hog.extract(&g.observe(ObjectClass(c), &v, &mut rng)));
            }
            embeds.push(per);
        }
        for c in 0..6usize {
            for i in 0..4 {
                for j in i + 1..4 {
                    intra += l2(&embeds[c][i], &embeds[c][j]) as f64;
                    n_intra += 1;
                }
                for c2 in c + 1..6 {
                    for j in 0..4 {
                        inter += l2(&embeds[c][i], &embeds[c2][j]) as f64;
                        n_inter += 1;
                    }
                }
            }
        }
        let intra = intra / n_intra as f64;
        let inter = inter / n_inter as f64;
        assert!(inter > 1.3 * intra, "intra {intra:.3} inter {inter:.3}");
    }

    #[test]
    fn hog_is_contrast_robust() {
        let g = SceneGenerator::new(64);
        let hog = HogExtractor::default();
        let img = g.canonical(ObjectClass(4));
        let brighter = img.scaled(1.3);
        let d = l2(&hog.extract(&img), &hog.extract(&brighter));
        assert!(d < 0.2, "contrast shifted HOG by {d}");
    }

    #[test]
    fn hog_is_more_rotation_sensitive_than_simnet() {
        let g = SceneGenerator::new(64);
        let hog = HogExtractor::default();
        let net = crate::features::SimNet::default_net();
        let mut rng = StdRng::seed_from_u64(5);
        let base = g.canonical(ObjectClass(2));
        let rotated = g.observe(
            ObjectClass(2),
            &ViewParams {
                angle: 0.35,
                ..ViewParams::default()
            },
            &mut rng,
        );
        // Raw L2 is not comparable across feature spaces, so normalize each
        // rotation distance by that extractor's mean inter-class distance:
        // "how many class-widths did the rotation move the descriptor?"
        let (mut hog_scale, mut net_scale, mut pairs) = (0.0f32, 0.0f32, 0u32);
        for a in 0..4u32 {
            for b in (a + 1)..4u32 {
                let ia = g.canonical(ObjectClass(a));
                let ib = g.canonical(ObjectClass(b));
                hog_scale += l2(&hog.extract(&ia), &hog.extract(&ib));
                net_scale += l2(&net.extract(&ia), &net.extract(&ib));
                pairs += 1;
            }
        }
        let d_hog = l2(&hog.extract(&base), &hog.extract(&rotated)) * pairs as f32 / hog_scale;
        let d_net = l2(&net.extract(&base), &net.extract(&rotated)) * pairs as f32 / net_scale;
        assert!(
            d_hog > d_net,
            "expected HOG ({d_hog:.3}) more rotation-sensitive than SimNet ({d_net:.3}), \
             in units of mean inter-class distance"
        );
    }

    #[test]
    fn extractor_trait_objects_work() {
        let g = SceneGenerator::new(64);
        let img = g.canonical(ObjectClass(0));
        let extractors: Vec<Box<dyn Extractor>> = vec![
            Box::new(crate::features::SimNet::default_net()),
            Box::new(HogExtractor::default()),
            Box::new(PoolExtractor::default()),
        ];
        for e in &extractors {
            let v = e.extract(&img);
            assert_eq!(v.dim(), e.dim(), "{} dim mismatch", e.name());
            assert!(e.macs(&img) > 0);
        }
    }

    #[test]
    #[should_panic(expected = "degenerate HOG")]
    fn tiny_hog_rejected() {
        let _ = HogExtractor::new(1, 8);
    }
}

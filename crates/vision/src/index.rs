//! Nearest-neighbour indexes over feature vectors.
//!
//! The edge cache must answer "is any cached descriptor within threshold of
//! this query?" — [`LinearIndex`] answers exactly, [`LshIndex`] answers
//! approximately but sublinearly (random-hyperplane LSH), which matters when
//! an edge accumulates many thousands of cached results.

use crate::distance::{l2, Metric};
use crate::features::FeatureVec;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::HashMap;

/// A nearest-neighbour index keyed by caller-chosen u64 ids.
pub trait NnIndex {
    /// Insert a vector under `id`. Inserting an existing id replaces it.
    fn insert(&mut self, id: u64, v: FeatureVec);
    /// Remove `id`, returning whether it was present.
    fn remove(&mut self, id: u64) -> bool;
    /// The closest stored vector to `q` (by the index's metric), with its
    /// distance. `None` when empty.
    fn nearest(&self, q: &FeatureVec) -> Option<(u64, f32)>;
    /// Number of stored vectors.
    fn len(&self) -> usize;
    /// True when nothing is stored.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Fold any deferred maintenance (batch rebuilds) into the index,
    /// returning how many journaled mutations were folded. Purely
    /// incremental indexes have nothing to fold and return 0.
    fn maintain(&mut self) -> usize {
        0
    }
}

/// Exact nearest neighbour by linear scan.
pub struct LinearIndex {
    metric: Metric,
    items: HashMap<u64, FeatureVec>,
}

impl LinearIndex {
    /// Create an empty index with the given metric.
    pub fn new(metric: Metric) -> Self {
        LinearIndex {
            metric,
            items: HashMap::new(),
        }
    }
}

impl NnIndex for LinearIndex {
    fn insert(&mut self, id: u64, v: FeatureVec) {
        self.items.insert(id, v);
    }

    fn remove(&mut self, id: u64) -> bool {
        self.items.remove(&id).is_some()
    }

    fn nearest(&self, q: &FeatureVec) -> Option<(u64, f32)> {
        let mut best: Option<(u64, f32)> = None;
        // Deterministic tie-breaking: iterate ids in sorted order.
        let mut ids: Vec<_> = self.items.keys().copied().collect();
        ids.sort_unstable();
        for id in ids {
            let d = self.metric.eval(q, &self.items[&id]);
            if best.map(|(_, bd)| d < bd).unwrap_or(true) {
                best = Some((id, d));
            }
        }
        best
    }

    fn len(&self) -> usize {
        self.items.len()
    }
}

/// Random-hyperplane locality-sensitive hashing index (cosine-family).
///
/// `tables` independent hash tables, each hashing a vector to a `bits`-bit
/// signature via signed random projections. Lookup collects candidates from
/// the query's bucket in every table and scans them exactly; if no bucket
/// has candidates it falls back to a full scan so the index never returns a
/// worse answer than "exact but slow".
pub struct LshIndex {
    dim: usize,
    bits: usize,
    /// planes[t] holds `bits` hyperplane normals, each of length `dim`.
    planes: Vec<Vec<Vec<f32>>>,
    buckets: Vec<HashMap<u64, Vec<u64>>>,
    items: HashMap<u64, FeatureVec>,
}

impl LshIndex {
    /// Create an index for `dim`-dimensional vectors with `tables`
    /// independent tables of `bits`-bit signatures, seeded deterministically.
    pub fn new(dim: usize, tables: usize, bits: usize, seed: u64) -> Self {
        assert!(
            dim > 0 && tables > 0 && bits > 0,
            "LSH parameters must be positive"
        );
        assert!(bits <= 63, "at most 63 bits per signature");
        let mut rng = StdRng::seed_from_u64(seed);
        let planes = (0..tables)
            .map(|_| {
                (0..bits)
                    .map(|_| {
                        (0..dim)
                            .map(|_| rng.random::<f32>() * 2.0 - 1.0)
                            .collect::<Vec<f32>>()
                    })
                    .collect()
            })
            .collect();
        LshIndex {
            dim,
            bits,
            planes,
            buckets: vec![HashMap::new(); tables],
            items: HashMap::new(),
        }
    }

    fn signature(&self, table: usize, v: &FeatureVec) -> u64 {
        let mut sig = 0u64;
        for (b, plane) in self.planes[table].iter().enumerate() {
            let s: f32 = plane.iter().zip(v.as_slice()).map(|(p, x)| p * x).sum();
            if s >= 0.0 {
                sig |= 1 << b;
            }
        }
        sig
    }

    /// Number of tables.
    pub fn tables(&self) -> usize {
        self.planes.len()
    }

    /// Bits per signature.
    pub fn bits(&self) -> usize {
        self.bits
    }
}

impl NnIndex for LshIndex {
    fn insert(&mut self, id: u64, v: FeatureVec) {
        assert_eq!(v.dim(), self.dim, "vector dim mismatch");
        if self.items.contains_key(&id) {
            self.remove(id);
        }
        for t in 0..self.planes.len() {
            let sig = self.signature(t, &v);
            self.buckets[t].entry(sig).or_default().push(id);
        }
        self.items.insert(id, v);
    }

    fn remove(&mut self, id: u64) -> bool {
        let Some(v) = self.items.remove(&id) else {
            return false;
        };
        for t in 0..self.planes.len() {
            let sig = self.signature(t, &v);
            if let Some(bucket) = self.buckets[t].get_mut(&sig) {
                bucket.retain(|&x| x != id);
                if bucket.is_empty() {
                    self.buckets[t].remove(&sig);
                }
            }
        }
        true
    }

    fn nearest(&self, q: &FeatureVec) -> Option<(u64, f32)> {
        if self.items.is_empty() {
            return None;
        }
        assert_eq!(q.dim(), self.dim, "query dim mismatch");
        let mut candidates: Vec<u64> = Vec::new();
        for t in 0..self.planes.len() {
            let sig = self.signature(t, q);
            if let Some(bucket) = self.buckets[t].get(&sig) {
                candidates.extend_from_slice(bucket);
            }
        }
        candidates.sort_unstable();
        candidates.dedup();
        let scan: Box<dyn Iterator<Item = u64>> = if candidates.is_empty() {
            // Conservative fallback: exact scan rather than a false miss.
            let mut ids: Vec<_> = self.items.keys().copied().collect();
            ids.sort_unstable();
            Box::new(ids.into_iter())
        } else {
            Box::new(candidates.into_iter())
        };
        let mut best: Option<(u64, f32)> = None;
        for id in scan {
            let d = l2(q, &self.items[&id]);
            if best.map(|(_, bd)| d < bd).unwrap_or(true) {
                best = Some((id, d));
            }
        }
        best
    }

    fn len(&self) -> usize {
        self.items.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngExt;

    fn unit(rng: &mut StdRng, dim: usize) -> FeatureVec {
        let v: Vec<f32> = (0..dim).map(|_| rng.random::<f32>() * 2.0 - 1.0).collect();
        FeatureVec::new(v).normalized()
    }

    /// Random unit vector near `center` (for clustered data).
    fn near(rng: &mut StdRng, center: &FeatureVec, eps: f32) -> FeatureVec {
        let v: Vec<f32> = center
            .as_slice()
            .iter()
            .map(|&x| x + (rng.random::<f32>() * 2.0 - 1.0) * eps)
            .collect();
        FeatureVec::new(v).normalized()
    }

    #[test]
    fn linear_finds_exact_nearest() {
        let mut idx = LinearIndex::new(Metric::L2);
        idx.insert(1, FeatureVec::new(vec![0.0, 0.0]));
        idx.insert(2, FeatureVec::new(vec![1.0, 0.0]));
        idx.insert(3, FeatureVec::new(vec![0.0, 2.0]));
        let (id, d) = idx.nearest(&FeatureVec::new(vec![0.9, 0.1])).unwrap();
        assert_eq!(id, 2);
        assert!(d < 0.2);
    }

    #[test]
    fn linear_empty_returns_none() {
        let idx = LinearIndex::new(Metric::L2);
        assert_eq!(idx.nearest(&FeatureVec::new(vec![0.0])), None);
    }

    #[test]
    fn linear_replace_and_remove() {
        let mut idx = LinearIndex::new(Metric::L2);
        idx.insert(1, FeatureVec::new(vec![0.0]));
        idx.insert(1, FeatureVec::new(vec![5.0]));
        assert_eq!(idx.len(), 1);
        let (_, d) = idx.nearest(&FeatureVec::new(vec![5.0])).unwrap();
        assert_eq!(d, 0.0);
        assert!(idx.remove(1));
        assert!(!idx.remove(1));
        assert!(idx.is_empty());
    }

    #[test]
    fn lsh_exact_on_duplicates() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut idx = LshIndex::new(16, 4, 8, 42);
        let mut vecs = Vec::new();
        for id in 0..50u64 {
            let v = unit(&mut rng, 16);
            idx.insert(id, v.clone());
            vecs.push(v);
        }
        // Querying with a stored vector must return it at distance ~0.
        for (id, v) in vecs.iter().enumerate() {
            let (got, d) = idx.nearest(v).unwrap();
            assert_eq!(got, id as u64);
            assert!(d < 1e-6);
        }
    }

    #[test]
    fn lsh_high_recall_on_clustered_data() {
        let mut rng = StdRng::seed_from_u64(9);
        let dim = 32;
        let mut lsh = LshIndex::new(dim, 8, 10, 7);
        let mut lin = LinearIndex::new(Metric::L2);
        let mut centers = Vec::new();
        let mut next_id = 0u64;
        for _ in 0..10 {
            let c = unit(&mut rng, dim);
            for _ in 0..20 {
                let v = near(&mut rng, &c, 0.05);
                lsh.insert(next_id, v.clone());
                lin.insert(next_id, v);
                next_id += 1;
            }
            centers.push(c);
        }
        // Query near each center; LSH must find something about as close
        // as the exact answer in the vast majority of cases.
        let mut good = 0;
        let n = 100;
        for _ in 0..n {
            let c = &centers[rng.random_range(0..centers.len())];
            let q = near(&mut rng, c, 0.05);
            let (_, d_lsh) = lsh.nearest(&q).unwrap();
            let (_, d_lin) = lin.nearest(&q).unwrap();
            if d_lsh <= d_lin * 1.5 + 0.05 {
                good += 1;
            }
        }
        assert!(good >= 90, "LSH recall too low: {good}/{n}");
    }

    #[test]
    fn lsh_remove_cleans_buckets() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut idx = LshIndex::new(8, 2, 4, 1);
        let v = unit(&mut rng, 8);
        idx.insert(7, v.clone());
        assert!(idx.remove(7));
        assert!(idx.is_empty());
        assert_eq!(idx.nearest(&v), None);
        assert!(!idx.remove(7));
    }

    #[test]
    fn lsh_fallback_never_misses() {
        // One stored vector, query orthogonal to it: buckets likely differ,
        // the fallback full scan must still return the stored vector.
        let mut idx = LshIndex::new(4, 1, 8, 2);
        let stored = FeatureVec::new(vec![1.0, 0.0, 0.0, 0.0]);
        idx.insert(1, stored);
        let q = FeatureVec::new(vec![-1.0, 0.0, 0.0, 0.0]);
        let (id, _) = idx.nearest(&q).unwrap();
        assert_eq!(id, 1);
    }

    #[test]
    #[should_panic(expected = "dim mismatch")]
    fn lsh_dim_mismatch_panics() {
        let mut idx = LshIndex::new(4, 1, 4, 0);
        idx.insert(0, FeatureVec::new(vec![0.0; 5]));
    }

    #[test]
    fn maintain_defaults_to_noop() {
        let mut idx = LinearIndex::new(Metric::L2);
        idx.insert(1, FeatureVec::new(vec![0.0]));
        assert_eq!(idx.maintain(), 0);
        assert_eq!(idx.len(), 1);
    }
}

//! A minimal Rust lexer: just enough to separate code tokens from
//! comments and string/char literals, with line numbers.
//!
//! The lint rules match *token* sequences, so `std::net` inside a string,
//! a doc comment, or `// prose` never trips a rule, while any real code
//! occurrence does regardless of spacing or line breaks. Comments are
//! retained (with their line) because the `// lint: allow(...)` escape
//! hatch and the fixtures' `// LINT-EXPECT:` markers live in them.

/// One code token: its text and the 1-based line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Token text. Multi-character only for identifiers, numbers, `::`,
    /// and literals (literals keep their quotes, contents replaced by
    /// nothing — only their presence matters to the token rules).
    pub text: String,
    /// 1-based source line.
    pub line: u32,
    /// For string literals only: the raw literal content (between the
    /// quotes, escapes untouched). The semantic passes that match
    /// telemetry name literals read this; token-sequence rules keep
    /// matching on the contents-free `text`.
    pub literal: Option<String>,
}

/// A comment with its 1-based starting line (text excludes the `//` /
/// `/*` markers; block comments keep embedded newlines).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// Comment body.
    pub text: String,
    /// 1-based source line of the comment start.
    pub line: u32,
}

/// Lexer output: code tokens plus comments, both line-annotated.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens in source order.
    pub tokens: Vec<Token>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
}

/// Lex `source`. Never fails: unterminated constructs consume to EOF,
/// matching how a partially edited file should still lint best-effort.
pub fn lex(source: &str) -> Lexed {
    Lexer {
        chars: source.chars().collect(),
        pos: 0,
        line: 1,
        out: Lexed::default(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    out: Lexed,
}

impl Lexer {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn peek_at(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn push_token(&mut self, text: String, line: u32) {
        self.out.tokens.push(Token {
            text,
            line,
            literal: None,
        });
    }

    fn push_string(&mut self, content: String, line: u32) {
        self.out.tokens.push(Token {
            text: "\"\"".into(),
            line,
            literal: Some(content),
        });
    }

    fn run(mut self) -> Lexed {
        while let Some(c) = self.peek() {
            let line = self.line;
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek_at(1) == Some('/') => self.line_comment(),
                '/' if self.peek_at(1) == Some('*') => self.block_comment(),
                '"' => self.string_literal(line),
                'r' | 'b' if self.raw_or_byte_string(line) => {}
                '\'' => self.char_or_lifetime(line),
                ':' if self.peek_at(1) == Some(':') => {
                    self.bump();
                    self.bump();
                    self.push_token("::".into(), line);
                }
                c if c.is_alphanumeric() || c == '_' => self.word(line),
                _ => {
                    let c = self.bump().expect("peeked");
                    self.push_token(c.to_string(), line);
                }
            }
        }
        self.out
    }

    fn line_comment(&mut self) {
        let line = self.line;
        self.bump();
        self.bump(); // `//`
        let mut text = String::new();
        while let Some(c) = self.peek() {
            if c == '\n' {
                break;
            }
            text.push(self.bump().expect("peeked"));
        }
        self.out.comments.push(Comment { text, line });
    }

    fn block_comment(&mut self) {
        let line = self.line;
        self.bump();
        self.bump(); // `/*`
        let mut depth = 1usize;
        let mut text = String::new();
        while let Some(c) = self.peek() {
            if c == '/' && self.peek_at(1) == Some('*') {
                depth += 1;
                self.bump();
                self.bump();
                text.push_str("/*");
            } else if c == '*' && self.peek_at(1) == Some('/') {
                self.bump();
                self.bump();
                depth -= 1;
                if depth == 0 {
                    break;
                }
                text.push_str("*/");
            } else {
                text.push(self.bump().expect("peeked"));
            }
        }
        self.out.comments.push(Comment { text, line });
    }

    fn string_literal(&mut self, line: u32) {
        self.bump(); // opening quote
        let mut content = String::new();
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    content.push(c);
                    if let Some(e) = self.bump() {
                        content.push(e);
                    }
                }
                '"' => break,
                _ => content.push(c),
            }
        }
        self.push_string(content, line);
    }

    /// Handle `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, `rb"…"`; returns false
    /// (consuming nothing) when the `r`/`b` starts a plain identifier.
    fn raw_or_byte_string(&mut self, line: u32) -> bool {
        let first = self.peek().expect("peeked");
        let mut prefix = vec![first];
        if let Some(second) = self.peek_at(1) {
            if (second == 'r' || second == 'b') && second != first {
                prefix.push(second);
            }
        }
        let ahead = prefix.len();
        let mut hashes = 0usize;
        while self.peek_at(ahead + hashes) == Some('#') {
            hashes += 1;
        }
        if self.peek_at(ahead + hashes) != Some('"') {
            return false;
        }
        let raw = prefix.contains(&'r');
        for _ in 0..ahead + hashes + 1 {
            self.bump();
        }
        let mut content = String::new();
        while let Some(c) = self.bump() {
            match c {
                '\\' if !raw => {
                    content.push(c);
                    if let Some(e) = self.bump() {
                        content.push(e);
                    }
                }
                '"' => {
                    let mut close = 0usize;
                    while close < hashes && self.peek() == Some('#') {
                        self.bump();
                        close += 1;
                    }
                    if close == hashes {
                        break;
                    }
                    content.push('"');
                    for _ in 0..close {
                        content.push('#');
                    }
                }
                _ => content.push(c),
            }
        }
        self.push_string(content, line);
        true
    }

    fn char_or_lifetime(&mut self, line: u32) {
        // `'a'` / `'\n'` are char literals; `'a` (no closing quote right
        // after) is a lifetime. Lifetimes lex as a `'` token plus a word.
        let is_char = matches!(
            (self.peek_at(1), self.peek_at(2)),
            (Some('\\'), _) | (Some(_), Some('\''))
        );
        if !is_char {
            self.bump();
            self.push_token("'".into(), line);
            return;
        }
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '\'' => break,
                _ => {}
            }
        }
        self.push_token("''".into(), line);
    }

    fn word(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek() {
            if c.is_alphanumeric() || c == '_' {
                text.push(self.bump().expect("peeked"));
            } else {
                break;
            }
        }
        self.push_token(text, line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        lex(src).tokens.into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn paths_lex_as_words_and_double_colons() {
        assert_eq!(
            texts("use std::net::TcpStream;"),
            ["use", "std", "::", "net", "::", "TcpStream", ";"]
        );
    }

    #[test]
    fn strings_and_comments_do_not_produce_path_tokens() {
        let lexed = lex("let s = \"std::net\"; // std::net here too\n/* and std::net */");
        let t: Vec<_> = lexed.tokens.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(t, ["let", "s", "=", "\"\"", ";"]);
        assert_eq!(lexed.comments.len(), 2);
        assert_eq!(lexed.comments[0].line, 1);
        assert_eq!(lexed.comments[1].line, 2);
    }

    #[test]
    fn raw_strings_with_hashes_are_single_tokens() {
        assert_eq!(texts("r#\"has \" quote\"# x"), ["\"\"", "x"]);
        assert_eq!(texts("br#\"bytes\"# y"), ["\"\"", "y"]);
        assert_eq!(texts("b\"bytes\" z"), ["\"\"", "z"]);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        assert_eq!(texts("&'a str"), ["&", "'", "a", "str"]);
        assert_eq!(texts("'x' y"), ["''", "y"]);
        assert_eq!(texts("'\\n' z"), ["''", "z"]);
    }

    #[test]
    fn nested_block_comments_close_correctly() {
        let lexed = lex("/* outer /* inner */ still */ code");
        let t: Vec<_> = lexed.tokens.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(t, ["code"]);
    }

    #[test]
    fn line_numbers_track_newlines() {
        let lexed = lex("a\nb\n\nc");
        let lines: Vec<_> = lexed.tokens.iter().map(|t| t.line).collect();
        assert_eq!(lines, [1, 2, 4]);
    }

    #[test]
    fn identifier_starting_with_r_or_b_is_a_word() {
        assert_eq!(texts("rate b1 r2d2"), ["rate", "b1", "r2d2"]);
    }

    #[test]
    fn string_tokens_retain_their_content() {
        let lexed = lex("let n = \"cluster.peer_probe\"; r#\"raw \" body\"#");
        let lits: Vec<_> = lexed
            .tokens
            .iter()
            .filter_map(|t| t.literal.as_deref())
            .collect();
        assert_eq!(lits, ["cluster.peer_probe", "raw \" body"]);
        // The visible token text stays contents-free for sequence rules.
        assert!(lexed.tokens.iter().any(|t| t.text == "\"\""));
    }
}

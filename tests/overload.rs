//! Overload acceptance: a seeded flash crowd at 4× the edge's service
//! capacity. With admission control the edge keeps the latency of the work
//! it admits close to uncontended (shedding the rest to the cloud via the
//! client's origin fallback), while the unbounded-queue baseline collapses
//! into runaway queueing delay. Shedding is deterministic: two seeded runs
//! export byte-identical traces and metrics, including the shed counts.

use coic::core::engine::{AdmissionConfig, BrownoutConfig};
use coic::core::simrun::{run, run_instrumented, SimConfig};
use coic::core::{ComputeConfig, QoeReport};
use coic::obs::Telemetry;
use coic::workload::{Request, RequestKind, UserId, ZoneId};
use std::time::Duration;

const MS: u64 = 1_000_000;

/// One warm-up request at t=0 (fetches frame 0 into the edge cache), then
/// `n_clients` open-loop clients each firing `per_client` requests for the
/// cached frame at `gap_ns` spacing from t=1s, then one tail request per
/// client a second after the flood ends (the rejoin check).
fn flood_trace(n_clients: u32, per_client: usize, gap_ns: u64, stagger_ns: u64) -> Vec<Request> {
    let frame = |user: u32, at_ns: u64| Request {
        user: UserId(user),
        zone: ZoneId(0),
        at_ns,
        kind: RequestKind::Panorama { frame_id: 0 },
    };
    let start = 1_000 * MS;
    let mut reqs = vec![frame(0, 0)];
    let mut flood_end = start;
    for c in 0..n_clients {
        for i in 0..per_client {
            let at = start + i as u64 * gap_ns + c as u64 * stagger_ns;
            flood_end = flood_end.max(at);
            reqs.push(frame(c, at));
        }
    }
    for c in 0..n_clients {
        reqs.push(frame(
            c,
            flood_end + 1_000 * MS + c as u64 * stagger_ns.max(20 * MS),
        ));
    }
    reqs.sort_by_key(|r| (r.at_ns, r.user.0));
    reqs
}

/// Two service slots at 10 ms per lookup = 200 req/s of edge capacity.
fn controlled() -> AdmissionConfig {
    AdmissionConfig {
        queue_limit: 2,
        max_queue_age: Duration::from_millis(10),
        retry_after_ms: 50,
        ..AdmissionConfig::fixed(2)
    }
}

fn overload_cfg(admission: AdmissionConfig) -> SimConfig {
    SimConfig {
        num_clients: 8,
        origin_fallback: true,
        closed_loop: false,
        admission: Some(admission),
        brownout: Some(BrownoutConfig::default()),
        compute: ComputeConfig {
            lookup_ns: 10 * MS, // pins service capacity at limit / 10 ms
            ..ComputeConfig::default()
        },
        ..SimConfig::default()
    }
}

/// 8 clients × one request per 10 ms, arriving nearly in lockstep (137 ns
/// stagger keeps the order total): 800 req/s offered against 200 req/s of
/// capacity — the 4× flash crowd.
fn crowd() -> Vec<Request> {
    flood_trace(8, 25, 10 * MS, 137)
}

/// The same population at 1/10th the rate, spread evenly across each gap:
/// one arrival every 12.5 ms stays far under the 200 req/s capacity.
fn trickle() -> Vec<Request> {
    flood_trace(8, 25, 100 * MS, 100 * MS / 8)
}

/// p99 (ms) over the edge-hit completions — the flood work the edge
/// admitted and served itself. Excludes the single warm-up cloud miss
/// (identical in every configuration) and the shed requests that completed
/// through the cloud fallback.
fn edge_hit_p99(report: &mut QoeReport) -> f64 {
    report
        .latency_by_path
        .get_mut("edge_hit")
        .map(|s| s.p99())
        .unwrap_or(0.0)
}

#[test]
fn admission_keeps_admitted_p99_near_uncontended() {
    let cfg = overload_cfg(controlled());
    let mut calm = run(&trickle(), &cfg);
    let mut crowd_report = run(&crowd(), &cfg);

    // Uncontended: nothing queues, nothing is shed.
    assert_eq!(calm.failed, 0);
    let calm_p99 = edge_hit_p99(&mut calm);
    assert!(calm_p99 > 0.0);
    assert!(
        !calm.latency_by_path.contains_key("baseline"),
        "trickle load must not shed"
    );

    // 4× overload: every request still completes — shed ones through the
    // origin fallback — and the work the edge admitted stays fast.
    assert_eq!(crowd_report.failed, 0, "no request may hang or fail");
    let shed_completions = crowd_report
        .latency_by_path
        .get("baseline")
        .map(|s| s.count())
        .unwrap_or(0);
    assert!(shed_completions > 0, "a 4x crowd must shed to the cloud");
    let crowd_p99 = edge_hit_p99(&mut crowd_report);
    assert!(
        crowd_p99 > 0.0,
        "the edge must keep serving admitted work during the crowd"
    );
    assert!(
        crowd_p99 <= 2.0 * calm_p99,
        "admitted p99 {crowd_p99:.2} ms must stay within 2x of uncontended {calm_p99:.2} ms"
    );
}

#[test]
fn unbounded_queue_collapses_under_the_same_crowd() {
    let mut calm = run(&trickle(), &overload_cfg(controlled()));
    let mut collapsed = run(&crowd(), &overload_cfg(AdmissionConfig::unbounded(2)));

    // The unbounded baseline never sheds — everything is eventually served
    // by the edge, so nothing completes via the cloud fallback...
    assert!(!collapsed.latency_by_path.contains_key("baseline"));
    // ...but the queue grows without bound and the tail latency explodes
    // far past the 2x envelope the controlled configuration holds. The
    // merged admitted view (`admitted_p99_ms`) shows the same collapse.
    let calm_p99 = edge_hit_p99(&mut calm);
    let collapsed_p99 = edge_hit_p99(&mut collapsed);
    assert!(
        collapsed_p99 > 2.0 * calm_p99,
        "unbounded p99 {collapsed_p99:.2} ms should collapse past 2x of {calm_p99:.2} ms"
    );
    assert!(collapsed.admitted_p99_ms() > 2.0 * calm.admitted_p99_ms());
}

#[test]
fn shed_clients_fail_over_and_rejoin_after_the_burst() {
    let tel = Telemetry::new();
    let (report, _) = run_instrumented(&crowd(), &overload_cfg(controlled()), &tel);
    assert_eq!(report.failed, 0);

    let reg = tel.registry();
    assert!(reg.counter("robustness.shed") > 0, "edge must shed");
    assert!(reg.counter("robustness.admitted") > 0, "edge must admit");
    assert!(
        reg.counter("robustness.overloaded_replies") > 0,
        "clients must observe Msg::Overloaded"
    );
    assert!(
        reg.counter("robustness.degraded_transitions") > 0,
        "shed clients must fail over to the cloud"
    );
    // The tail requests a second after the burst find the edge healthy
    // again: the probe ladder brings every degraded client back.
    assert!(
        reg.counter("robustness.recovered_transitions") > 0,
        "clients must rejoin the edge after the brownout clears"
    );
}

#[test]
fn seeded_flash_crowd_exports_are_byte_identical() {
    let run_once = || {
        let tel = Telemetry::new();
        run_instrumented(&crowd(), &overload_cfg(controlled()), &tel);
        (tel.trace_jsonl(), tel.metrics_canonical())
    };
    let (trace_a, metrics_a) = run_once();
    let (trace_b, metrics_b) = run_once();
    assert!(
        trace_a.contains("edge.shed"),
        "instrumented overload run must record shed events"
    );
    assert!(trace_a.contains("edge.admitted"));
    assert!(trace_a.contains("edge.brownout_state"));
    assert_eq!(trace_a, trace_b, "seeded overload traces must not drift");
    assert_eq!(metrics_a, metrics_b);
}

#!/usr/bin/env sh
# Run the full static + dynamic analysis pass — the same sequence CI's
# `analyze` job runs:
#
#   1. `coic lint` over the workspace against analyze/rules.toml
#      (sans-IO import bans, wall-clock/nondeterminism bans, unwrap and
#      hot-path indexing bans, paired-call leak checks, the lock-order
#      graph, protocol conformance, the telemetry registry,
#      #![forbid(unsafe_code)] coverage — DESIGN.md §11 and §16);
#   2. `coic analyze trace` over a seeded 16-edge cluster run with a
#      mid-run edge failure, against analyze/trace_invariants.toml, plus
#      a must-fail check on the checked-in corrupted trace fixture;
#   3. the coic-obs unit tests (deterministic registry, histogram
#      bucket boundaries, canonical snapshot ordering — the invariants
#      the determinism jobs build on);
#   4. the mini-loom model checker's self-tests (shims/loom);
#   5. the exhaustive-interleaving model tests for the sharded cache's
#      deferred-touch drain, the snapshot ANN cache's snapshot/journal
#      handoff, and the circuit breaker / single-flight engine structures
#      (the `model-check` feature swaps parking_lot and std atomics for
#      the loom shims).
#
# Usage: scripts/analyze.sh
set -eu
cd "$(dirname "$0")/.."

echo "==> workspace lint (analyze/rules.toml)"
cargo run -q --locked -p coic-analyze -- --root .

echo "==> trace invariants over a seeded 16-edge cluster run"
cargo run -q --locked -p coic-cli -- trace gen \
  --app arena --out /tmp/analyze_arena.csv --users 12 --requests 400
cargo run -q --locked -p coic-cli -- sim \
  --in /tmp/analyze_arena.csv --clients 12 --edges 16 --seed 7 \
  --peer-fanout 3 --replicate 2 --edge-down 100@3 \
  --trace-out /tmp/analyze_cluster.jsonl \
  --metrics-out /tmp/analyze_cluster.txt > /dev/null
# The run must actually exercise what the invariants pin: a mid-run edge
# failure and a breaker transition (a run that never probed would pass
# vacuously).
grep -q '"n":"edge.down"' /tmp/analyze_cluster.jsonl
grep -q '"n":"cluster.peer_state"' /tmp/analyze_cluster.jsonl
cargo run -q --locked -p coic-cli -- analyze trace \
  --trace /tmp/analyze_cluster.jsonl --metrics /tmp/analyze_cluster.txt

echo "==> trace verifier rejects the corrupted fixture"
if cargo run -q --locked -p coic-cli -- analyze trace \
  --trace crates/analyze/fixtures/trace/corrupt.jsonl \
  --metrics crates/analyze/fixtures/trace/corrupt_metrics.txt \
  --invariants crates/analyze/fixtures/trace/invariants.toml \
  > /dev/null 2>&1; then
  echo "corrupted trace fixture unexpectedly passed the verifier" >&2
  exit 1
fi

echo "==> observability layer (coic-obs) unit tests"
cargo test -q --locked -p coic-obs

echo "==> mini-loom self-tests"
cargo test -q --locked -p loom

echo "==> model check: cache drain + snapshot/journal handoff"
cargo test -q --locked -p coic-cache --features model-check --test model

echo "==> model check: circuit breaker + single-flight"
cargo test -q --locked -p coic-core --features model-check --test model

echo "analysis pass clean"

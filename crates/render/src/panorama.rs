//! Equirectangular panoramas and viewport cropping.
//!
//! The paper's third task family: "current cloud-based VR applications
//! leverage panoramic frames ... the server sends a panoramic frame to the
//! client, and then the client crops the panorama to generate the final
//! frame for display. Multiple users playing the same VR applications or
//! watching the same VR video might use the same panorama." CoIC caches
//! panoramas at the edge keyed by content hash; this module supplies the
//! panoramas and the cropping math.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// An 8-bit grayscale equirectangular panorama (width = 2 × height;
/// azimuth spans 360°, elevation 180°).
///
/// # Examples
/// ```
/// use coic_render::Panorama;
///
/// // The server synthesizes a frame; the client crops its viewport.
/// let frame = Panorama::synthesize(7, 64);
/// assert_eq!((frame.width(), frame.height()), (128, 64));
/// let viewport = frame.crop_viewport(0.5, 0.0, 1.4, 32, 18);
/// assert_eq!(viewport.len(), 32 * 18);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Panorama {
    width: u32,
    height: u32,
    pixels: Vec<u8>,
}

impl Panorama {
    /// Synthesize a deterministic panorama for `frame_id` of a given
    /// `height` (width is `2 × height`). Distinct frame ids produce
    /// distinct content; the same id always produces identical bytes, so
    /// hashes agree across nodes.
    ///
    /// # Panics
    /// Panics if `height < 8`.
    pub fn synthesize(frame_id: u64, height: u32) -> Panorama {
        assert!(height >= 8, "panorama too small");
        let width = height * 2;
        let mut rng = StdRng::seed_from_u64(0x9A70_0000 ^ frame_id);
        // Spherical-harmonic-ish bands: low-frequency waves over the sphere
        // so the panorama wraps seamlessly in azimuth.
        let bands: Vec<(f64, f64, f64)> = (0..8)
            .map(|_| {
                (
                    rng.random_range(1.0..4.0f64).round(),
                    rng.random_range(0.5..3.0),
                    rng.random_range(0.0..std::f64::consts::TAU),
                )
            })
            .collect();
        let base: f64 = rng.random_range(100.0..150.0);
        let mut pixels = Vec::with_capacity((width * height) as usize);
        for y in 0..height {
            let elev = (y as f64 + 0.5) / height as f64 * std::f64::consts::PI;
            for x in 0..width {
                let azim = (x as f64 + 0.5) / width as f64 * std::f64::consts::TAU;
                let mut v = base;
                for &(fa, fe, phase) in &bands {
                    // Integer azimuthal frequency keeps the seam invisible.
                    v += 18.0 * (fa * azim + phase).sin() * (fe * elev).sin();
                }
                pixels.push(v.clamp(0.0, 255.0) as u8);
            }
        }
        Panorama {
            width,
            height,
            pixels,
        }
    }

    /// Wrap raw equirectangular pixels (e.g. produced by
    /// [`crate::cubemap::cubemap_to_equirect`]).
    ///
    /// # Panics
    /// Panics unless `width == 2 * height` and the buffer length matches.
    pub fn from_raw(width: u32, height: u32, pixels: Vec<u8>) -> Panorama {
        assert_eq!(width, height * 2, "equirect panoramas are 2:1");
        assert_eq!(
            pixels.len(),
            (width * height) as usize,
            "pixel buffer length mismatch"
        );
        Panorama {
            width,
            height,
            pixels,
        }
    }

    /// Width in pixels.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Height in pixels.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Raw bytes (row-major) — the content the descriptor hash is taken of.
    pub fn bytes(&self) -> &[u8] {
        &self.pixels
    }

    /// Size on the wire.
    pub fn byte_size(&self) -> u64 {
        self.pixels.len() as u64
    }

    fn sample(&self, azim: f64, elev: f64) -> u8 {
        // Wrap azimuth, clamp elevation.
        let tau = std::f64::consts::TAU;
        let a = azim.rem_euclid(tau);
        let e = elev.clamp(0.0, std::f64::consts::PI - 1e-9);
        let x = (a / tau * self.width as f64) as u32 % self.width;
        let y = ((e / std::f64::consts::PI) * self.height as f64) as u32;
        let y = y.min(self.height - 1);
        self.pixels[(y * self.width + x) as usize]
    }

    /// Crop the viewport a user looking along (`yaw`, `pitch`) with the
    /// given horizontal field of view sees, as a `out_w × out_h` image
    /// (returned as raw bytes, row-major). This is the client-side step of
    /// the paper's panoramic VR pipeline.
    ///
    /// `yaw` is radians clockwise from the panorama seam; `pitch` is
    /// radians above the horizon; `fov` is the horizontal field of view.
    pub fn crop_viewport(&self, yaw: f64, pitch: f64, fov: f64, out_w: u32, out_h: u32) -> Vec<u8> {
        assert!(
            out_w > 0 && out_h > 0,
            "viewport dimensions must be positive"
        );
        assert!(fov > 0.0 && fov < std::f64::consts::PI, "fov out of range");
        let mut out = Vec::with_capacity((out_w * out_h) as usize);
        // Pinhole viewport on the unit sphere.
        let half_w = (fov / 2.0).tan();
        let half_h = half_w * out_h as f64 / out_w as f64;
        let (sy, cy) = yaw.sin_cos();
        let (sp, cp) = pitch.sin_cos();
        // Camera basis: forward, right, up.
        let fwd = [cp * cy, sp, cp * sy];
        let right = [-sy, 0.0, cy];
        let up = [
            fwd[1] * right[2] - fwd[2] * right[1],
            fwd[2] * right[0] - fwd[0] * right[2],
            fwd[0] * right[1] - fwd[1] * right[0],
        ];
        for py in 0..out_h {
            let v = (0.5 - (py as f64 + 0.5) / out_h as f64) * 2.0 * half_h;
            for px in 0..out_w {
                let u = ((px as f64 + 0.5) / out_w as f64 - 0.5) * 2.0 * half_w;
                let dir = [
                    fwd[0] + right[0] * u + up[0] * v,
                    fwd[1] + right[1] * u + up[1] * v,
                    fwd[2] + right[2] * u + up[2] * v,
                ];
                let len = (dir[0] * dir[0] + dir[1] * dir[1] + dir[2] * dir[2]).sqrt();
                let d = [dir[0] / len, dir[1] / len, dir[2] / len];
                let azim = d[2].atan2(d[0]);
                let elev = std::f64::consts::FRAC_PI_2 - d[1].asin();
                out.push(self.sample(azim, elev));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthesis_is_deterministic() {
        assert_eq!(Panorama::synthesize(1, 64), Panorama::synthesize(1, 64));
        assert_ne!(
            Panorama::synthesize(1, 64).bytes(),
            Panorama::synthesize(2, 64).bytes()
        );
    }

    #[test]
    fn from_raw_validates_shape() {
        let p = Panorama::from_raw(16, 8, vec![7; 128]);
        assert_eq!(p.byte_size(), 128);
        assert_eq!(p.bytes()[0], 7);
    }

    #[test]
    #[should_panic(expected = "2:1")]
    fn from_raw_rejects_bad_aspect() {
        let _ = Panorama::from_raw(16, 16, vec![0; 256]);
    }

    #[test]
    fn equirect_aspect() {
        let p = Panorama::synthesize(0, 64);
        assert_eq!(p.width(), 128);
        assert_eq!(p.height(), 64);
        assert_eq!(p.byte_size(), 128 * 64);
    }

    #[test]
    fn seam_is_continuous() {
        // Azimuthal frequencies are integers, so column 0 and the last
        // column must be near-identical.
        let p = Panorama::synthesize(5, 128);
        let mut max_diff = 0i32;
        for y in 0..p.height() {
            let a = p.bytes()[(y * p.width()) as usize] as i32;
            let b = p.bytes()[(y * p.width() + p.width() - 1) as usize] as i32;
            max_diff = max_diff.max((a - b).abs());
        }
        assert!(max_diff <= 6, "seam discontinuity {max_diff}");
    }

    #[test]
    fn viewport_changes_with_yaw() {
        let p = Panorama::synthesize(9, 128);
        let front = p.crop_viewport(0.0, 0.0, 1.2, 32, 32);
        let back = p.crop_viewport(std::f64::consts::PI, 0.0, 1.2, 32, 32);
        assert_eq!(front.len(), 32 * 32);
        assert_ne!(front, back);
    }

    #[test]
    fn nearby_viewports_overlap() {
        let p = Panorama::synthesize(9, 128);
        let a = p.crop_viewport(0.50, 0.0, 1.2, 32, 32);
        let b = p.crop_viewport(0.55, 0.0, 1.2, 32, 32);
        let mean_diff: f64 = a
            .iter()
            .zip(&b)
            .map(|(&x, &y)| (x as f64 - y as f64).abs())
            .sum::<f64>()
            / a.len() as f64;
        assert!(
            mean_diff < 12.0,
            "nearby views differ too much: {mean_diff}"
        );
    }

    #[test]
    fn zenith_crop_does_not_panic() {
        let p = Panorama::synthesize(2, 64);
        let top = p.crop_viewport(0.3, std::f64::consts::FRAC_PI_2 - 0.01, 1.0, 16, 16);
        assert_eq!(top.len(), 256);
    }

    #[test]
    #[should_panic(expected = "fov out of range")]
    fn silly_fov_rejected() {
        let p = Panorama::synthesize(2, 64);
        let _ = p.crop_viewport(0.0, 0.0, 4.0, 8, 8);
    }
}

//! Readiness polling behind a small in-tree abstraction.
//!
//! The event-loop driver ([`crate::netrun::evloop`]) never blocks on a
//! single socket; it asks a [`Poller`] which registered connections are
//! ready and services exactly those. The trait is shaped like the epoll
//! API (register/deregister under a `Token`, level-triggered readiness
//! reported per interest) so an OS-backed implementation can slot in
//! unchanged, but the workspace is `#![forbid(unsafe_code)]` with no FFI
//! dependency, so the shipped backend is [`ScanPoller`]: a portable,
//! shim-friendly scanner that probes readability with a nonblocking
//! 1-byte [`TcpStream::peek`] and treats write interest optimistically
//! (the driver attempts the write and re-queues on `WouldBlock`). That
//! keeps offline CI runnable on any platform while preserving the exact
//! driver-facing contract an epoll backend would provide.
//!
//! [`ScanPoller::wait`] parks on a [`PollWaker`] between scan rounds, so
//! worker threads finishing a job can cut the wait short — completions
//! reach the write path in microseconds instead of a full park slice.

use std::collections::HashMap;
use std::io;
use std::net::TcpStream;
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Identifies one registered connection across poller calls.
pub type Token = u64;

/// Which readiness a registration cares about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Report the connection when bytes (or EOF) can be read.
    pub readable: bool,
    /// Report the connection when queued output should be flushed.
    pub writable: bool,
}

impl Interest {
    /// Read-only interest — the steady state of an idle connection.
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };

    /// No interest at all (connection paused by backpressure).
    pub const NONE: Interest = Interest {
        readable: false,
        writable: false,
    };
}

/// One readiness report from [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Readiness {
    /// The registration this event belongs to.
    pub token: Token,
    /// Bytes are available (or the peer hung up — see `hangup`).
    pub readable: bool,
    /// The connection should attempt to flush queued output.
    pub writable: bool,
    /// The peer closed its half of the connection.
    pub hangup: bool,
}

/// Cross-thread wakeup for a parked [`Poller::wait`].
#[derive(Default)]
pub struct PollWaker {
    flag: Mutex<bool>,
    cv: Condvar,
}

impl PollWaker {
    /// Wake the poller if it is parked (and make the next park return
    /// immediately if not).
    pub fn wake(&self) {
        *self.flag.lock().unwrap_or_else(PoisonError::into_inner) = true;
        self.cv.notify_all();
    }

    /// Park for at most `timeout`, returning early if woken. Consumes the
    /// pending-wake flag.
    fn park(&self, timeout: Duration) -> bool {
        let g = self.flag.lock().unwrap_or_else(PoisonError::into_inner);
        let (mut g, _) = self
            .cv
            .wait_timeout_while(g, timeout, |woken| !*woken)
            .unwrap_or_else(PoisonError::into_inner);
        std::mem::take(&mut *g)
    }

    fn consume(&self) -> bool {
        std::mem::take(&mut *self.flag.lock().unwrap_or_else(PoisonError::into_inner))
    }
}

/// Readiness source for the event-loop driver.
pub trait Poller: Send {
    /// Track `stream` under `token`. The stream is switched to
    /// nonblocking mode — every subsequent read/write on it must handle
    /// `WouldBlock`.
    fn register(&mut self, token: Token, stream: &TcpStream, interest: Interest) -> io::Result<()>;

    /// Change which readiness `token` is reported for. Unknown tokens are
    /// ignored (the connection may have been shed concurrently).
    fn set_interest(&mut self, token: Token, interest: Interest);

    /// Stop tracking `token`.
    fn deregister(&mut self, token: Token);

    /// Collect readiness into `events` (cleared first), blocking up to
    /// `timeout` when nothing is ready. Returns early — possibly with an
    /// empty set — when the [`PollWaker`] fires.
    fn wait(&mut self, events: &mut Vec<Readiness>, timeout: Duration) -> io::Result<()>;

    /// Handle other threads use to cut a parked [`Poller::wait`] short.
    fn waker(&self) -> Arc<PollWaker>;
}

/// Granularity of one scan round: how long [`ScanPoller::wait`] parks
/// between probes when nothing is ready and nobody wakes it.
const PARK_SLICE: Duration = Duration::from_micros(500);

/// Portable scanning poller (see module docs for the design rationale).
pub struct ScanPoller {
    slots: HashMap<Token, (TcpStream, Interest)>,
    waker: Arc<PollWaker>,
}

impl ScanPoller {
    /// A poller tracking no connections.
    pub fn new() -> ScanPoller {
        ScanPoller {
            slots: HashMap::new(),
            waker: Arc::new(PollWaker::default()),
        }
    }

    fn scan(&self, events: &mut Vec<Readiness>) {
        for (&token, (stream, interest)) in &self.slots {
            let mut readable = false;
            let mut hangup = false;
            if interest.readable {
                let mut probe = [0u8; 1];
                match stream.peek(&mut probe) {
                    Ok(0) => {
                        readable = true;
                        hangup = true;
                    }
                    Ok(_) => readable = true,
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {}
                    Err(_) => {
                        readable = true;
                        hangup = true;
                    }
                }
            }
            // Write readiness is optimistic: the driver's flush handles
            // WouldBlock by leaving the tail queued, so reporting a
            // write-interested connection every round only bounds the
            // retry cadence at one attempt per scan.
            let writable = interest.writable;
            if readable || writable {
                events.push(Readiness {
                    token,
                    readable,
                    writable,
                    hangup,
                });
            }
        }
    }
}

impl Default for ScanPoller {
    fn default() -> ScanPoller {
        ScanPoller::new()
    }
}

impl Poller for ScanPoller {
    fn register(&mut self, token: Token, stream: &TcpStream, interest: Interest) -> io::Result<()> {
        stream.set_nonblocking(true)?;
        let clone = stream.try_clone()?;
        self.slots.insert(token, (clone, interest));
        Ok(())
    }

    fn set_interest(&mut self, token: Token, interest: Interest) {
        if let Some(slot) = self.slots.get_mut(&token) {
            slot.1 = interest;
        }
    }

    fn deregister(&mut self, token: Token) {
        self.slots.remove(&token);
    }

    fn wait(&mut self, events: &mut Vec<Readiness>, timeout: Duration) -> io::Result<()> {
        events.clear();
        let deadline = Instant::now() + timeout;
        loop {
            self.scan(events);
            if !events.is_empty() || self.waker.consume() {
                return Ok(());
            }
            let now = Instant::now();
            if now >= deadline {
                return Ok(());
            }
            let park = PARK_SLICE.min(deadline - now);
            if self.waker.park(park) {
                return Ok(());
            }
        }
    }

    fn waker(&self) -> Arc<PollWaker> {
        self.waker.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::TcpListener;

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let a = TcpStream::connect(addr).unwrap();
        let (b, _) = listener.accept().unwrap();
        (a, b)
    }

    #[test]
    fn scan_poller_reports_readable_only_when_bytes_arrive() {
        let (mut a, b) = pair();
        let mut poller = ScanPoller::new();
        poller.register(7, &b, Interest::READ).unwrap();
        let mut events = Vec::new();
        poller.wait(&mut events, Duration::from_millis(5)).unwrap();
        assert!(events.is_empty(), "idle socket must not report readable");
        a.write_all(b"x").unwrap();
        poller.wait(&mut events, Duration::from_secs(2)).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable && !events[0].hangup);
    }

    #[test]
    fn scan_poller_reports_hangup_on_peer_close() {
        let (a, b) = pair();
        let mut poller = ScanPoller::new();
        poller.register(1, &b, Interest::READ).unwrap();
        drop(a);
        let mut events = Vec::new();
        poller.wait(&mut events, Duration::from_secs(2)).unwrap();
        assert_eq!(events.len(), 1);
        assert!(events[0].hangup);
    }

    #[test]
    fn waker_cuts_wait_short_and_interest_none_silences_a_ready_socket() {
        let (mut a, b) = pair();
        a.write_all(b"pending").unwrap();
        let mut poller = ScanPoller::new();
        poller.register(3, &b, Interest::NONE).unwrap();
        let waker = poller.waker();
        waker.wake();
        let mut events = Vec::new();
        let start = Instant::now();
        poller.wait(&mut events, Duration::from_secs(10)).unwrap();
        assert!(events.is_empty(), "paused connection must stay silent");
        assert!(
            start.elapsed() < Duration::from_secs(2),
            "waker must cut the park short"
        );
    }
}

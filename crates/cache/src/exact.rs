//! Exact-match result cache keyed by content digest.
//!
//! This is CoIC's lookup structure for 3D-model and panorama tasks: "For 3D
//! object rendering and VR video streaming tasks, CoIC uses the hash value
//! of the required 3D model or panoramic frames as the feature descriptor."

use crate::admission::TinyLfuConfig;
use crate::digest::Digest;
use crate::policy::PolicyKind;
use crate::stats::CacheStats;
use crate::store::Store;

/// A digest-keyed cache of task results.
///
/// # Examples
/// ```
/// use coic_cache::{Digest, ExactCache, PolicyKind};
///
/// let mut cache: ExactCache<&str> = ExactCache::new(1024, PolicyKind::Lru, None);
/// let key = Digest::of(b"panorama frame 7");
/// cache.insert(key, "frame bytes", 100, 0);
/// assert_eq!(cache.lookup(&key, 1), Some(&"frame bytes"));
/// assert_eq!(cache.lookup(&Digest::of(b"other"), 1), None);
/// ```
pub struct ExactCache<V> {
    store: Store<Digest, V>,
}

impl<V> ExactCache<V> {
    /// Create a cache with `capacity_bytes` and the given policy; `ttl_ns`
    /// optionally expires entries.
    pub fn new(capacity_bytes: u64, policy: PolicyKind, ttl_ns: Option<u64>) -> Self {
        ExactCache {
            store: Store::new(capacity_bytes, policy, ttl_ns),
        }
    }

    /// Enable TinyLFU admission on the underlying store.
    pub fn with_admission(self, cfg: TinyLfuConfig) -> Self {
        ExactCache {
            store: self.store.with_admission(cfg),
        }
    }

    /// Look a digest up at virtual time `now_ns`.
    pub fn lookup(&mut self, key: &Digest, now_ns: u64) -> Option<&V> {
        self.store.get(key, now_ns)
    }

    /// Presence check without stats/recency side effects.
    pub fn peek(&self, key: &Digest) -> Option<&V> {
        self.store.peek(key)
    }

    /// TTL-aware read-only lookup: no stats, no recency, no removal (the
    /// shared-reference read path of [`crate::sharded::ShardedExactCache`]).
    pub fn peek_valid(&self, key: &Digest, now_ns: u64) -> Option<&V> {
        self.store.peek_valid(key, now_ns)
    }

    /// Replay a read-path hit's recency effect; returns `false` when the
    /// key is gone (see [`crate::store::Store::touch`]).
    pub fn touch(&mut self, key: &Digest, now_ns: u64) -> bool {
        self.store.touch(key, now_ns)
    }

    /// Insert a result of `size` bytes; returns evicted values.
    pub fn insert(&mut self, key: Digest, value: V, size: u64, now_ns: u64) -> Vec<(Digest, V)> {
        self.store.insert(key, value, size, now_ns)
    }

    /// Remove a digest.
    pub fn remove(&mut self, key: &Digest) -> Option<V> {
        self.store.remove(key)
    }

    /// Counters.
    pub fn stats(&self) -> &CacheStats {
        self.store.stats()
    }

    /// Number of cached results.
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }

    /// Bytes in use.
    pub fn used_bytes(&self) -> u64 {
        self.store.used_bytes()
    }

    /// Capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.store.capacity_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_keyed_roundtrip() {
        let mut c: ExactCache<String> = ExactCache::new(1024, PolicyKind::Lru, None);
        let model = b"some 3d model bytes";
        let key = Digest::of(model);
        c.insert(key, "loaded".into(), 100, 0);
        assert_eq!(c.lookup(&key, 0), Some(&"loaded".to_string()));
        assert_eq!(c.lookup(&Digest::of(b"other"), 0), None);
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn same_content_same_key_across_instances() {
        // Two nodes hashing the same model must agree on the cache key.
        let a = Digest::of(b"panorama frame 7");
        let b = Digest::of(b"panorama frame 7");
        assert_eq!(a, b);
    }

    #[test]
    fn eviction_respects_capacity() {
        let mut c: ExactCache<u32> = ExactCache::new(100, PolicyKind::Lru, None);
        for i in 0..20u32 {
            c.insert(Digest::of(&i.to_le_bytes()), i, 30, 0);
        }
        assert!(c.used_bytes() <= 100);
        assert!(c.len() <= 3);
        assert!(c.stats().evictions >= 17);
    }
}

//! **Ext J** — descriptor-design ablation.
//!
//! The paper uses "the feature vector generated from the input image" as
//! the recognition descriptor without committing to a particular feature
//! family. This ablation compares three extractors behind one cache:
//!
//! * **simnet** — the learned-embedding stand-in (viewpoint-robust),
//! * **hog**    — classical gradient histograms (contrast-robust but
//!   orientation-sensitive),
//! * **pool**   — raw contrast-normalized intensity pooling (cheapest).
//!
//! For each, the threshold is swept to its best operating point and the
//! resulting hit-ratio/accuracy frontier is reported.
//!
//! Run with: `cargo run --release -p coic-bench --bin ext_descriptor`

use coic_cache::{ApproxCache, ApproxLookup, IndexKind, PolicyKind};
use coic_core::RecognitionResult;
use coic_vision::{
    Extractor, HogExtractor, ObjectClass, PoolExtractor, PrototypeClassifier, SceneGenerator,
    SimNet, ViewParams,
};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn main() {
    let gen = SceneGenerator::new(64);
    let net = SimNet::default_net();
    let classes: Vec<_> = (0..16).map(ObjectClass).collect();
    let mut rng = StdRng::seed_from_u64(29);
    let clf = PrototypeClassifier::train(&net, &gen, &classes, 5, 0.08, 4.0, &mut rng);

    // One shared observation stream (Zipf-skewed classes, jittered views).
    let observations: Vec<_> = (0..400)
        .map(|_| {
            let rank = (rng.random::<f64>().powi(2) * classes.len() as f64) as usize;
            let c = classes[rank.min(classes.len() - 1)];
            let v = ViewParams::jittered(&mut rng, 0.08, 4.0);
            (c, gen.observe(c, &v, &mut rng))
        })
        .collect();

    let extractors: Vec<Box<dyn Extractor>> = vec![
        Box::new(SimNet::default_net()),
        Box::new(HogExtractor::default()),
        Box::new(PoolExtractor::default()),
    ];

    println!("Ext J — descriptor ablation (400 observations, 16 objects)\n");
    println!(
        "{:>7} {:>9} | {:>6} {:>6} {:>9} | {:>7} {:>7}",
        "descr", "threshold", "dim", "hit%", "accuracy", "kMACs", "bytes"
    );
    coic_bench::rule(66);
    for e in &extractors {
        // Sweep thresholds; report the best point by (accuracy ≥ 90%) hit
        // ratio, falling back to max accuracy if none qualifies.
        let mut best: Option<(f32, f64, f64)> = None;
        for t in [0.15f32, 0.25, 0.35, 0.45, 0.55, 0.70, 0.85] {
            let mut cache: ApproxCache<RecognitionResult> =
                ApproxCache::new(256 << 20, PolicyKind::Lru, t, IndexKind::Linear, e.dim());
            let mut correct = 0u64;
            for (i, (truth, img)) in observations.iter().enumerate() {
                let d = e.extract(img);
                let label = match cache.lookup(&d, i as u64) {
                    ApproxLookup::Hit { id, .. } => cache.value(id).unwrap().label,
                    ApproxLookup::Miss { .. } => {
                        let (label, distance) = clf.predict(&net.extract(img));
                        cache.insert(
                            d,
                            RecognitionResult {
                                label: label.0,
                                distance,
                            },
                            20_000,
                            i as u64,
                        );
                        label.0
                    }
                };
                if label == truth.0 {
                    correct += 1;
                }
            }
            let hit = cache.stats().hit_ratio();
            let acc = correct as f64 / observations.len() as f64;
            let better = match best {
                None => true,
                Some((_, bh, ba)) => {
                    if acc >= 0.90 && ba >= 0.90 {
                        hit > bh
                    } else {
                        acc > ba
                    }
                }
            };
            if better {
                best = Some((t, hit, acc));
            }
        }
        let (t, hit, acc) = best.expect("swept at least one threshold");
        let sample = &observations[0].1;
        println!(
            "{:>7} {:>9.2} | {:>6} {:>5.1}% {:>8.1}% | {:>7} {:>7}",
            e.name(),
            t,
            e.dim(),
            hit * 100.0,
            acc * 100.0,
            e.macs(sample) / 1_000,
            e.dim() * 4 + 16,
        );
    }
    coic_bench::rule(66);
    println!("best threshold per extractor (max hit ratio at ≥90% accuracy)");
    println!("\nViewpoint robustness is what earns hits: rotation scatters HOG");
    println!("descriptors (few hits even at loose thresholds), while the pooled");
    println!("and learned descriptors ride it out. On these smooth synthetic");
    println!("scenes cheap pooling is competitive with the learned embedding —");
    println!("textured real imagery is where projection layers earn their keep.");
}

//! Minimal in-tree replacement for the `rand` crate (see shims/README.md).
//!
//! Implements the subset the workspace uses: the [`Rng`] core trait, the
//! [`RngExt`] extension trait (`random`, `random_range`, `random_bool`),
//! [`SeedableRng::seed_from_u64`], and [`rngs::StdRng`] backed by
//! xoshiro256++ seeded through SplitMix64. Deterministic for a fixed seed
//! on every platform.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Core random source: everything derives from `next_u64`.
pub trait Rng {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits (upper half of `next_u64`).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for c in &mut chunks {
            c.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let b = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&b[..rem.len()]);
        }
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types producible uniformly by [`RngExt::random`].
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for i128 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        u128::sample(rng) as i128
    }
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges usable with [`RngExt::random_range`].
pub trait SampleRange {
    /// The element type sampled from the range.
    type Output;
    /// Draw one value; panics on an empty range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let width = (self.end - self.start) as u128;
                self.start + (u128::sample(rng) % width) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in random_range");
                let width = (hi - lo) as u128 + 1;
                if width == 0 {
                    // Full u128 range: any value works.
                    return u128::sample(rng) as $t;
                }
                lo + (u128::sample(rng) % width) as $t
            }
        }
    )*};
}
impl_range_uint!(u8, u16, u32, u64, usize, u128);

macro_rules! impl_range_sint {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let width = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (u128::sample(rng) % width) as i128) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in random_range");
                let width = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (u128::sample(rng) % width) as i128) as $t
            }
        }
    )*};
}
impl_range_sint!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                self.start + <$t as Standard>::sample(rng) * (self.end - self.start)
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in random_range");
                lo + <$t as Standard>::sample(rng) * (hi - lo)
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// Convenience methods over any [`Rng`] (blanket-implemented).
pub trait RngExt: Rng {
    /// Uniform value of `T` (full range for integers, `[0,1)` for floats).
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform value in `range`; panics on an empty range.
    fn random_range<Rg: SampleRange>(&mut self, range: Rg) -> Rg::Output {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0,1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }

    /// Fill a slice with uniform values.
    fn fill<T: Standard>(&mut self, dest: &mut [T]) {
        for x in dest {
            *x = T::sample(self);
        }
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Construction of a deterministic generator from a seed.
pub trait SeedableRng: Sized {
    /// Expand a 64-bit seed into full generator state.
    fn seed_from_u64(seed: u64) -> Self;

    /// Derive a fresh generator from another one.
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        Self::seed_from_u64(rng.next_u64())
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ (Blackman/Vigna),
    /// seeded via SplitMix64. Not cryptographic; fast, high-quality, and
    /// identical on every platform for a fixed seed.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // All-zero state would be a fixed point; SplitMix64 cannot
            // produce four zeros from any seed, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x1;
            }
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.random::<u64>()).collect::<Vec<_>>(),
            (0..8).map(|_| b.random::<u64>()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.random_range(3u64..17);
            assert!((3..17).contains(&x));
            let y = rng.random_range(-2.0f64..=2.0);
            assert!((-2.0..=2.0).contains(&y));
            let z = rng.random_range(0usize..=5);
            assert!(z <= 5);
            let f = rng.random::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn mean_is_roughly_half() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.random::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn u128_ranges_work() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let x = rng.random_range(0u128..=1_000_000);
            assert!(x <= 1_000_000);
        }
    }
}

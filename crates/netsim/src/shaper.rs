//! Token-bucket traffic shaper.
//!
//! Mirrors the semantics of `tc qdisc ... tbf rate R burst B`: a bucket of
//! `burst_bytes` tokens refills at `rate_bps`; a message may leave as soon
//! as the bucket holds enough tokens for it. The paper shapes its WiFi and
//! edge-cloud links with `tc`, so experiments that want shaping *in front
//! of* a link compose a [`Shaper`] with a [`crate::link::Link`].

use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Deterministic token-bucket shaper.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Shaper {
    rate_bps: u64,
    burst_bytes: u64,
    /// Tokens available at `updated`, in bytes.
    tokens: f64,
    updated: SimTime,
}

impl Shaper {
    /// Create a shaper with the given sustained rate and burst allowance.
    ///
    /// # Panics
    /// Panics if either parameter is zero.
    pub fn new(rate_bps: u64, burst_bytes: u64) -> Self {
        assert!(rate_bps > 0, "shaper rate must be positive");
        assert!(burst_bytes > 0, "shaper burst must be positive");
        Shaper {
            rate_bps,
            burst_bytes,
            tokens: burst_bytes as f64,
            updated: SimTime::ZERO,
        }
    }

    /// Sustained rate in bits per second.
    pub fn rate_bps(&self) -> u64 {
        self.rate_bps
    }

    /// Burst allowance in bytes.
    pub fn burst_bytes(&self) -> u64 {
        self.burst_bytes
    }

    fn refill(&mut self, now: SimTime) {
        if now <= self.updated {
            return;
        }
        let dt = (now - self.updated).as_secs_f64();
        self.tokens = (self.tokens + dt * self.rate_bps as f64 / 8.0).min(self.burst_bytes as f64);
        self.updated = now;
    }

    /// Earliest time at or after `now` when a message of `bytes` may be
    /// released, consuming its tokens. Messages larger than the burst are
    /// admitted once the bucket is full (tc would require `burst >= mtu`;
    /// we release oversized messages at full-bucket time and let the bucket
    /// go negative, which models tbf's `peakrate`-free behaviour closely
    /// enough for experiment purposes).
    pub fn release_at(&mut self, now: SimTime, bytes: u64) -> SimTime {
        // Earlier releases may have committed tokens into the future; the
        // shaper's own clock never runs backwards.
        let now = now.max(self.updated);
        self.refill(now);
        let need = bytes as f64;
        let have = self.tokens;
        let target = need.min(self.burst_bytes as f64);
        if have >= target {
            self.tokens -= need;
            return now;
        }
        let deficit = target - have;
        let wait = SimDuration::from_secs_f64(deficit * 8.0 / self.rate_bps as f64);
        let at = now + wait;
        self.refill(at);
        self.tokens -= need;
        at
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_passes_immediately() {
        let mut s = Shaper::new(8_000_000, 10_000); // 1 MB/s, 10 kB burst
        assert_eq!(s.release_at(SimTime::ZERO, 10_000), SimTime::ZERO);
    }

    #[test]
    fn sustained_rate_enforced() {
        let mut s = Shaper::new(8_000_000, 1_000); // 1 MB/s, 1 kB burst
        let mut t = SimTime::ZERO;
        // Send 1 kB messages back to back: after the burst, each must wait
        // 1 ms (1 kB at 1 MB/s).
        t = s.release_at(t, 1_000);
        assert_eq!(t, SimTime::ZERO);
        t = s.release_at(t, 1_000);
        assert_eq!(t, SimTime::from_millis(1));
        t = s.release_at(t, 1_000);
        assert_eq!(t, SimTime::from_millis(2));
    }

    #[test]
    fn idle_time_refills_bucket() {
        let mut s = Shaper::new(8_000_000, 2_000);
        let _ = s.release_at(SimTime::ZERO, 2_000); // drain burst
                                                    // After 2 ms the bucket holds 2 kB again.
        let t = s.release_at(SimTime::from_millis(2), 2_000);
        assert_eq!(t, SimTime::from_millis(2));
    }

    #[test]
    fn oversized_message_released_at_full_bucket() {
        let mut s = Shaper::new(8_000_000, 1_000);
        let _ = s.release_at(SimTime::ZERO, 1_000); // empty the bucket
                                                    // 5 kB > burst: released when the bucket is full again (1 ms).
        let t = s.release_at(SimTime::ZERO, 5_000);
        assert_eq!(t, SimTime::from_millis(1));
        // The bucket went negative; the next small message waits for the
        // deficit plus its own tokens: 5 kB deficit -> 5 ms, minus the 1 ms
        // already elapsed at release time, plus 0 (bucket only needs to
        // reach the message size target capped at burst).
        let t2 = s.release_at(t, 1_000);
        assert!(t2 > t);
    }

    #[test]
    fn shaper_composes_with_link() {
        use crate::link::{Link, LinkParams, TxOutcome};
        use rand::{rngs::StdRng, SeedableRng};
        // tc-style stack: a 1 MB/s token bucket in front of a fast link.
        // The shaper gates *when* a message may start; the link then adds
        // serialization + propagation.
        let mut shaper = Shaper::new(8_000_000, 10_000);
        let mut link = Link::new(LinkParams::mbps_ms(80.0, 5));
        let mut rng = StdRng::seed_from_u64(0);
        let mut deliveries = Vec::new();
        for _ in 0..5 {
            let release = shaper.release_at(SimTime::ZERO, 10_000);
            match link.transmit(release, 10_000, &mut rng) {
                TxOutcome::Delivered(t) => deliveries.push(t),
                other => panic!("unexpected {other:?}"),
            }
        }
        // First message rides the burst; each later one waits 10 ms for
        // tokens (10 kB at 1 MB/s), then 1 ms serialization + 5 ms prop.
        assert_eq!(deliveries[0], SimTime::from_millis(6));
        assert_eq!(deliveries[1], SimTime::from_millis(16));
        assert_eq!(deliveries[4], SimTime::from_millis(46));
        // Deliveries are strictly ordered.
        assert!(deliveries.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn long_run_average_respects_rate() {
        let mut s = Shaper::new(80_000_000, 10_000); // 10 MB/s
        let mut t = SimTime::ZERO;
        let msg = 5_000u64;
        let n = 2_000u64;
        for _ in 0..n {
            t = s.release_at(t, msg);
        }
        let total_bytes = msg * n;
        let expect_secs = total_bytes as f64 / 10_000_000.0;
        let got_secs = t.as_secs_f64();
        // The burst lets the first 10 kB through for free; everything else
        // must fit the sustained rate within 1%.
        assert!(
            (got_secs - expect_secs).abs() / expect_secs < 0.01,
            "expected ~{expect_secs}s, got {got_secs}s"
        );
    }
}

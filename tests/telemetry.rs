//! Unified-telemetry integration tests.
//!
//! Two properties the obs redesign promises:
//!
//! 1. **Byte-reproducibility** — two instrumented runs of the same seeded
//!    workload emit byte-identical JSONL traces and canonical metrics
//!    snapshots (timestamps are virtual, storage is ordered, nothing
//!    reads a wall clock).
//! 2. **Facade fidelity** — every legacy stats struct (`QoeReport`'s
//!    counter view, `CacheStats`/`TouchStats` via `cache::Metrics`,
//!    `RobustnessSnapshot`, `SimStats`) is derivable from the registry a
//!    run publishes into, on a workload that mixes exact hits, approx
//!    hits, misses, and injected faults.

use coic::core::simrun::{run_instrumented, Mode, SimConfig};
use coic::core::{FaultSchedule, QoeReport, RetryPolicy, RobustnessSnapshot};
use coic::netsim::SimStats;
use coic::obs::Telemetry;
use coic::workload::{Request, RequestKind, UserId, ZoneId};
use std::time::Duration;

/// Two users mixing the exact path (panorama frames, with repeats for
/// hits), the approximate path (recognition, with a nearby viewpoint),
/// and one request whose edge leg is killed by the fault schedule.
fn mixed_trace() -> Vec<Request> {
    let mut at_ns = 0u64;
    let mut push = |trace: &mut Vec<Request>, user: u32, kind: RequestKind| {
        at_ns += 1_000_000;
        trace.push(Request {
            user: UserId(user),
            zone: ZoneId(0),
            at_ns,
            kind,
        });
    };
    let mut trace = Vec::new();
    // Distinct frames per user: each repeat is an exact edge hit, and no
    // cross-client single-flight coalescing hides it as a cloud miss.
    for (user, frame_id) in [(0u32, 0u64), (1, 10), (0, 0), (1, 10)] {
        push(&mut trace, user, RequestKind::Panorama { frame_id });
    }
    // Same class, nearby viewpoint: the second lookup of each pair is an
    // approximate hit in the recognition cache.
    for (user, class, view_seed) in [(0u32, 1u32, 5u64), (1, 2, 7), (0, 1, 6), (1, 2, 8)] {
        push(
            &mut trace,
            user,
            RequestKind::Recognition { class, view_seed },
        );
    }
    // The faulted tail request (seq 4 for both clients).
    for (user, frame_id) in [(0u32, 2u64), (1, 12)] {
        push(&mut trace, user, RequestKind::Panorama { frame_id });
    }
    trace
}

fn config() -> SimConfig {
    SimConfig {
        mode: Mode::CoIc,
        num_clients: 2,
        retry: Some(RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(5),
            jitter_frac: 0.3,
            seed: 7,
        }),
        origin_fallback: true,
        request_timeout_ms: 200,
        // Every edge attempt of each client's last request fails, so the
        // trace contains retries, a degrade, and an origin completion —
        // after the hit-path requests have already run.
        faults: FaultSchedule::new().drop_edge_request(4),
        seed: 7,
        ..SimConfig::default()
    }
}

#[test]
fn instrumented_sim_exports_are_byte_identical() {
    let trace = mixed_trace();
    let cfg = config();
    let run = || {
        let tel = Telemetry::new();
        let (mut report, _) = run_instrumented(&trace, &cfg, &tel);
        (
            tel.trace_jsonl(),
            tel.metrics_canonical(),
            report.canonical(),
        )
    };
    let (trace_a, metrics_a, report_a) = run();
    let (trace_b, metrics_b, report_b) = run();
    assert_eq!(trace_a, trace_b, "JSONL traces must be byte-identical");
    assert_eq!(metrics_a, metrics_b, "snapshots must be byte-identical");
    assert_eq!(report_a, report_b, "canonical reports must agree");
    // The trace actually covers the lifecycle this workload exercises.
    for needle in [
        "\"n\":\"request\"",
        "\"n\":\"edge.lookup\"",
        "\"n\":\"cloud.forward\"",
        "\"n\":\"decision.retry\"",
        "\"n\":\"decision.degrade\"",
        "\"n\":\"decision.complete\"",
        "\"kind\":\"exact\"",
        "\"kind\":\"approx\"",
        "\"kind\":\"miss\"",
    ] {
        assert!(trace_a.contains(needle), "trace lacks {needle}:\n{trace_a}");
    }
}

#[test]
fn legacy_stats_facades_are_derivable_from_the_registry() {
    let trace = mixed_trace();
    let cfg = config();
    let tel = Telemetry::new();
    let (report, _) = run_instrumented(&trace, &cfg, &tel);
    let reg = tel.registry();

    // QoeReport: the counter view rebuilt from `qoe.*` must agree with
    // the aggregate the run returned, field by field.
    let rebuilt = QoeReport::from_registry(reg);
    assert_eq!(rebuilt.completed, report.completed);
    assert_eq!(rebuilt.failed, report.failed);
    assert_eq!(rebuilt.edge_hits, report.edge_hits);
    assert_eq!(rebuilt.peer_hits, report.peer_hits);
    assert_eq!(rebuilt.cloud_trips, report.cloud_trips);
    assert_eq!(rebuilt.retries, report.retries);
    assert_eq!(rebuilt.retried_requests, report.retried_requests);
    assert_eq!(rebuilt.access_bytes, report.access_bytes);
    assert_eq!(rebuilt.wan_bytes, report.wan_bytes);
    assert_eq!(rebuilt.lan_bytes, report.lan_bytes);
    assert_eq!(rebuilt.accuracy, report.accuracy);
    assert!(report.completed > 0 && report.edge_hits > 0);
    assert!(report.retries > 0, "fault schedule must force retries");

    // Cache metrics: both caches were exercised (exact + approx paths),
    // and the legacy CacheStats facade is a projection of the registry
    // view. The sim edge's repeated frames/viewpoints guarantee hits.
    let exact = coic::cache::Metrics::from_registry(reg, "cache.exact");
    let recog = coic::cache::Metrics::from_registry(reg, "cache.recog");
    assert!(exact.hits > 0 && exact.misses > 0, "{exact:?}");
    assert!(recog.hits > 0 && recog.misses > 0, "{recog:?}");
    assert_eq!(exact.cache_stats().hits, reg.counter("cache.exact.hits"));
    assert_eq!(
        recog.cache_stats().misses,
        reg.counter("cache.recog.misses")
    );

    // Robustness: the snapshot summed over every client and edge comes
    // back out of `robustness.*`, and re-publishing it roundtrips.
    let snap = RobustnessSnapshot::from_registry(reg);
    assert!(snap.attempts >= report.completed as u64);
    assert_eq!(snap.retries, reg.counter("robustness.retries"));
    let fresh = coic::obs::MetricsRegistry::new();
    snap.publish(&fresh);
    assert_eq!(RobustnessSnapshot::from_registry(&fresh), snap);

    // Simulator transport counters land under `sim.*`.
    let sim = SimStats::from_registry(reg);
    assert!(sim.events > 0 && sim.delivered > 0, "{sim:?}");

    // The latency histogram holds one observation per completion.
    let hist = reg.histogram("qoe.latency_ns").expect("latency histogram");
    assert_eq!(hist.count(), report.completed as u64);
}

//! Readiness-driven event-loop driver for the live edge.
//!
//! One IO thread multiplexes every client connection:
//!
//! * **batched frame decode** — a readable socket is drained in one
//!   wakeup: all available bytes go into the connection's incremental
//!   [`FrameDecoder`], and every complete frame that falls out is
//!   dispatched in the same pass;
//! * **worker-pool dispatch** — the frame handler (cache lookup, upstream
//!   fetch, admission wait) blocks, so it runs on a bounded pool of
//!   worker threads, never on the IO thread. Replies come back tagged
//!   with their per-connection sequence number and are released strictly
//!   in request order, preserving the blocking driver's FIFO reply
//!   contract for pipelining clients;
//! * **write coalescing** — encoded replies queue per connection and a
//!   single writable event flushes as many as the socket accepts;
//! * **backpressure** — the chain the design doc calls
//!   poller→admission→brownout: when the dispatch queue is full (its
//!   bound is clamped to the admission queue when admission control is
//!   on) or a connection exceeds its in-flight cap, the loop *stops
//!   reading* from the affected sockets instead of buffering unboundedly;
//!   kernel buffers fill and TCP pushes back on the clients. A stalled
//!   *reader* is bounded on the other side: queued reply bytes past
//!   [`EvloopConfig::max_write_queue_bytes`] shed the connection
//!   (`loop.conn_shed`) rather than grow the heap.
//!
//! Every mechanism is counted in [`LoopStats`] (`loop.*` vocabulary) so
//! the load harness and the analyze rules can see the loop working.

use super::driver::{FrameHandler, IoDriver, LoopStats};
use super::poller::{Interest, PollWaker, Poller, Token};
use crate::config::EvloopConfig;
use bytes::Bytes;
use coic_netsim::rt::{encode_frame, FrameDecoder};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{Shutdown, TcpStream};
use std::sync::{Arc, Condvar, Mutex, PoisonError};

/// Read-side scratch buffer: one drain pass reads at most this much per
/// `read` call (the kernel rarely returns more in one go anyway).
const READ_CHUNK: usize = 64 * 1024;

/// One decoded request frame on its way to a worker.
struct Job {
    token: Token,
    seq: u64,
    frame: Bytes,
}

/// One finished handler invocation on its way back to the loop.
struct Done {
    token: Token,
    seq: u64,
    reply: Option<Vec<u8>>,
}

/// Worker-facing side of the dispatch queue.
struct WorkQueue {
    jobs: Mutex<(VecDeque<Job>, bool)>,
    ready: Condvar,
    done: Mutex<Vec<Done>>,
    waker: Arc<PollWaker>,
}

impl WorkQueue {
    fn new(waker: Arc<PollWaker>) -> Arc<WorkQueue> {
        Arc::new(WorkQueue {
            jobs: Mutex::new((VecDeque::new(), false)),
            ready: Condvar::new(),
            done: Mutex::new(Vec::new()),
            waker,
        })
    }

    fn push(&self, job: Job) {
        self.jobs
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .0
            .push_back(job);
        self.ready.notify_one();
    }

    fn depth(&self) -> usize {
        self.jobs
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .0
            .len()
    }

    fn stop(&self) {
        self.jobs.lock().unwrap_or_else(PoisonError::into_inner).1 = true;
        self.ready.notify_all();
    }

    /// Worker loop: pop jobs until stopped, run the handler, report back.
    fn work(self: &Arc<Self>, handler: &FrameHandler) {
        loop {
            let job = {
                let mut g = self.jobs.lock().unwrap_or_else(PoisonError::into_inner);
                loop {
                    if g.1 {
                        return;
                    }
                    if let Some(job) = g.0.pop_front() {
                        break job;
                    }
                    g = self.ready.wait(g).unwrap_or_else(PoisonError::into_inner);
                }
            };
            let reply = handler(job.frame);
            self.done
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push(Done {
                    token: job.token,
                    seq: job.seq,
                    reply,
                });
            // Cut the IO thread's park short so the reply flushes now.
            self.waker.wake();
        }
    }

    fn drain_done(&self, into: &mut Vec<Done>) {
        let mut g = self.done.lock().unwrap_or_else(PoisonError::into_inner);
        into.append(&mut g);
    }
}

/// Per-connection state machine.
struct Conn {
    stream: TcpStream,
    decoder: FrameDecoder,
    /// Sequence number the next decoded frame gets.
    next_seq: u64,
    /// Sequence number of the next reply owed to the wire.
    next_reply: u64,
    /// Out-of-order completions parked until their turn.
    done: BTreeMap<u64, Option<Vec<u8>>>,
    /// Dispatched-but-unreleased frames.
    inflight: usize,
    /// Encoded frames awaiting the socket, oldest first.
    out: VecDeque<Vec<u8>>,
    /// Total bytes across `out`.
    out_bytes: usize,
    /// Bytes of `out.front()` already written.
    written: usize,
    /// Reads paused by backpressure.
    paused: bool,
    /// Handler returned `None` (or the peer hung up): no more reads;
    /// close once every owed reply is out.
    closing: bool,
}

impl Conn {
    fn new(stream: TcpStream) -> Conn {
        Conn {
            stream,
            decoder: FrameDecoder::new(),
            next_seq: 0,
            next_reply: 0,
            done: BTreeMap::new(),
            inflight: 0,
            out: VecDeque::new(),
            out_bytes: 0,
            written: 0,
            paused: false,
            closing: false,
        }
    }

    fn interest(&self) -> Interest {
        Interest {
            readable: !self.paused && !self.closing,
            writable: !self.out.is_empty(),
        }
    }

    /// Drained and idle: nothing left to write, nothing owed.
    fn drained(&self) -> bool {
        self.out.is_empty() && self.inflight == 0 && self.done.is_empty()
    }
}

/// The readiness-driven [`IoDriver`]. See the module docs for the
/// architecture.
pub struct EventLoop {
    handler: FrameHandler,
    cfg: EvloopConfig,
    stats: Arc<LoopStats>,
    queue: Arc<WorkQueue>,
    conns: HashMap<Token, Conn>,
    next_token: Token,
    workers_spawned: bool,
}

impl EventLoop {
    /// A loop dispatching to `handler` under `cfg`, counting into
    /// `stats`, waking the runner through `waker`.
    pub fn new(
        handler: FrameHandler,
        cfg: EvloopConfig,
        stats: Arc<LoopStats>,
        waker: Arc<PollWaker>,
    ) -> EventLoop {
        EventLoop {
            handler,
            cfg,
            stats,
            queue: WorkQueue::new(waker),
            conns: HashMap::new(),
            next_token: 0,
            workers_spawned: false,
        }
    }

    fn spawn_workers(&mut self) {
        if self.workers_spawned {
            return;
        }
        self.workers_spawned = true;
        for i in 0..self.cfg.workers.max(1) {
            let queue = self.queue.clone();
            let handler = self.handler.clone();
            let _ = std::thread::Builder::new()
                .name(format!("coic-loop-worker-{i}"))
                .spawn(move || queue.work(&handler));
        }
    }

    fn close(&mut self, token: Token, poller: &mut dyn Poller) {
        if let Some(conn) = self.conns.remove(&token) {
            let _ = conn.stream.shutdown(Shutdown::Both);
        }
        poller.deregister(token);
    }

    fn shed(&mut self, token: Token, poller: &mut dyn Poller) {
        self.stats.count_conn_shed();
        self.close(token, poller);
    }

    fn sync_interest(&mut self, token: Token, poller: &mut dyn Poller) {
        if let Some(conn) = self.conns.get(&token) {
            poller.set_interest(token, conn.interest());
        }
    }

    /// Global read-side capacity: how many more frames may be dispatched
    /// before the loop must stop reading.
    fn dispatch_room(&self) -> usize {
        self.cfg
            .dispatch_depth
            .max(1)
            .saturating_sub(self.queue.depth())
    }

    /// Pull complete frames out of `token`'s decoder and dispatch them,
    /// pausing the connection when a backpressure bound is hit. Returns
    /// `false` when the connection died (decoder poisoned).
    fn pump_decoder(&mut self, token: Token) -> bool {
        let mut room = self.dispatch_room();
        let Some(conn) = self.conns.get_mut(&token) else {
            return false;
        };
        let mut dispatched = 0u64;
        loop {
            if conn.closing {
                break;
            }
            if conn.inflight >= self.cfg.per_conn_inflight.max(1) || room == 0 {
                if !conn.paused {
                    conn.paused = true;
                    self.stats.count_read_paused();
                }
                break;
            }
            match conn.decoder.next_frame() {
                Ok(Some(frame)) => {
                    let seq = conn.next_seq;
                    conn.next_seq += 1;
                    conn.inflight += 1;
                    dispatched += 1;
                    room -= 1;
                    self.queue.push(Job { token, seq, frame });
                }
                Ok(None) => break,
                // Oversized or corrupt: the stream is desynchronized;
                // drop the connection like the blocking path does.
                Err(_) => return false,
            }
        }
        if dispatched > 0 {
            self.stats.count_frames(dispatched);
        }
        true
    }

    /// Flush as much queued output as the socket accepts. Returns `false`
    /// when the connection died mid-write.
    fn flush(&mut self, token: Token) -> bool {
        let Some(conn) = self.conns.get_mut(&token) else {
            return true;
        };
        let mut flushed_frames = 0u64;
        while let Some(front) = conn.out.front() {
            // lint: allow(no-index-hot-path, written < front.len() — a completed front is popped immediately below, so the slice start never passes the end)
            match conn.stream.write(&front[conn.written..]) {
                Ok(0) => return false,
                Ok(n) => {
                    conn.written += n;
                    if conn.written == front.len() {
                        conn.out_bytes -= front.len();
                        conn.out.pop_front();
                        conn.written = 0;
                        flushed_frames += 1;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return false,
            }
        }
        if flushed_frames >= 2 {
            self.stats.count_coalesced_write();
        }
        true
    }

    /// Reap worker completions: park out-of-order replies, release the
    /// in-order prefix to each connection's write queue, flush eagerly,
    /// shed write-bounded connections, resume paused reads.
    fn reap(&mut self, poller: &mut dyn Poller) {
        let mut done = Vec::new();
        self.queue.drain_done(&mut done);
        let mut touched: Vec<Token> = Vec::with_capacity(done.len());
        for d in done {
            let Some(conn) = self.conns.get_mut(&d.token) else {
                continue;
            };
            conn.done.insert(d.seq, d.reply);
            if !touched.contains(&d.token) {
                touched.push(d.token);
            }
        }
        for token in touched {
            let mut overflow = false;
            let mut died = false;
            {
                let Some(conn) = self.conns.get_mut(&token) else {
                    continue;
                };
                while let Some(reply) = conn.done.remove(&conn.next_reply) {
                    conn.next_reply += 1;
                    conn.inflight = conn.inflight.saturating_sub(1);
                    match reply {
                        Some(bytes) => match encode_frame(&bytes) {
                            Ok(wire) => {
                                conn.out_bytes += wire.len();
                                conn.out.push_back(wire);
                                if conn.out_bytes > self.cfg.max_write_queue_bytes.max(1) {
                                    overflow = true;
                                    break;
                                }
                            }
                            Err(_) => {
                                died = true;
                                break;
                            }
                        },
                        // Handler refused the frame: stop reading, close
                        // once prior replies have flushed.
                        None => conn.closing = true,
                    }
                }
            }
            if overflow {
                self.shed(token, poller);
                continue;
            }
            if died || !self.flush(token) {
                self.close(token, poller);
                continue;
            }
            // A freed in-flight slot may unpause the reads; frames
            // already sitting decoded in the buffer go out first.
            self.resume(token, poller);
        }
    }

    /// Re-enable reading on a paused connection if capacity returned, and
    /// drain whatever the decoder still holds. Closes the connection when
    /// it is `closing` and fully drained.
    fn resume(&mut self, token: Token, poller: &mut dyn Poller) {
        let (was_paused, close_now) = {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            if conn.closing && conn.drained() {
                (false, true)
            } else {
                (conn.paused, false)
            }
        };
        if close_now {
            self.close(token, poller);
            return;
        }
        if was_paused {
            let has_room = self.dispatch_room() > 0;
            if let Some(conn) = self.conns.get_mut(&token) {
                if has_room && conn.inflight < self.cfg.per_conn_inflight.max(1) {
                    conn.paused = false;
                }
            }
            if !self.pump_decoder(token) {
                self.close(token, poller);
                return;
            }
        }
        self.sync_interest(token, poller);
    }
}

impl IoDriver for EventLoop {
    fn accept(&mut self, stream: TcpStream, poller: &mut dyn Poller) -> io::Result<()> {
        self.spawn_workers();
        stream.set_nodelay(true)?;
        let token = self.next_token;
        self.next_token += 1;
        let conn = Conn::new(stream);
        poller.register(token, &conn.stream, conn.interest())?;
        // The poller switched the registered clone nonblocking; the
        // original shares the descriptor, so reads/writes below are
        // nonblocking too.
        self.conns.insert(token, conn);
        Ok(())
    }

    fn readable(&mut self, token: Token, hangup: bool, poller: &mut dyn Poller) {
        let mut buf = [0u8; READ_CHUNK];
        let mut dead = hangup;
        let mut got_bytes = false;
        if let Some(conn) = self.conns.get_mut(&token) {
            if conn.paused || conn.closing {
                return;
            }
            loop {
                match conn.stream.read(&mut buf) {
                    Ok(0) => {
                        dead = true;
                        break;
                    }
                    Ok(n) => {
                        // lint: allow(no-index-hot-path, read() returns n <= buf.len() by contract)
                        conn.decoder.push(&buf[..n]);
                        got_bytes = true;
                        if n < buf.len() {
                            break;
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        dead = true;
                        break;
                    }
                }
            }
        } else {
            return;
        }
        if got_bytes {
            self.stats.count_batch();
            if !self.pump_decoder(token) {
                self.close(token, poller);
                return;
            }
        }
        if dead {
            // Peer is gone; replies owed to a closed socket are moot.
            self.close(token, poller);
            return;
        }
        self.sync_interest(token, poller);
    }

    fn writable(&mut self, token: Token, poller: &mut dyn Poller) {
        if !self.flush(token) {
            self.close(token, poller);
            return;
        }
        self.resume(token, poller);
    }

    fn tick(&mut self, poller: &mut dyn Poller) {
        self.reap(poller);
        // Global-backpressure recovery: a connection paused because the
        // dispatch queue was full (by *other* connections' frames) is not
        // touched by any completion of its own, so sweep every paused
        // connection whenever room exists.
        if self.dispatch_room() > 0 {
            let paused: Vec<Token> = self
                .conns
                .iter()
                .filter(|(_, c)| c.paused)
                .map(|(&t, _)| t)
                .collect();
            for token in paused {
                self.resume(token, poller);
            }
        }
    }

    fn shutdown(&mut self, poller: &mut dyn Poller) {
        let tokens: Vec<Token> = self.conns.keys().copied().collect();
        for token in tokens {
            self.close(token, poller);
        }
        self.queue.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::super::driver::DriverServer;
    use crate::config::{DriverKind, EvloopConfig};
    use coic_netsim::rt::{FrameConn, FrameError};
    use std::time::{Duration, Instant};

    fn echo_server(cfg: EvloopConfig) -> DriverServer {
        DriverServer::spawn("127.0.0.1:0", DriverKind::Evloop, cfg, |frame| {
            if frame.as_ref() == b"close" {
                None
            } else {
                Some(frame.to_vec())
            }
        })
        .unwrap()
    }

    #[test]
    fn evloop_echoes_pipelined_frames_in_fifo_order() {
        let server = echo_server(EvloopConfig {
            workers: 4,
            ..EvloopConfig::default()
        });
        let mut conn = FrameConn::connect(server.local_addr()).unwrap();
        conn.set_read_deadline(Some(Duration::from_secs(10)))
            .unwrap();
        // Pipeline: all requests go out before any reply is read, so the
        // loop must batch-decode and the reorder buffer must hold FIFO
        // order even though 4 workers race.
        for i in 0..200u32 {
            conn.send(format!("req-{i}").as_bytes()).unwrap();
        }
        for i in 0..200u32 {
            let reply = conn.recv().unwrap();
            assert_eq!(reply.as_ref(), format!("req-{i}").as_bytes());
        }
        let stats = server.loop_stats();
        assert_eq!(stats.frames, 200);
        assert!(stats.accepted >= 1);
        assert!(
            stats.batches < 200,
            "pipelined frames should decode in batches, got {} batches for 200 frames",
            stats.batches
        );
    }

    #[test]
    fn evloop_handler_none_closes_the_connection_after_prior_replies() {
        let server = echo_server(EvloopConfig::default());
        let mut conn = FrameConn::connect(server.local_addr()).unwrap();
        conn.set_read_deadline(Some(Duration::from_secs(10)))
            .unwrap();
        conn.send(b"first").unwrap();
        conn.send(b"close").unwrap();
        assert_eq!(conn.recv().unwrap().as_ref(), b"first");
        match conn.recv() {
            Err(FrameError::Closed) | Err(FrameError::Io(_)) => {}
            other => panic!("expected closed connection, got {other:?}"),
        }
        // The server itself is still alive for new connections.
        let mut again = FrameConn::connect(server.local_addr()).unwrap();
        again
            .set_read_deadline(Some(Duration::from_secs(10)))
            .unwrap();
        again.send(b"hello").unwrap();
        assert_eq!(again.recv().unwrap().as_ref(), b"hello");
    }

    #[test]
    fn evloop_sheds_a_stalled_reader_instead_of_buffering_unboundedly() {
        // Replies are 64 KiB and the write queue caps at 256 KiB: one
        // reply fits easily, but a client that never drains accumulates
        // a backlog and must be shed once its kernel buffers fill.
        let big = vec![0xABu8; 64 * 1024];
        let cfg = EvloopConfig {
            workers: 2,
            max_write_queue_bytes: 256 * 1024,
            ..EvloopConfig::default()
        };
        let server = DriverServer::spawn("127.0.0.1:0", DriverKind::Evloop, cfg, move |_frame| {
            Some(big.clone())
        })
        .unwrap();
        let mut conn = FrameConn::connect(server.local_addr()).unwrap();
        conn.set_write_deadline(Some(Duration::from_millis(200)))
            .unwrap();
        // Never read; just keep asking for big replies until the server
        // cuts us off (send starts failing once the connection is shed)
        // or we give up.
        let start = Instant::now();
        while start.elapsed() < Duration::from_secs(20) {
            if conn.send(b"more").is_err() {
                break;
            }
            if server.loop_stats().conn_shed > 0 {
                break;
            }
        }
        assert!(
            server.loop_stats().conn_shed >= 1,
            "stalled reader was never shed: {:?}",
            server.loop_stats()
        );
        // The edge survives and serves a well-behaved client.
        let mut ok = FrameConn::connect(server.local_addr()).unwrap();
        ok.set_read_deadline(Some(Duration::from_secs(10))).unwrap();
        ok.send(b"ping").unwrap();
        assert_eq!(ok.recv().unwrap().len(), 64 * 1024);
    }

    #[test]
    fn evloop_read_pauses_under_per_conn_inflight_pressure() {
        // A slow handler with a tiny in-flight cap: a pipelining client
        // must trip the read-pause path (and still get every reply).
        let cfg = EvloopConfig {
            workers: 1,
            per_conn_inflight: 2,
            ..EvloopConfig::default()
        };
        let server = DriverServer::spawn("127.0.0.1:0", DriverKind::Evloop, cfg, |frame| {
            std::thread::sleep(Duration::from_millis(2));
            Some(frame.to_vec())
        })
        .unwrap();
        let mut conn = FrameConn::connect(server.local_addr()).unwrap();
        conn.set_read_deadline(Some(Duration::from_secs(30)))
            .unwrap();
        for i in 0..32u32 {
            conn.send(&i.to_be_bytes()).unwrap();
        }
        for i in 0..32u32 {
            assert_eq!(conn.recv().unwrap().as_ref(), i.to_be_bytes());
        }
        let stats = server.loop_stats();
        assert!(
            stats.read_paused >= 1,
            "expected backpressure to pause reads: {stats:?}"
        );
        assert_eq!(stats.frames, 32);
        assert_eq!(stats.conn_shed, 0);
    }
}

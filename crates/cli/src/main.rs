//! The `coic` command-line binary (thin shell over [`coic_cli`]).

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    match coic_cli::run(raw) {
        Ok(text) => println!("{text}"),
        Err(err) => {
            eprintln!("error: {err}");
            std::process::exit(1);
        }
    }
}

//! Fixture: real violations suppressed by justified allow directives.

use std::net::TcpStream; // lint: allow(no-std-net, fixture exercises the same-line escape hatch)

fn dial(addr: &str) -> std::io::Result<TcpStream> {
    // lint: allow(no-std-net, the line-above form is also accepted)
    std::net::TcpStream::connect(addr)
}

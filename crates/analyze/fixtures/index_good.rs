//! Fixture: bounds-checked access via `.get()`, a justified in-place
//! allow, and test-only indexing — all clean under no-index-hot-path.

fn route(peers: &[u32], cursor: usize) -> Option<u32> {
    peers.get(cursor).copied()
}

fn shard(table: &[Shard], hash: u64) -> &Shard {
    // lint: allow(no-index-hot-path, index is taken modulo len and the constructor asserts non-empty)
    &table[(hash as usize) % table.len()]
}

#[cfg(test)]
mod tests {
    #[test]
    fn indexing_in_tests_is_fine() {
        let v = [1, 2, 3];
        assert_eq!(v[0], 1);
    }
}

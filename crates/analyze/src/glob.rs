//! Slash-separated glob matching for rule path scopes.
//!
//! Supported syntax, matched against `/`-separated relative paths:
//! `**` as a whole segment matches any number of segments (including
//! zero); `*` within a segment matches any run of non-separator
//! characters. No character classes, no `?` — the rules files don't need
//! them.

/// Does `pattern` match the (relative, `/`-separated) `path`?
pub fn glob_match(pattern: &str, path: &str) -> bool {
    let pat: Vec<&str> = pattern.split('/').collect();
    let segs: Vec<&str> = path.split('/').collect();
    match_segments(&pat, &segs)
}

fn match_segments(pat: &[&str], segs: &[&str]) -> bool {
    match pat.first() {
        None => segs.is_empty(),
        Some(&"**") => {
            // `**` swallows zero or more leading segments.
            (0..=segs.len()).any(|skip| match_segments(&pat[1..], &segs[skip..]))
        }
        Some(first) => match segs.first() {
            Some(seg) if match_one(first, seg) => match_segments(&pat[1..], &segs[1..]),
            _ => false,
        },
    }
}

/// Match one segment against a pattern that may contain `*`.
fn match_one(pattern: &str, segment: &str) -> bool {
    let parts: Vec<&str> = pattern.split('*').collect();
    if parts.len() == 1 {
        return pattern == segment;
    }
    let mut rest = segment;
    for (i, part) in parts.iter().enumerate() {
        if i == 0 {
            let Some(r) = rest.strip_prefix(part) else {
                return false;
            };
            rest = r;
        } else if i == parts.len() - 1 {
            return rest.ends_with(part)
                // Leading `*` already consumed: the final literal must fit
                // in what remains.
                && rest.len() >= part.len();
        } else if part.is_empty() {
            continue;
        } else {
            let Some(at) = rest.find(part) else {
                return false;
            };
            rest = &rest[at + part.len()..];
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_and_star_segments() {
        assert!(glob_match(
            "crates/cache/src/lib.rs",
            "crates/cache/src/lib.rs"
        ));
        assert!(glob_match("crates/*/src/lib.rs", "crates/cache/src/lib.rs"));
        assert!(!glob_match(
            "crates/*/src/lib.rs",
            "crates/cache/src/store.rs"
        ));
        assert!(glob_match("*.rs", "lib.rs"));
        assert!(!glob_match("*.rs", "src/lib.rs"));
    }

    #[test]
    fn double_star_spans_directories() {
        assert!(glob_match("crates/**/*.rs", "crates/cache/src/sharded.rs"));
        assert!(glob_match("crates/**/*.rs", "crates/lib.rs"));
        assert!(glob_match("**/*.rs", "lib.rs"));
        assert!(glob_match(
            "crates/core/src/**",
            "crates/core/src/engine/flight.rs"
        ));
        assert!(!glob_match("crates/core/src/**", "crates/cache/src/lib.rs"));
    }

    #[test]
    fn infix_stars() {
        assert!(glob_match("net_*_bad.rs", "net_import_bad.rs"));
        assert!(!glob_match("net_*_bad.rs", "net_import_good.rs"));
        assert!(glob_match("*_bad*.rs", "lock_bad_2.rs"));
    }
}

//! Count-min sketch: a tiny, fixed-memory frequency estimator.
//!
//! Backs the TinyLFU admission filter ([`crate::admission`]): the edge
//! tracks how often each descriptor has been *seen* (not just what is
//! cached), so that a one-hit-wonder cannot evict a popular entry. The
//! estimate is one-sided — never below the true count — which is exactly
//! the property admission needs.

use crate::digest::fnv1a64;

/// A count-min sketch over `u64` keys with saturating 8-bit counters and
/// periodic halving (the "aging" that turns counts into a sliding window).
#[derive(Debug, Clone)]
pub struct CountMinSketch {
    /// Row width (power of two).
    width: usize,
    /// Rows, each with an independent hash seed.
    rows: Vec<Vec<u8>>,
    seeds: Vec<u64>,
    /// Increments since the last halving.
    additions: u64,
    /// Halve all counters after this many increments.
    window: u64,
}

impl CountMinSketch {
    /// Create a sketch with `width` counters per row (rounded up to a power
    /// of two) and `depth` rows; `window` increments trigger an aging pass.
    ///
    /// # Panics
    /// Panics if any parameter is zero.
    pub fn new(width: usize, depth: usize, window: u64) -> Self {
        assert!(
            width > 0 && depth > 0 && window > 0,
            "sketch parameters must be positive"
        );
        let width = width.next_power_of_two();
        CountMinSketch {
            width,
            rows: vec![vec![0u8; width]; depth],
            seeds: (0..depth as u64)
                .map(|i| 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i + 1))
                .collect(),
            additions: 0,
            window,
        }
    }

    fn index(&self, row: usize, key: u64) -> usize {
        let mixed = fnv1a64(&(key ^ self.seeds[row]).to_le_bytes());
        (mixed as usize) & (self.width - 1)
    }

    /// Record one occurrence of `key`.
    pub fn increment(&mut self, key: u64) {
        for row in 0..self.rows.len() {
            let idx = self.index(row, key);
            let c = &mut self.rows[row][idx];
            *c = c.saturating_add(1);
        }
        self.additions += 1;
        if self.additions >= self.window {
            self.halve();
        }
    }

    /// Estimated occurrence count of `key` (never less than the true count
    /// within the current window, up to counter saturation).
    pub fn estimate(&self, key: u64) -> u32 {
        (0..self.rows.len())
            .map(|row| self.rows[row][self.index(row, key)] as u32)
            .min()
            .unwrap_or(0)
    }

    /// Age all counters by halving them (called automatically every
    /// `window` increments; public for tests and manual control).
    pub fn halve(&mut self) {
        for row in &mut self.rows {
            for c in row.iter_mut() {
                *c >>= 1;
            }
        }
        self.additions = 0;
    }

    /// Increments since the last aging pass.
    pub fn additions(&self) -> u64 {
        self.additions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimate_never_undercounts() {
        let mut s = CountMinSketch::new(256, 4, 1_000_000);
        for k in 0..50u64 {
            for _ in 0..(k % 7 + 1) {
                s.increment(k);
            }
        }
        for k in 0..50u64 {
            assert!(s.estimate(k) >= (k % 7 + 1) as u32, "undercounted {k}");
        }
    }

    #[test]
    fn unseen_keys_estimate_near_zero() {
        let mut s = CountMinSketch::new(1024, 4, 1_000_000);
        for k in 0..100u64 {
            s.increment(k);
        }
        // A sparse sketch rarely collides; allow tiny overestimates.
        let freq = s.estimate(999_999);
        assert!(freq <= 1, "phantom frequency {freq}");
    }

    #[test]
    fn skewed_stream_ranks_hot_keys_higher() {
        let mut s = CountMinSketch::new(512, 4, 1_000_000);
        for _ in 0..200 {
            s.increment(1); // hot
        }
        for k in 100..150u64 {
            s.increment(k); // cold tail
        }
        let hot = s.estimate(1);
        for k in 100..150u64 {
            assert!(
                hot > s.estimate(k) * 10,
                "hot {hot} vs cold {}",
                s.estimate(k)
            );
        }
    }

    #[test]
    fn halving_ages_counts() {
        let mut s = CountMinSketch::new(128, 4, 1_000_000);
        for _ in 0..40 {
            s.increment(7);
        }
        let before = s.estimate(7);
        s.halve();
        let after = s.estimate(7);
        assert_eq!(after, before / 2);
    }

    #[test]
    fn window_triggers_automatic_aging() {
        let mut s = CountMinSketch::new(128, 2, 10);
        for _ in 0..10 {
            s.increment(3);
        }
        // The 10th increment crossed the window: counters were halved.
        assert_eq!(s.additions(), 0);
        assert!(s.estimate(3) <= 5);
    }

    #[test]
    fn counters_saturate_not_wrap() {
        let mut s = CountMinSketch::new(64, 1, u64::MAX);
        for _ in 0..1000 {
            s.increment(5);
        }
        assert_eq!(s.estimate(5), 255);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_depth_rejected() {
        let _ = CountMinSketch::new(16, 0, 10);
    }
}

//! The edge's upstream (cloud) leg: circuit breaking plus stats.
//!
//! [`UpstreamGate`] is the one place where circuit-breaker transitions are
//! consumed and counted. Both the simulated edge node and the live edge
//! handler wrap their cloud calls in `preflight` / `report`, so breaker
//! semantics cannot drift between the two stacks.

use super::breaker::{BreakerState, CircuitBreaker};
use super::stats::RobustnessStats;
use std::time::Duration;

/// Gates the edge's forwarding leg to the cloud behind a circuit breaker,
/// mirroring trip/close transitions into [`RobustnessStats`].
#[derive(Debug)]
pub struct UpstreamGate {
    breaker: CircuitBreaker,
    stats: RobustnessStats,
}

impl UpstreamGate {
    /// A gate tripping after `failure_threshold` consecutive failures and
    /// cooling down for `cooldown`, counting transitions into `stats`.
    pub fn new(failure_threshold: u32, cooldown: Duration, stats: RobustnessStats) -> UpstreamGate {
        UpstreamGate {
            breaker: CircuitBreaker::new(failure_threshold, cooldown),
            stats,
        }
    }

    /// May the edge attempt its cloud call at `now_ns`? When this returns
    /// `false` the edge must answer `Unavailable` without trying upstream.
    pub fn preflight(&self, now_ns: u64) -> bool {
        self.breaker.allow(now_ns)
    }

    /// Record the outcome of a call that passed [`UpstreamGate::preflight`],
    /// mirroring any breaker transition into the shared stats.
    pub fn report(&self, ok: bool, now_ns: u64) {
        let (trips, closes) = (self.breaker.trips(), self.breaker.closes());
        self.breaker.record(ok, now_ns);
        if self.breaker.trips() > trips {
            self.stats.count_breaker_trip();
        }
        if self.breaker.closes() > closes {
            self.stats.count_breaker_close();
        }
    }

    /// Current breaker state.
    pub fn state(&self) -> BreakerState {
        self.breaker.state()
    }

    /// Times the breaker tripped open.
    pub fn trips(&self) -> u64 {
        self.breaker.trips()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MS: u64 = 1_000_000;

    #[test]
    fn gate_mirrors_breaker_transitions_into_stats() {
        let stats = RobustnessStats::default();
        let gate = UpstreamGate::new(2, Duration::from_millis(10), stats.clone());
        assert!(gate.preflight(0));
        gate.report(false, 0);
        assert!(gate.preflight(MS));
        gate.report(false, MS);
        assert_eq!(gate.state(), BreakerState::Open);
        assert!(!gate.preflight(2 * MS), "open gate refuses upstream calls");
        assert_eq!(stats.snapshot().breaker_trips, 1);

        assert!(gate.preflight(12 * MS), "cooldown elapsed: probe allowed");
        gate.report(true, 12 * MS);
        assert_eq!(gate.state(), BreakerState::Closed);
        assert_eq!(stats.snapshot().breaker_closes, 1);
    }
}

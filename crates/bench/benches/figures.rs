//! Criterion harness over the figure pipelines: one scaled-down cell of
//! each paper figure runs under `cargo bench`, so the figure code paths are
//! continuously exercised and timed. The full sweeps (all conditions, all
//! sizes) live in the `fig2a`/`fig2b` binaries.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use coic_bench::{base_config, fig2a_trace, render_trace};
use coic_core::simrun::{run, Mode, SimConfig};

fn bench_fig2a_cell(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig2a");
    g.sample_size(10);
    let trace = fig2a_trace(40, 42);
    for (mode, name) in [(Mode::Origin, "origin"), (Mode::CoIc, "coic")] {
        let cfg = SimConfig {
            mode,
            wan_mbps: 20.0,
            ..base_config()
        };
        g.bench_function(format!("{name}/400Mb_20Mb/40req"), |b| {
            b.iter(|| run(black_box(&trace), black_box(&cfg)))
        });
    }
    g.finish();
}

fn bench_fig2b_cell(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig2b");
    g.sample_size(10);
    let trace = render_trace(1, 4, 1_000_000, 16, 8);
    for (mode, name) in [(Mode::Origin, "origin"), (Mode::CoIc, "coic")] {
        let mut cfg = base_config();
        cfg.mode = mode;
        cfg.num_clients = 1;
        g.bench_function(format!("{name}/1MB_models/16loads"), |b| {
            b.iter(|| run(black_box(&trace), black_box(&cfg)))
        });
    }
    g.finish();
}

criterion_group!(figures, bench_fig2a_cell, bench_fig2b_cell);
criterion_main!(figures);

//! **Ext G** — multi-edge cooperation, fully simulated.
//!
//! CoIC is a *cooperative* framework: beyond users sharing one edge, edges
//! answer each other's misses over a LAN before going to the cloud (the
//! `PeerQuery`/`PeerReply` protocol). This experiment replays a multi-zone
//! avatar workload through 1–8 simulated edges and compares outcomes with
//! and without peer lookup.
//!
//! Run with: `cargo run --release -p coic-bench --bin ext_coop`

use coic_core::simrun::{run, SimConfig};
use coic_workload::{ArenaMultiplayer, Population, Request};

fn trace(edges: u32, seed: u64) -> Vec<Request> {
    // Four players per zone; zones map one-to-one onto edges. Avatars are
    // globally popular, so what one zone misses another often holds.
    let models: Vec<(u64, u64)> = (0..12).map(|i| (i, 4_000_000)).collect();
    ArenaMultiplayer {
        population: Population::round_robin(4 * edges, edges),
        models,
        zipf_s: 0.9,
        rate_per_sec: 0.5,
        total_requests: (40 * edges) as usize,
    }
    .generate(seed)
}

fn main() {
    println!("Ext G — cooperative multi-edge lookup (4 MB avatars, simulated)\n");
    println!(
        "{:>6} {:>6} | {:>7} {:>7} {:>7} | {:>10} | {:>8}",
        "edges", "peers?", "local%", "peer%", "cloud%", "mean-lat", "WAN MB"
    );
    coic_bench::rule(70);
    for edges in [1u32, 2, 4, 8] {
        let t = trace(edges, 41);
        for peer_lookup in [false, true] {
            if edges == 1 && peer_lookup {
                continue; // no peers to ask
            }
            let cfg = SimConfig {
                num_clients: 4 * edges,
                num_edges: edges,
                peer_lookup,
                ..SimConfig::default()
            };
            let report = run(&t, &cfg);
            let n = report.completed as f64;
            println!(
                "{:>6} {:>6} | {:>6.1}% {:>6.1}% {:>6.1}% | {:>7.1} ms | {:>7.1}",
                edges,
                if peer_lookup { "yes" } else { "no" },
                report.edge_hits as f64 / n * 100.0,
                report.peer_hits as f64 / n * 100.0,
                report.cloud_trips as f64 / n * 100.0,
                report.mean_latency_ms(),
                report.wan_bytes as f64 / 1e6,
            );
        }
    }
    coic_bench::rule(70);
    println!("Peer lookup converts cloud trips into LAN fetches: WAN traffic and");
    println!("mean latency both drop, and the effect grows with the group size.");
}

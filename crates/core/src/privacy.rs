//! Descriptor privacy transforms (paper §4, ongoing work).
//!
//! "We will also study on the security/privacy protection issues in the
//! cooperative system." A shared edge cache leaks information: feature
//! descriptors reveal what a user is looking at, and exact content hashes
//! let the edge link users requesting the same asset. This module provides
//! the standard mitigations and the knobs to measure their utility cost
//! (`ext_privacy` sweeps them against hit rate):
//!
//! * [`quantize`] — coarsen descriptor precision (less information per
//!   component, bounded distance distortion),
//! * [`perturb`] — calibrated Gaussian noise (randomized-response-style:
//!   plausible deniability about the exact view),
//! * [`salted_digest`] — re-key exact descriptors under a salt; users in
//!   the same trust domain (same salt) still share, others cannot even
//!   test for equality.

use coic_cache::{sha256, Digest};
use coic_vision::{gaussian, FeatureVec};
use rand::rngs::StdRng;

/// Quantize each component to `bits` bits over `[-1, 1]`, re-normalizing
/// afterwards. Coarser grids leak less about the exact observation while
/// keeping nearby descriptors nearby.
///
/// # Panics
/// Panics unless `1 <= bits <= 16`.
pub fn quantize(v: &FeatureVec, bits: u32) -> FeatureVec {
    assert!((1..=16).contains(&bits), "bits must be in 1..=16");
    let levels = (1u32 << bits) as f32;
    let step = 2.0 / levels;
    let q: Vec<f32> = v
        .as_slice()
        .iter()
        .map(|&x| {
            let clamped = x.clamp(-1.0, 1.0);
            // Mid-rise quantizer over [-1, 1].
            let idx = ((clamped + 1.0) / step).floor().min(levels - 1.0);
            -1.0 + (idx + 0.5) * step
        })
        .collect();
    FeatureVec::new(q).normalized()
}

/// Add isotropic Gaussian noise of standard deviation `sigma` per
/// component, then re-normalize. `sigma = 0` is the identity.
pub fn perturb(v: &FeatureVec, sigma: f32, rng: &mut StdRng) -> FeatureVec {
    if sigma == 0.0 {
        return v.clone();
    }
    let noisy: Vec<f32> = v
        .as_slice()
        .iter()
        .map(|&x| x + gaussian(rng) as f32 * sigma)
        .collect();
    FeatureVec::new(noisy).normalized()
}

/// Re-key an exact content digest under `salt`: `SHA-256(salt || digest)`.
/// Identical salts preserve cache sharing; distinct salts make keys
/// unlinkable across trust domains.
pub fn salted_digest(digest: &Digest, salt: &[u8]) -> Digest {
    let mut input = Vec::with_capacity(salt.len() + 32);
    input.extend_from_slice(salt);
    input.extend_from_slice(digest.as_bytes());
    Digest(sha256(&input))
}

#[cfg(test)]
mod tests {
    use super::*;
    use coic_vision::distance::l2;
    use rand::SeedableRng;

    fn unit(seed: u64, dim: usize) -> FeatureVec {
        use rand::RngExt;
        let mut rng = StdRng::seed_from_u64(seed);
        FeatureVec::new((0..dim).map(|_| rng.random::<f32>() * 2.0 - 1.0).collect()).normalized()
    }

    #[test]
    fn quantize_bounded_distortion() {
        for seed in 0..20 {
            let v = unit(seed, 32);
            let q = quantize(&v, 8);
            assert!(l2(&v, &q) < 0.05, "8-bit quantization moved vector too far");
            let q4 = quantize(&v, 4);
            assert!(l2(&v, &q4) < 0.35);
        }
    }

    #[test]
    fn coarser_quantization_distorts_more() {
        let v = unit(1, 32);
        let d8 = l2(&v, &quantize(&v, 8));
        let d2 = l2(&v, &quantize(&v, 2));
        assert!(d2 > d8);
    }

    #[test]
    fn quantize_is_idempotent() {
        let v = unit(2, 16);
        let q1 = quantize(&v, 6);
        let q2 = quantize(&q1, 6);
        // Re-quantizing a quantized (then normalized) vector stays close.
        assert!(l2(&q1, &q2) < 0.05);
    }

    #[test]
    fn quantize_preserves_neighborhoods() {
        // Two nearby descriptors stay nearby after quantization; two far
        // ones stay far. That is why the cache still works.
        let a = unit(3, 32);
        let near = FeatureVec::new(a.as_slice().iter().map(|&x| x + 0.02).collect()).normalized();
        let far = unit(4, 32);
        let (qa, qn, qf) = (quantize(&a, 6), quantize(&near, 6), quantize(&far, 6));
        assert!(l2(&qa, &qn) < 0.3);
        assert!(l2(&qa, &qf) > 0.8);
    }

    #[test]
    fn perturb_scales_with_sigma() {
        let v = unit(5, 32);
        let mut rng = StdRng::seed_from_u64(7);
        let small = perturb(&v, 0.01, &mut rng);
        let big = perturb(&v, 0.5, &mut rng);
        assert!(l2(&v, &small) < l2(&v, &big));
        assert_eq!(perturb(&v, 0.0, &mut rng), v);
        // Output stays unit-norm.
        assert!((big.l2_norm() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn salted_digests_share_within_domain_only() {
        let d = Digest::of(b"avatar-model");
        let a1 = salted_digest(&d, b"edge-domain-A");
        let a2 = salted_digest(&d, b"edge-domain-A");
        let b = salted_digest(&d, b"edge-domain-B");
        assert_eq!(a1, a2);
        assert_ne!(a1, b);
        assert_ne!(a1, d);
    }

    #[test]
    fn salted_digest_hides_original() {
        // Different content, same salt: still distinct (no collapsing).
        let s = b"salt";
        assert_ne!(
            salted_digest(&Digest::of(b"x"), s),
            salted_digest(&Digest::of(b"y"), s)
        );
    }

    #[test]
    #[should_panic(expected = "bits must be")]
    fn zero_bits_rejected() {
        let _ = quantize(&unit(0, 4), 0);
    }
}

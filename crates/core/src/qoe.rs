//! QoE accounting: per-request records and aggregated reports.
//!
//! The paper's metric is user-perceived end-to-end latency; we additionally
//! track hit paths, recognition accuracy and bytes moved per network
//! segment (the costs a deployment would care about).

use coic_netsim::Summary;
use coic_obs::{CanonicalWriter, MetricsRegistry};
use std::collections::BTreeMap;

/// How a request was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Path {
    /// Edge cache hit.
    EdgeHit,
    /// Local miss answered by a cooperating peer edge.
    PeerHit,
    /// Miss: forwarded to the cloud and cached.
    CloudMiss,
    /// Origin baseline: full offload, no cache.
    Baseline,
}

impl Path {
    /// Stable label, shared by trace events and per-path summaries.
    pub fn label(self) -> &'static str {
        match self {
            Path::EdgeHit => "edge_hit",
            Path::PeerHit => "peer_hit",
            Path::CloudMiss => "cloud_miss",
            Path::Baseline => "baseline",
        }
    }
}

/// One completed request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Record {
    /// Request id.
    pub req_id: u64,
    /// Task family label.
    pub kind: &'static str,
    /// Issue time (virtual ns).
    pub issued_ns: u64,
    /// Completion time (virtual ns).
    pub completed_ns: u64,
    /// How it was satisfied.
    pub path: Path,
    /// For recognition: was the label correct?
    pub correct: Option<bool>,
    /// Transmission attempts beyond the first this request needed
    /// (lossy-link retransmissions).
    pub retries: u32,
}

impl Record {
    /// End-to-end latency in milliseconds.
    pub fn latency_ms(&self) -> f64 {
        (self.completed_ns - self.issued_ns) as f64 / 1e6
    }
}

/// Aggregated outcome of one simulation run.
#[derive(Debug)]
pub struct QoeReport {
    /// All end-to-end latencies, ms.
    pub latency_ms: Summary,
    /// Latencies by task family.
    pub latency_by_kind: BTreeMap<&'static str, Summary>,
    /// Latencies by hit path (keys from [`Path::label`]). Under admission
    /// control, shed requests that completed through the origin fallback
    /// land under `baseline`, so this split separates the latency of work
    /// the edge admitted from the latency of work it deflected.
    pub latency_by_path: BTreeMap<&'static str, Summary>,
    /// Requests satisfied from the local edge cache.
    pub edge_hits: u64,
    /// Requests satisfied by a cooperating peer edge.
    pub peer_hits: u64,
    /// Requests that went to the cloud (miss or baseline).
    pub cloud_trips: u64,
    /// Recognition accuracy (None if no recognition requests).
    pub accuracy: Option<f64>,
    /// Completed requests.
    pub completed: usize,
    /// Bytes delivered on the access (client↔edge) segment.
    pub access_bytes: u64,
    /// Bytes delivered on the WAN (edge↔cloud) segment.
    pub wan_bytes: u64,
    /// Bytes delivered on the inter-edge LAN (multi-edge runs only).
    pub lan_bytes: u64,
    /// Requests abandoned after exhausting retries (lossy-link runs).
    pub failed: u64,
    /// Total retransmissions across completed requests.
    pub retries: u64,
    /// Completed requests that needed at least one retransmission.
    pub retried_requests: u64,
}

/// Staged construction of a [`QoeReport`]: aggregate records, then attach
/// the out-of-band fields (failure count, per-segment byte counts) the
/// drivers learn from the network layer rather than the records.
#[derive(Debug, Default)]
pub struct QoeReportBuilder {
    records_agg: Option<QoeReport>,
    failed: u64,
    access_bytes: u64,
    wan_bytes: u64,
    lan_bytes: u64,
}

impl QoeReportBuilder {
    /// Aggregate the completed-request records (replaces any earlier
    /// `records` call).
    pub fn records(mut self, records: &[Record]) -> Self {
        let mut latency_ms = Summary::new();
        let mut latency_by_kind: BTreeMap<&'static str, Summary> = BTreeMap::new();
        let mut latency_by_path: BTreeMap<&'static str, Summary> = BTreeMap::new();
        let mut edge_hits = 0;
        let mut peer_hits = 0;
        let mut cloud_trips = 0;
        let mut correct = 0u64;
        let mut judged = 0u64;
        let mut retries = 0u64;
        let mut retried_requests = 0u64;
        for r in records {
            retries += r.retries as u64;
            if r.retries > 0 {
                retried_requests += 1;
            }
            let l = r.latency_ms();
            latency_ms.push(l);
            latency_by_kind.entry(r.kind).or_default().push(l);
            latency_by_path.entry(r.path.label()).or_default().push(l);
            match r.path {
                Path::EdgeHit => edge_hits += 1,
                Path::PeerHit => peer_hits += 1,
                Path::CloudMiss | Path::Baseline => cloud_trips += 1,
            }
            if let Some(c) = r.correct {
                judged += 1;
                if c {
                    correct += 1;
                }
            }
        }
        self.records_agg = Some(QoeReport {
            latency_ms,
            latency_by_kind,
            latency_by_path,
            edge_hits,
            peer_hits,
            cloud_trips,
            accuracy: (judged > 0).then(|| correct as f64 / judged as f64),
            completed: records.len(),
            access_bytes: 0,
            wan_bytes: 0,
            lan_bytes: 0,
            failed: 0,
            retries,
            retried_requests,
        });
        self
    }

    /// Requests abandoned after exhausting every path.
    pub fn failed(mut self, n: u64) -> Self {
        self.failed = n;
        self
    }

    /// Bytes delivered on the access (client↔edge) segment.
    pub fn access_bytes(mut self, n: u64) -> Self {
        self.access_bytes = n;
        self
    }

    /// Bytes delivered on the WAN (edge↔cloud) segment.
    pub fn wan_bytes(mut self, n: u64) -> Self {
        self.wan_bytes = n;
        self
    }

    /// Bytes delivered on the inter-edge LAN segment.
    pub fn lan_bytes(mut self, n: u64) -> Self {
        self.lan_bytes = n;
        self
    }

    /// Finish the report. Without a `records` call this is an empty
    /// report carrying only the out-of-band fields.
    pub fn build(self) -> QoeReport {
        let mut report = self.records_agg.unwrap_or_else(|| QoeReport {
            latency_ms: Summary::new(),
            latency_by_kind: BTreeMap::new(),
            latency_by_path: BTreeMap::new(),
            edge_hits: 0,
            peer_hits: 0,
            cloud_trips: 0,
            accuracy: None,
            completed: 0,
            access_bytes: 0,
            wan_bytes: 0,
            lan_bytes: 0,
            failed: 0,
            retries: 0,
            retried_requests: 0,
        });
        report.failed = self.failed;
        report.access_bytes = self.access_bytes;
        report.wan_bytes = self.wan_bytes;
        report.lan_bytes = self.lan_bytes;
        report
    }
}

impl QoeReport {
    /// Start building a report.
    pub fn builder() -> QoeReportBuilder {
        QoeReportBuilder::default()
    }

    /// Build a report from records (network byte counts added separately).
    pub fn from_records(records: &[Record]) -> QoeReport {
        QoeReport::builder().records(records).build()
    }

    /// Cache hit ratio over completed requests (local + peer hits).
    pub fn hit_ratio(&self) -> f64 {
        let n = self.edge_hits + self.peer_hits + self.cloud_trips;
        if n == 0 {
            0.0
        } else {
            (self.edge_hits + self.peer_hits) as f64 / n as f64
        }
    }

    /// Mean latency in ms.
    pub fn mean_latency_ms(&self) -> f64 {
        self.latency_ms.mean()
    }

    /// p99 latency (ms) over the requests the edge actually served — every
    /// path except `baseline`. Under admission control the baseline records
    /// are shed requests that completed through the origin fallback, so
    /// this isolates how the admitted work fared while the edge shed load.
    pub fn admitted_p99_ms(&self) -> f64 {
        let mut s = Summary::new();
        for (label, sum) in &self.latency_by_path {
            if *label != Path::Baseline.label() {
                s.merge(sum);
            }
        }
        s.p99()
    }

    /// Canonical, deterministic serialization on the shared
    /// [`CanonicalWriter`]: per-kind sections are emitted in sorted key
    /// order (the backing `BTreeMap` iterates sorted by construction), so
    /// two identical runs produce byte-identical strings. Used by the
    /// determinism tests and the CI determinism job to diff reports.
    pub fn canonical(&mut self) -> String {
        let mut w = CanonicalWriter::new();
        w.field("completed", self.completed)
            .field("failed", self.failed)
            .end_line();
        w.field("edge_hits", self.edge_hits)
            .field("peer_hits", self.peer_hits)
            .field("cloud_trips", self.cloud_trips)
            .end_line();
        w.field("retries", self.retries)
            .field("retried_requests", self.retried_requests)
            .end_line();
        match self.accuracy {
            Some(a) => w.float6("accuracy", a),
            None => w.field("accuracy", "n/a"),
        }
        .end_line();
        w.word("latency")
            .float6("mean", self.latency_ms.mean())
            .float6("median", self.latency_ms.median())
            .float6("p99", self.latency_ms.quantile(0.99))
            .end_line();
        for (kind, summary) in self.latency_by_kind.iter_mut() {
            w.field("kind", kind)
                .field("n", summary.count())
                .float6("mean", summary.mean())
                .float6("median", summary.median())
                .end_line();
        }
        w.word("bytes")
            .field("access", self.access_bytes)
            .field("wan", self.wan_bytes)
            .field("lan", self.lan_bytes)
            .end_line();
        w.finish()
    }

    /// Publish the report's counters into the shared metrics registry
    /// under the `qoe.` prefix. Latency summaries are published as a
    /// gauge of the mean only (full distributions already live in the
    /// registry's latency histograms, fed per-request by the drivers).
    pub fn publish(&self, reg: &MetricsRegistry) {
        reg.counter_add("qoe.completed", self.completed as u64);
        reg.counter_add("qoe.failed", self.failed);
        reg.counter_add("qoe.edge_hits", self.edge_hits);
        reg.counter_add("qoe.peer_hits", self.peer_hits);
        reg.counter_add("qoe.cloud_trips", self.cloud_trips);
        reg.counter_add("qoe.retries", self.retries);
        reg.counter_add("qoe.retried_requests", self.retried_requests);
        reg.counter_add("qoe.access_bytes", self.access_bytes);
        reg.counter_add("qoe.wan_bytes", self.wan_bytes);
        reg.counter_add("qoe.lan_bytes", self.lan_bytes);
        if let Some(a) = self.accuracy {
            reg.gauge_set("qoe.accuracy_ppm", (a * 1e6).round() as i64);
            reg.counter_add("qoe.accuracy_present", 1);
        }
    }

    /// Reconstruct the counter view of a report from registry values
    /// published by [`QoeReport::publish`]. Latency summaries are empty:
    /// the registry keeps distributions as fixed-bucket histograms, which
    /// cannot be folded back into exact [`Summary`] values.
    pub fn from_registry(reg: &MetricsRegistry) -> QoeReport {
        let mut report = QoeReport::builder()
            .failed(reg.counter("qoe.failed"))
            .access_bytes(reg.counter("qoe.access_bytes"))
            .wan_bytes(reg.counter("qoe.wan_bytes"))
            .lan_bytes(reg.counter("qoe.lan_bytes"))
            .build();
        report.completed = reg.counter("qoe.completed") as usize;
        report.edge_hits = reg.counter("qoe.edge_hits");
        report.peer_hits = reg.counter("qoe.peer_hits");
        report.cloud_trips = reg.counter("qoe.cloud_trips");
        report.retries = reg.counter("qoe.retries");
        report.retried_requests = reg.counter("qoe.retried_requests");
        report.accuracy = (reg.counter("qoe.accuracy_present") > 0)
            .then(|| reg.gauge("qoe.accuracy_ppm") as f64 / 1e6);
        report
    }
}

/// Latency reduction of `coic` relative to `baseline`, in percent
/// (the y-axis of both paper figures).
pub fn reduction_percent(baseline_ms: f64, coic_ms: f64) -> f64 {
    if baseline_ms <= 0.0 {
        return 0.0;
    }
    (baseline_ms - coic_ms) / baseline_ms * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(latency_ns: u64, path: Path, correct: Option<bool>) -> Record {
        Record {
            req_id: 0,
            kind: "recognition",
            issued_ns: 1_000,
            completed_ns: 1_000 + latency_ns,
            path,
            correct,
            retries: 0,
        }
    }

    #[test]
    fn retries_aggregate() {
        let mut a = rec(10_000_000, Path::EdgeHit, None);
        a.retries = 2;
        let b = rec(10_000_000, Path::EdgeHit, None);
        let mut c = rec(10_000_000, Path::CloudMiss, None);
        c.retries = 1;
        let report = QoeReport::from_records(&[a, b, c]);
        assert_eq!(report.retries, 3);
        assert_eq!(report.retried_requests, 2);
    }

    #[test]
    fn report_aggregates() {
        let records = vec![
            rec(10_000_000, Path::EdgeHit, Some(true)),
            rec(30_000_000, Path::CloudMiss, Some(true)),
            rec(20_000_000, Path::EdgeHit, Some(false)),
        ];
        let mut report = QoeReport::from_records(&records);
        assert_eq!(report.completed, 3);
        assert_eq!(report.edge_hits, 2);
        assert_eq!(report.cloud_trips, 1);
        assert!((report.hit_ratio() - 2.0 / 3.0).abs() < 1e-12);
        assert!((report.mean_latency_ms() - 20.0).abs() < 1e-9);
        assert!((report.latency_ms.median() - 20.0).abs() < 1e-9);
        assert!((report.accuracy.unwrap() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn accuracy_absent_without_truth() {
        let records = vec![rec(1_000, Path::Baseline, None)];
        let report = QoeReport::from_records(&records);
        assert_eq!(report.accuracy, None);
    }

    #[test]
    fn reduction_math() {
        assert!((reduction_percent(100.0, 50.0) - 50.0).abs() < 1e-12);
        assert!((reduction_percent(100.0, 100.0)).abs() < 1e-12);
        assert_eq!(reduction_percent(0.0, 10.0), 0.0);
        assert!(reduction_percent(50.0, 75.0) < 0.0); // regressions are visible
    }

    #[test]
    fn latency_ms_conversion() {
        let r = rec(5_500_000, Path::EdgeHit, None);
        assert!((r.latency_ms() - 5.5).abs() < 1e-12);
    }

    #[test]
    fn builder_attaches_out_of_band_fields() {
        let records = vec![rec(10_000_000, Path::EdgeHit, None)];
        let report = QoeReport::builder()
            .records(&records)
            .failed(2)
            .access_bytes(100)
            .wan_bytes(50)
            .lan_bytes(7)
            .build();
        assert_eq!(report.completed, 1);
        assert_eq!(report.failed, 2);
        assert_eq!(report.access_bytes, 100);
        assert_eq!(report.wan_bytes, 50);
        assert_eq!(report.lan_bytes, 7);
        // Without records: an empty report that still carries the fields.
        let empty = QoeReport::builder().failed(1).build();
        assert_eq!(empty.completed, 0);
        assert_eq!(empty.failed, 1);
    }

    #[test]
    fn canonical_byte_format_is_frozen() {
        let records = vec![
            rec(10_000_000, Path::EdgeHit, Some(true)),
            rec(30_000_000, Path::CloudMiss, Some(true)),
        ];
        let mut report = QoeReport::builder()
            .records(&records)
            .access_bytes(12)
            .wan_bytes(34)
            .lan_bytes(0)
            .build();
        let expected = "completed=2 failed=0\n\
                        edge_hits=1 peer_hits=0 cloud_trips=1\n\
                        retries=0 retried_requests=0\n\
                        accuracy=1.000000\n\
                        latency mean=20.000000 median=20.000000 p99=29.800000\n\
                        kind=recognition n=2 mean=20.000000 median=20.000000\n\
                        bytes access=12 wan=34 lan=0\n";
        assert_eq!(report.canonical(), expected);
        // Absent accuracy prints the n/a sentinel, not a number.
        let mut plain = QoeReport::from_records(&[rec(1_000_000, Path::Baseline, None)]);
        assert!(plain.canonical().contains("accuracy=n/a\n"));
    }

    #[test]
    fn registry_roundtrip_preserves_counter_view() {
        let records = vec![
            rec(10_000_000, Path::EdgeHit, Some(true)),
            rec(30_000_000, Path::PeerHit, Some(false)),
            rec(20_000_000, Path::CloudMiss, None),
        ];
        let report = QoeReport::builder()
            .records(&records)
            .failed(1)
            .access_bytes(10)
            .wan_bytes(20)
            .lan_bytes(30)
            .build();
        let reg = MetricsRegistry::new();
        report.publish(&reg);
        let back = QoeReport::from_registry(&reg);
        assert_eq!(back.completed, report.completed);
        assert_eq!(back.failed, report.failed);
        assert_eq!(back.edge_hits, report.edge_hits);
        assert_eq!(back.peer_hits, report.peer_hits);
        assert_eq!(back.cloud_trips, report.cloud_trips);
        assert_eq!(back.retries, report.retries);
        assert_eq!(back.retried_requests, report.retried_requests);
        assert_eq!(back.access_bytes, report.access_bytes);
        assert_eq!(back.wan_bytes, report.wan_bytes);
        assert_eq!(back.lan_bytes, report.lan_bytes);
        assert!((back.accuracy.unwrap() - 0.5).abs() < 1e-6);
        // No accuracy published → none reconstructed (0.0 is a real value,
        // so absence must not collapse into it).
        let reg2 = MetricsRegistry::new();
        QoeReport::from_records(&[rec(1_000, Path::Baseline, None)]).publish(&reg2);
        assert_eq!(QoeReport::from_registry(&reg2).accuracy, None);
    }
}

//! Standalone lint driver. Usage:
//!
//! ```text
//! coic-analyze [--root DIR] [--rules FILE]
//! ```
//!
//! Defaults: `--root .`, `--rules <root>/analyze/rules.toml`. Exits 0 on
//! a clean tree, 1 on findings, 2 on usage/config errors.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut rules: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(v) => root = PathBuf::from(v),
                None => return usage("--root needs a value"),
            },
            "--rules" => match args.next() {
                Some(v) => rules = Some(PathBuf::from(v)),
                None => return usage("--rules needs a value"),
            },
            "--help" | "-h" => {
                println!("usage: coic-analyze [--root DIR] [--rules FILE]");
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }
    let rules = rules.unwrap_or_else(|| root.join("analyze").join("rules.toml"));
    let mut report = String::new();
    match coic_analyze::run_lint(&root, &rules, &mut report) {
        Ok(clean) => {
            print!("{report}");
            if clean {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("coic-analyze: {e}");
            ExitCode::from(2)
        }
    }
}

fn usage(problem: &str) -> ExitCode {
    eprintln!("coic-analyze: {problem}\nusage: coic-analyze [--root DIR] [--rules FILE]");
    ExitCode::from(2)
}

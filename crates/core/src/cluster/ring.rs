//! Deterministic consistent-hash ring over the digest space.

use coic_cache::{fnv1a64, Digest};
use std::collections::BTreeMap;

/// Index of an edge within its cluster (dense, `0..num_edges`).
pub type EdgeId = u32;

/// A consistent-hash ring with deterministic virtual-node placement.
///
/// Every edge derives the identical ring from `(edges, vnodes)` alone —
/// vnode points are FNV-1a hashes of the `(edge, vnode)` pair, and a
/// digest maps to the first vnode at or after its own FNV-1a point
/// (wrapping). No randomness, no gossip: two processes that agree on the
/// member count agree on every owner.
///
/// # Examples
/// ```
/// use coic_core::cluster::HashRing;
/// use coic_cache::Digest;
///
/// let ring = HashRing::new(4, 16);
/// let d = Digest::of(b"frame-9");
/// let walk = ring.walk(&d);
/// assert_eq!(walk[0], ring.owner(&d));
/// assert_eq!(walk.len(), 4); // every edge appears exactly once
/// ```
#[derive(Debug, Clone)]
pub struct HashRing {
    /// vnode point → owning edge, sorted by point.
    points: BTreeMap<u64, EdgeId>,
    edges: u32,
}

/// Finalizer (splitmix64 mix) on top of FNV-1a: FNV alone has weak
/// avalanche in the high bits on short structured keys, which skews the
/// vnode spread across the `u64` ring badly. The mix restores uniformity
/// while staying a pure deterministic function of the input.
fn mix(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

impl HashRing {
    /// Build the ring for `edges` members with `vnodes` virtual nodes
    /// each.
    ///
    /// # Panics
    /// Panics when either count is zero.
    pub fn new(edges: u32, vnodes: u32) -> Self {
        assert!(edges > 0, "a ring needs at least one edge");
        assert!(vnodes > 0, "a ring needs at least one vnode per edge");
        let mut points = BTreeMap::new();
        for e in 0..edges {
            for v in 0..vnodes {
                // 0x2f separator: (e=1,v=2) must differ from (e=12,v=..).
                let key: Vec<u8> = e
                    .to_le_bytes()
                    .into_iter()
                    .chain([0x2f])
                    .chain(v.to_le_bytes())
                    .collect();
                // First writer wins on the (astronomically unlikely) point
                // collision so the ring stays identical on every edge.
                points.entry(mix(fnv1a64(&key))).or_insert(e);
            }
        }
        HashRing { points, edges }
    }

    /// Number of member edges.
    pub fn edges(&self) -> u32 {
        self.edges
    }

    /// The ring coordinate of a digest.
    fn point_of(d: &Digest) -> u64 {
        mix(fnv1a64(d.as_bytes()))
    }

    /// The edge owning `d`'s partition.
    pub fn owner(&self, d: &Digest) -> EdgeId {
        self.walk_points(Self::point_of(d))
            .next()
            // lint: allow(no-unwrap, the constructor asserts edges*vnodes > 0 so the point map is never empty)
            .expect("ring is non-empty by construction")
    }

    /// Every distinct edge in ring order starting at `d`'s owner — the
    /// failover order: `walk[0]` owns the digest, `walk[1]` is the ring
    /// successor that inherits the keyspace when the owner dies, and so
    /// on. Each member appears exactly once.
    pub fn walk(&self, d: &Digest) -> Vec<EdgeId> {
        let mut seen = vec![false; self.edges as usize];
        let mut order = Vec::with_capacity(self.edges as usize);
        for e in self.walk_points(Self::point_of(d)) {
            // Every ring point maps to an edge in 0..edges by
            // construction; `get_mut` keeps that free of panic paths.
            if let Some(s) = seen.get_mut(e as usize) {
                if !*s {
                    *s = true;
                    order.push(e);
                    if order.len() == self.edges as usize {
                        break;
                    }
                }
            }
        }
        order
    }

    /// All vnode owners from `point` onward, wrapping.
    fn walk_points(&self, point: u64) -> impl Iterator<Item = EdgeId> + '_ {
        self.points
            .range(point..)
            .chain(self.points.range(..point))
            .map(|(_, &e)| e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn digests(n: u64) -> impl Iterator<Item = Digest> {
        (0..n).map(|i| Digest::of(&i.to_le_bytes()))
    }

    #[test]
    fn identical_across_constructions() {
        let a = HashRing::new(16, 16);
        let b = HashRing::new(16, 16);
        for d in digests(500) {
            assert_eq!(a.owner(&d), b.owner(&d));
            assert_eq!(a.walk(&d), b.walk(&d));
        }
    }

    #[test]
    fn walk_covers_every_edge_once() {
        let ring = HashRing::new(8, 16);
        for d in digests(100) {
            let mut w = ring.walk(&d);
            assert_eq!(w[0], ring.owner(&d));
            w.sort_unstable();
            assert_eq!(w, (0..8).collect::<Vec<_>>());
        }
    }

    #[test]
    fn ownership_is_roughly_balanced() {
        let ring = HashRing::new(10, 32);
        let mut counts = vec![0u64; 10];
        for d in digests(10_000) {
            counts[ring.owner(&d) as usize] += 1;
        }
        let (min, max) = (
            *counts.iter().min().expect("non-empty"),
            *counts.iter().max().expect("non-empty"),
        );
        assert!(min > 0, "some edge owns nothing: {counts:?}");
        assert!(
            max < min * 4,
            "partition skew too high (min {min}, max {max}): {counts:?}"
        );
    }

    #[test]
    fn single_edge_owns_everything() {
        let ring = HashRing::new(1, 4);
        for d in digests(50) {
            assert_eq!(ring.owner(&d), 0);
            assert_eq!(ring.walk(&d), vec![0]);
        }
    }

    #[test]
    fn growing_the_ring_moves_a_bounded_fraction() {
        // The consistent-hashing property: adding one edge to N should
        // re-own roughly 1/(N+1) of the keyspace, not reshuffle it all.
        let small = HashRing::new(8, 32);
        let big = HashRing::new(9, 32);
        let total = 4_000u64;
        let moved = digests(total)
            .filter(|d| small.owner(d) != big.owner(d))
            .count() as u64;
        assert!(
            moved * 2 < total,
            "adding one edge moved {moved}/{total} digests"
        );
    }
}

//! Quickstart: run the paper's headline comparison in a few lines.
//!
//! Four co-located users run a safe-driving AR app; we replay the same
//! trace through the origin baseline (full cloud offload) and through CoIC
//! (edge descriptor cache) and report the latency reduction.
//!
//! Run with: `cargo run --release --example quickstart`

use coic::core::{compare, SimConfig};
use coic::workload::{Population, SafeDrivingAr, ZoneId, ZoneModel};

fn main() {
    // The workload: co-located users recognizing a shared set of landmarks
    // (the paper's "two safe-driving applications recognize the same stop
    // sign at the same crossroads").
    let trace = SafeDrivingAr {
        population: Population::colocated(4, ZoneId(0)),
        zones: ZoneModel::new(1, 10, 1.0, 3),
        rate_per_sec: 5.0,
        zipf_s: 0.9,
        total_requests: 120,
    }
    .generate(7);

    // The testbed: 400 Mbps WiFi to the edge, 50 Mbps WAN to the cloud.
    let cfg = SimConfig {
        num_clients: 4,
        ..SimConfig::default()
    };

    let (origin, coic, reduction) = compare(&trace, &cfg);

    println!("CoIC quickstart — recognition workload, 4 co-located users");
    println!("───────────────────────────────────────────────────────────");
    println!(
        "origin (no cache):  mean {:7.1} ms   p50 {:7.1} ms",
        origin.mean_latency_ms(),
        origin.latency_ms.clone().median(),
    );
    println!(
        "CoIC (edge cache):  mean {:7.1} ms   p50 {:7.1} ms",
        coic.mean_latency_ms(),
        coic.latency_ms.clone().median(),
    );
    println!(
        "cache hit ratio:    {:.1}%   recognition accuracy: {:.1}%",
        coic.hit_ratio() * 100.0,
        coic.accuracy.unwrap_or(0.0) * 100.0
    );
    println!(
        "WAN bytes:          origin {:.1} MB → CoIC {:.1} MB",
        origin.wan_bytes as f64 / 1e6,
        coic.wan_bytes as f64 / 1e6
    );
    println!("latency reduction:  {reduction:.1}%");
}

//! **Figure 2a** — "Recognition latency reduction under different network
//! conditions. `B_M->E` and `B_E->C` refer to the available bandwidth
//! between mobile client and edge, edge and cloud, respectively."
//!
//! Paper result: CoIC reduces recognition latency by **up to 52.28%**
//! across conditions, with larger reductions when the edge→cloud segment
//! is slower.
//!
//! Run with: `cargo run --release -p coic-bench --bin fig2a`

use coic_bench::{base_config, fig2a_trace, run_pair, FIG2A_CONDITIONS};

fn main() {
    let trace = fig2a_trace(200, 42);
    println!("Figure 2a — recognition latency reduction vs network condition");
    println!("(200 recognition requests, 4 co-located safe-driving users)\n");
    println!(
        "{:>10} {:>10} | {:>12} {:>12} {:>7} | {:>10}",
        "B_M->E", "B_E->C", "origin-mean", "coic-mean", "hit%", "reduction"
    );
    coic_bench::rule(74);
    let mut max_red: f64 = 0.0;
    for cond in FIG2A_CONDITIONS {
        let cfg = cond.apply(&base_config());
        let (origin, coic, red) = run_pair(&trace, &cfg);
        max_red = max_red.max(red);
        println!(
            "{:>7} Mb {:>7} Mb | {:>9.1} ms {:>9.1} ms {:>6.1}% | {:>9.2}%",
            cond.access_mbps,
            cond.wan_mbps,
            origin.mean_latency_ms(),
            coic.mean_latency_ms(),
            coic.hit_ratio() * 100.0,
            red
        );
    }
    coic_bench::rule(74);
    println!("max reduction: {max_red:.2}%   (paper: up to 52.28%)");
}

//! **Ext Q** — cooperative cluster tier: edges × fan-out sweep.
//!
//! Ext G's broadcast peer lookup asks *every* peer on every miss; the
//! cluster tier (DESIGN.md §15) partitions the digest space over a
//! consistent-hash ring and probes at most K peers in ring order from the
//! owner, with demand-driven hot replication. This experiment replays a
//! skewed arena workload (shared global catalogue, one zone per edge)
//! through isolated edges (fan-out 0) and cluster configurations, and
//! contrasts pure partitioning with hot replication.
//!
//! Run with: `cargo run --release -p coic-bench --bin ext_cluster`

use coic_core::cluster::ClusterConfig;
use coic_core::simrun::{run, SimConfig};
use coic_workload::{ArenaMultiplayer, Population, Request};

fn trace(edges: u32, seed: u64) -> Vec<Request> {
    // Two players per zone; zones map one-to-one onto edges. The 2 MB
    // models are globally popular (Zipf 1.1 over one shared catalogue),
    // so isolated edges each pay their own cloud fetch for the same head.
    let models: Vec<(u64, u64)> = (0..24).map(|i| (i, 2 * 1024 * 1024)).collect();
    ArenaMultiplayer {
        population: Population::round_robin(2 * edges, edges),
        models,
        zipf_s: 1.1,
        rate_per_sec: 20.0,
        total_requests: 600,
    }
    .generate(seed)
}

fn cluster(fanout: u32, replicate: u32) -> Option<ClusterConfig> {
    (fanout > 0).then(|| ClusterConfig {
        peer_fanout: fanout,
        replicate_hot: replicate,
        ..ClusterConfig::default()
    })
}

fn row(edges: u32, label: &str, t: &[Request], cfg: Option<ClusterConfig>) {
    let mut report = run(
        t,
        &SimConfig {
            num_clients: 2 * edges,
            num_edges: edges,
            cluster: cfg,
            seed: 5,
            ..SimConfig::default()
        },
    );
    println!(
        "{:>6} {:>9} | {:>6.1}% {:>6} {:>6} | {:>8.1} ms {:>8.1} ms | {:>7.1}",
        edges,
        label,
        report.hit_ratio() * 100.0,
        report.edge_hits,
        report.peer_hits,
        report.mean_latency_ms(),
        report.latency_ms.p99(),
        report.wan_bytes as f64 / 1e6,
    );
}

fn main() {
    println!("Ext Q — cluster tier on the skewed arena workload (seed 5)\n");
    println!(
        "{:>6} {:>9} | {:>7} {:>6} {:>6} | {:>11} {:>11} | {:>7}",
        "edges", "config", "hits%", "local", "peer", "mean-lat", "p99-lat", "WAN MB"
    );
    coic_bench::rule(74);
    for edges in [4u32, 8, 16] {
        let t = trace(edges, 5);
        row(edges, "isolated", &t, cluster(0, 2));
        row(edges, "k=1 r=2", &t, cluster(1, 2));
        row(edges, "k=3 r=2", &t, cluster(3, 2));
        row(edges, "k=1 r=0", &t, cluster(1, 0));
    }
    coic_bench::rule(74);
    println!("Isolated edges decay with scale (each re-fetches the shared head from");
    println!("the cloud); the cluster holds a near-constant hit rate and WAN bill.");
    println!("On a healthy ring fan-out 1 already suffices — placement puts every");
    println!("fetch at the digest's owner — while replication (r>0) converts repeat");
    println!("peer round trips into local hits where the demand lands.");
}

//! Cooperative multi-edge caching.
//!
//! "CoIC" is the *cooperative* framework: results cached for one
//! application/user serve others. Within one edge that happens naturally;
//! this module adds the cross-edge layer — before forwarding a miss to the
//! cloud, an edge may ask peer edges (experiment Ext G). Peer lookups are
//! modelled at the data-structure level here; the simulation driver charges
//! the network round-trips.

use crate::digest::Digest;
use crate::exact::ExactCache;
use crate::policy::PolicyKind;

/// Where a cooperative lookup was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoopOutcome {
    /// Hit in the local edge cache.
    Local,
    /// Hit in peer edge `index` (position within the group).
    Peer(usize),
    /// Every edge missed.
    Miss,
}

/// A group of edge caches that answer each other's misses.
pub struct CoopGroup<V> {
    edges: Vec<ExactCache<V>>,
    peer_hits: u64,
    local_hits: u64,
    misses: u64,
}

impl<V: Clone> CoopGroup<V> {
    /// Create `n` edges, each with `capacity_bytes` under `policy`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: usize, capacity_bytes: u64, policy: PolicyKind) -> Self {
        assert!(n > 0, "a cooperative group needs at least one edge");
        CoopGroup {
            edges: (0..n)
                .map(|_| ExactCache::new(capacity_bytes, policy, None))
                .collect(),
            peer_hits: 0,
            local_hits: 0,
            misses: 0,
        }
    }

    /// Number of edges in the group.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Direct access to one edge (e.g. to inspect stats).
    pub fn edge(&self, i: usize) -> &ExactCache<V> {
        &self.edges[i]
    }

    /// Look `key` up on behalf of edge `home`: local first, then peers in
    /// deterministic order. Returns the value (cloned) and where it came
    /// from.
    pub fn lookup(&mut self, home: usize, key: &Digest, now_ns: u64) -> (Option<V>, CoopOutcome) {
        assert!(home < self.edges.len(), "unknown edge {home}");
        if let Some(v) = self.edges[home].lookup(key, now_ns) {
            self.local_hits += 1;
            return (Some(v.clone()), CoopOutcome::Local);
        }
        for i in 0..self.edges.len() {
            if i == home {
                continue;
            }
            let found = self.edges[i].lookup(key, now_ns).cloned();
            if let Some(v) = found {
                self.peer_hits += 1;
                return (Some(v), CoopOutcome::Peer(i));
            }
        }
        self.misses += 1;
        (None, CoopOutcome::Miss)
    }

    /// Like [`CoopGroup::lookup`], but on a peer hit also fills the home
    /// edge with the value (`size` bytes) so the next local lookup hits.
    pub fn lookup_and_fill(
        &mut self,
        home: usize,
        key: &Digest,
        size: u64,
        now_ns: u64,
    ) -> (Option<V>, CoopOutcome) {
        let (value, outcome) = self.lookup(home, key, now_ns);
        if let (Some(v), CoopOutcome::Peer(_)) = (&value, outcome) {
            self.edges[home].insert(*key, v.clone(), size, now_ns);
        }
        (value, outcome)
    }

    /// Insert into edge `home`.
    pub fn insert(&mut self, home: usize, key: Digest, value: V, size: u64, now_ns: u64) {
        self.edges[home].insert(key, value, size, now_ns);
    }

    /// (local hits, peer hits, misses) so far.
    pub fn outcome_counts(&self) -> (u64, u64, u64) {
        (self.local_hits, self.peer_hits, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_hit_preferred() {
        let mut g: CoopGroup<u32> = CoopGroup::new(3, 1 << 20, PolicyKind::Lru);
        let k = Digest::of(b"model");
        g.insert(0, k, 7, 100, 0);
        g.insert(1, k, 7, 100, 0);
        let (v, o) = g.lookup(0, &k, 0);
        assert_eq!(v, Some(7));
        assert_eq!(o, CoopOutcome::Local);
    }

    #[test]
    fn peer_hit_found_and_counted() {
        let mut g: CoopGroup<u32> = CoopGroup::new(3, 1 << 20, PolicyKind::Lru);
        let k = Digest::of(b"avatar");
        g.insert(2, k, 9, 100, 0);
        let (v, o) = g.lookup(0, &k, 0);
        assert_eq!(v, Some(9));
        assert_eq!(o, CoopOutcome::Peer(2));
        assert_eq!(g.outcome_counts(), (0, 1, 0));
    }

    #[test]
    fn group_miss() {
        let mut g: CoopGroup<u32> = CoopGroup::new(2, 1 << 20, PolicyKind::Lru);
        let (v, o) = g.lookup(1, &Digest::of(b"nope"), 0);
        assert_eq!(v, None);
        assert_eq!(o, CoopOutcome::Miss);
        assert_eq!(g.outcome_counts(), (0, 0, 1));
    }

    #[test]
    #[should_panic(expected = "at least one edge")]
    fn empty_group_rejected() {
        let _: CoopGroup<u32> = CoopGroup::new(0, 1024, PolicyKind::Lru);
    }

    #[test]
    fn fill_on_peer_hit_caches_locally() {
        let mut g: CoopGroup<u32> = CoopGroup::new(2, 1 << 20, PolicyKind::Lru);
        let k = Digest::of(b"pano");
        g.insert(1, k, 3, 200, 0);
        let (v, o) = g.lookup_and_fill(0, &k, 200, 0);
        assert_eq!(v, Some(3));
        assert_eq!(o, CoopOutcome::Peer(1));
        // Second lookup from the same home edge hits locally.
        let (_, o2) = g.lookup_and_fill(0, &k, 200, 0);
        assert_eq!(o2, CoopOutcome::Local);
    }
}

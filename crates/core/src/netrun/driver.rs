//! The live server's IO-driver seam.
//!
//! [`IoDriver`] is the narrow surface a server-side IO strategy must
//! implement: take ownership of accepted sockets, react to readiness, and
//! get a periodic tick. A [`DriverServer`] owns the accept loop, a
//! [`Poller`] and one driver, and runs all three on a single IO thread —
//! the same runner hosts both the legacy [`ThreadsDriver`] (which hands
//! each socket to a blocking per-connection thread and registers nothing
//! with the poller) and the readiness-driven
//! [`EventLoop`](crate::netrun::evloop::EventLoop). `coic live --driver
//! {threads,evloop}` selects between them, and the acceptance suite diffs
//! decision traces across both.
//!
//! Frame handlers keep the [`FrameServer`](coic_netsim::rt::FrameServer)
//! contract: one inbound frame maps to at most one reply, and returning
//! `None` closes the connection.

use super::poller::{Poller, ScanPoller, Token};
use crate::config::{DriverKind, EvloopConfig};
use bytes::Bytes;
use coic_netsim::rt::FrameConn;
use coic_obs::MetricsRegistry;
use std::collections::HashMap;
use std::io;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

/// The per-frame service function: inbound frame in, optional reply frame
/// out, `None` closes the connection.
pub type FrameHandler = Arc<dyn Fn(Bytes) -> Option<Vec<u8>> + Send + Sync>;

/// Server-side IO strategy, driven by a [`DriverServer`]'s runner thread.
pub trait IoDriver: Send {
    /// Take ownership of a freshly accepted socket. The driver decides
    /// whether to register it with `poller` (event loop) or hand it to a
    /// dedicated thread (legacy driver).
    fn accept(&mut self, stream: TcpStream, poller: &mut dyn Poller) -> io::Result<()>;

    /// `token` has readable bytes (or hung up).
    fn readable(&mut self, token: Token, hangup: bool, poller: &mut dyn Poller);

    /// `token` can likely accept queued output.
    fn writable(&mut self, token: Token, poller: &mut dyn Poller);

    /// Housekeeping between readiness batches (reap worker completions,
    /// resume paused reads, flush eager writes).
    fn tick(&mut self, poller: &mut dyn Poller);

    /// Server is stopping: sever every live connection and release
    /// resources. Called exactly once, on the runner thread.
    fn shutdown(&mut self, poller: &mut dyn Poller);
}

// --- loop observability -------------------------------------------------

/// Shared atomic counters for the IO loop (`loop.*` vocabulary).
#[derive(Default)]
pub struct LoopStats {
    wakeups: AtomicU64,
    frames: AtomicU64,
    batches: AtomicU64,
    coalesced_writes: AtomicU64,
    read_paused: AtomicU64,
    conn_shed: AtomicU64,
    accepted: AtomicU64,
}

impl LoopStats {
    pub(crate) fn count_wakeup(&self) {
        self.wakeups.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn count_frames(&self, n: u64) {
        self.frames.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn count_batch(&self) {
        self.batches.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn count_coalesced_write(&self) {
        self.coalesced_writes.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn count_read_paused(&self) {
        self.read_paused.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn count_conn_shed(&self) {
        self.conn_shed.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn count_accepted(&self) {
        self.accepted.fetch_add(1, Ordering::Relaxed);
    }

    /// Consistent-enough copy of every counter.
    pub fn snapshot(&self) -> LoopStatsSnapshot {
        LoopStatsSnapshot {
            wakeups: self.wakeups.load(Ordering::Relaxed),
            frames: self.frames.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            coalesced_writes: self.coalesced_writes.load(Ordering::Relaxed),
            read_paused: self.read_paused.load(Ordering::Relaxed),
            conn_shed: self.conn_shed.load(Ordering::Relaxed),
            accepted: self.accepted.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time copy of [`LoopStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LoopStatsSnapshot {
    /// Poller wakeups that delivered at least one readiness event.
    pub wakeups: u64,
    /// Frames decoded off sockets.
    pub frames: u64,
    /// Readable drains (one per connection per wakeup that read bytes);
    /// `frames / batches` is the batching factor of the decode path.
    pub batches: u64,
    /// Flushes that pushed two or more queued reply frames in one
    /// writable event.
    pub coalesced_writes: u64,
    /// Read-pause transitions (backpressure engaging on a connection).
    pub read_paused: u64,
    /// Connections shed for exceeding the bounded write queue.
    pub conn_shed: u64,
    /// Connections accepted.
    pub accepted: u64,
}

impl LoopStatsSnapshot {
    /// Mean frames decoded per event-delivering wakeup.
    pub fn frames_per_wakeup(&self) -> f64 {
        if self.wakeups == 0 {
            0.0
        } else {
            self.frames as f64 / self.wakeups as f64
        }
    }

    /// Publish the `loop.*` counters into `reg`.
    pub fn publish(&self, reg: &MetricsRegistry) {
        reg.counter_add("loop.wakeups", self.wakeups);
        reg.counter_add("loop.frames", self.frames);
        reg.counter_add("loop.batches", self.batches);
        reg.counter_add("loop.coalesced_writes", self.coalesced_writes);
        reg.counter_add("loop.read_paused", self.read_paused);
        reg.counter_add("loop.conn_shed", self.conn_shed);
        reg.counter_add("loop.accepted", self.accepted);
    }
}

// --- runner -------------------------------------------------------------

/// Idle park bound of one runner iteration; the poller's waker cuts it
/// short, so this is a liveness backstop (accept latency, stop latency),
/// not a responsiveness budget.
const RUN_SLICE: Duration = Duration::from_millis(1);

/// A live server bound to one listener, serving connections through an
/// [`IoDriver`]. Dropping the handle (or calling
/// [`DriverServer::shutdown`]) stops the runner, severs live connections
/// and joins the IO thread — the same teardown contract as
/// [`FrameServer`](coic_netsim::rt::FrameServer), which the chaos tests
/// rely on to kill an edge mid-workload.
pub struct DriverServer {
    addr: SocketAddr,
    kind: DriverKind,
    stop: Arc<AtomicBool>,
    waker: Arc<super::poller::PollWaker>,
    stats: Arc<LoopStats>,
    thread: Option<JoinHandle<()>>,
}

impl DriverServer {
    /// Bind `addr` and serve frames through the driver selected by
    /// `kind`, with `handler` as the service function.
    pub fn spawn<A, F>(
        addr: A,
        kind: DriverKind,
        evcfg: EvloopConfig,
        handler: F,
    ) -> io::Result<DriverServer>
    where
        A: ToSocketAddrs,
        F: Fn(Bytes) -> Option<Vec<u8>> + Send + Sync + 'static,
    {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(LoopStats::default());
        let handler: FrameHandler = Arc::new(handler);
        let mut poller = ScanPoller::new();
        let waker = poller.waker();
        let mut driver: Box<dyn IoDriver> = match kind {
            DriverKind::Threads => Box::new(ThreadsDriver::new(handler, stop.clone())),
            DriverKind::Evloop => Box::new(super::evloop::EventLoop::new(
                handler,
                evcfg,
                stats.clone(),
                waker.clone(),
            )),
        };
        let run_stop = stop.clone();
        let run_stats = stats.clone();
        let thread = std::thread::Builder::new()
            .name("coic-io-loop".into())
            .spawn(move || {
                let mut events = Vec::new();
                loop {
                    if run_stop.load(Ordering::SeqCst) {
                        driver.shutdown(&mut poller);
                        return;
                    }
                    loop {
                        match listener.accept() {
                            Ok((stream, _)) => {
                                run_stats.count_accepted();
                                let _ = driver.accept(stream, &mut poller);
                            }
                            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                            Err(_) => break,
                        }
                    }
                    let _ = poller.wait(&mut events, RUN_SLICE);
                    if !events.is_empty() {
                        run_stats.count_wakeup();
                    }
                    for ev in events.drain(..) {
                        if ev.readable || ev.hangup {
                            driver.readable(ev.token, ev.hangup, &mut poller);
                        }
                        if ev.writable {
                            driver.writable(ev.token, &mut poller);
                        }
                    }
                    driver.tick(&mut poller);
                }
            })?;
        Ok(DriverServer {
            addr,
            kind,
            stop,
            waker,
            stats,
            thread: Some(thread),
        })
    }

    /// Bound listening address.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Which driver this server runs.
    pub fn kind(&self) -> DriverKind {
        self.kind
    }

    /// Live `loop.*` counters (all zero under the threads driver except
    /// `accepted`).
    pub fn loop_stats(&self) -> LoopStatsSnapshot {
        self.stats.snapshot()
    }

    /// Stop accepting, sever live connections, join the IO thread.
    /// Idempotent; also runs on drop.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        self.waker.wake();
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for DriverServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

// --- legacy thread-per-connection driver --------------------------------

/// Registry of live per-connection sockets so shutdown can sever them.
#[derive(Default)]
struct ThreadConns {
    conns: Mutex<HashMap<u64, TcpStream>>,
    next_id: AtomicU64,
}

impl ThreadConns {
    fn register(&self, stream: &TcpStream) -> Option<u64> {
        let clone = stream.try_clone().ok()?;
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.conns
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(id, clone);
        Some(id)
    }

    fn deregister(&self, id: u64) {
        self.conns
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .remove(&id);
    }

    fn sever_all(&self) {
        for (_, conn) in self
            .conns
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .drain()
        {
            let _ = conn.shutdown(Shutdown::Both);
        }
    }
}

/// The legacy thread-per-connection strategy behind the [`IoDriver`]
/// seam: every accepted socket gets a dedicated blocking service thread
/// (recv → handler → send), and nothing is registered with the poller.
pub struct ThreadsDriver {
    handler: FrameHandler,
    stop: Arc<AtomicBool>,
    conns: Arc<ThreadConns>,
}

impl ThreadsDriver {
    /// A driver dispatching to `handler`, observing `stop` for teardown.
    pub fn new(handler: FrameHandler, stop: Arc<AtomicBool>) -> ThreadsDriver {
        ThreadsDriver {
            handler,
            stop,
            conns: Arc::new(ThreadConns::default()),
        }
    }
}

impl IoDriver for ThreadsDriver {
    fn accept(&mut self, stream: TcpStream, _poller: &mut dyn Poller) -> io::Result<()> {
        // The listener is nonblocking; this connection's service thread
        // must not be.
        stream.set_nonblocking(false)?;
        let Some(id) = self.conns.register(&stream) else {
            return Ok(());
        };
        let handler = self.handler.clone();
        let stop = self.stop.clone();
        let conns = self.conns.clone();
        let _ = std::thread::Builder::new()
            .name("coic-frame-conn".into())
            .spawn(move || {
                if let Ok(mut conn) = FrameConn::new(stream) {
                    while !stop.load(Ordering::SeqCst) {
                        let Ok(frame) = conn.recv() else { break };
                        match handler(frame) {
                            Some(reply) => {
                                if conn.send(&reply).is_err() {
                                    break;
                                }
                            }
                            None => break,
                        }
                    }
                }
                conns.deregister(id);
            });
        Ok(())
    }

    fn readable(&mut self, _token: Token, _hangup: bool, _poller: &mut dyn Poller) {}

    fn writable(&mut self, _token: Token, _poller: &mut dyn Poller) {}

    fn tick(&mut self, _poller: &mut dyn Poller) {}

    fn shutdown(&mut self, _poller: &mut dyn Poller) {
        self.conns.sever_all();
    }
}

//! `coic analyze trace`: a declarative invariant verifier over the
//! decision-trace JSONL and metrics snapshot a seeded run exports.
//!
//! Static analysis proves source-level pairing; this closes the loop at
//! runtime: every probe reaches a terminal outcome, every `cluster.*`
//! counter equals its event count, breaker transitions follow the legal
//! state machine, and a downed edge stays silent. Invariants live in a
//! checked-in TOML (`analyze/trace_invariants.toml`) so CI and local
//! runs verify the same contract.
//!
//! Invariant kinds:
//! * `monotonic-time` — event timestamps never decrease (the exporter
//!   appends in virtual-time order; a regression means interleaved or
//!   corrupted logs).
//! * `requires-followup` — every `trigger` event group (by `key` fields)
//!   is followed by at least one of `followup` with the same key; an
//!   optional `unless`/`unless-key` marker (e.g. `edge.down`) excuses
//!   groups whose emitter crashed mid-flight.
//! * `counter-equals-events` — a metrics counter equals the count of a
//!   trace event.
//! * `legal-transitions` — per `key` group, `from`/`to` fields follow
//!   `legal` edges, continuously from `initial` (config may allow
//!   `implicit` hops that happen without an event, e.g. the silent
//!   half-opening of a cooled breaker).
//! * `counter-equals-transitions` — a counter equals the count of
//!   transition events whose `(from, to)` is in `pairs`.
//! * `quiet-after` — after a `marker` event for a `key` group, no
//!   further events mention that group.

use std::collections::BTreeMap;
use std::fmt;
use std::path::Path;

use crate::json::{self, Json};
use crate::toml::{self, Table};

/// One declared invariant.
#[derive(Debug)]
pub struct Invariant {
    /// Cited in the verifier's output.
    pub id: String,
    kind: InvKind,
}

#[derive(Debug)]
enum InvKind {
    MonotonicTime,
    RequiresFollowup {
        trigger: String,
        followups: Vec<String>,
        key: Vec<String>,
        /// `(marker event, marker key fields)`: a trigger group is excused
        /// when a marker exists whose key matches the trigger's same
        /// fields (a crashed edge legitimately never settles its probes).
        unless: Option<(String, Vec<String>)>,
    },
    CounterEqualsEvents {
        counter: String,
        event: String,
    },
    LegalTransitions {
        event: String,
        key: Vec<String>,
        from: String,
        to: String,
        initial: String,
        legal: Vec<(String, String)>,
        implicit: Vec<(String, String)>,
    },
    CounterEqualsTransitions {
        counter: String,
        event: String,
        from: String,
        to: String,
        pairs: Vec<(String, String)>,
    },
    QuietAfter {
        marker: String,
        key: Vec<String>,
    },
}

/// One trace record (`enter` / `exit` / `event`).
#[derive(Debug)]
struct Ev {
    t: u64,
    name: String,
    is_event: bool,
    /// Scalar fields, stringified.
    fields: BTreeMap<String, String>,
    /// 1-based JSONL line.
    line: usize,
}

impl Ev {
    /// The key tuple for `key` fields; `None` if any field is absent.
    fn key_tuple(&self, key: &[String]) -> Option<Vec<String>> {
        key.iter()
            .map(|k| self.fields.get(k).cloned())
            .collect::<Option<Vec<_>>>()
    }
}

fn show_key(key: &[String], tuple: &[String]) -> String {
    key.iter()
        .zip(tuple)
        .map(|(k, v)| format!("{k}={v}"))
        .collect::<Vec<_>>()
        .join(" ")
}

/// Parse the invariants file.
pub fn parse_invariants(source: &str) -> Result<Vec<Invariant>, String> {
    let doc = toml::parse(source)?;
    let tables = doc
        .tables
        .get("invariant")
        .map(Vec::as_slice)
        .unwrap_or(&[]);
    if tables.is_empty() {
        return Err("invariants file defines no [[invariant]] tables".into());
    }
    let mut out = Vec::new();
    for (i, table) in tables.iter().enumerate() {
        out.push(parse_invariant(table).map_err(|e| format!("[[invariant]] #{}: {e}", i + 1))?);
    }
    let mut ids: Vec<&str> = out.iter().map(|inv| inv.id.as_str()).collect();
    ids.sort_unstable();
    ids.dedup();
    if ids.len() != out.len() {
        return Err("duplicate invariant ids".into());
    }
    Ok(out)
}

fn get_str(table: &Table, key: &str) -> Result<String, String> {
    table
        .get(key)
        .ok_or_else(|| format!("missing key `{key}`"))?
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| format!("key `{key}` must be a string"))
}

fn get_str_array(table: &Table, key: &str) -> Result<Vec<String>, String> {
    table
        .get(key)
        .ok_or_else(|| format!("missing key `{key}`"))?
        .as_str_array()
        .map(<[String]>::to_vec)
        .ok_or_else(|| format!("key `{key}` must be an array of strings"))
}

fn get_pairs(table: &Table, key: &str) -> Result<Vec<(String, String)>, String> {
    get_str_array(table, key)?
        .iter()
        .map(|e| {
            e.split_once("->")
                .map(|(a, b)| (a.trim().to_string(), b.trim().to_string()))
                .filter(|(a, b)| !a.is_empty() && !b.is_empty())
                .ok_or_else(|| format!("`{e}` must look like \"from -> to\""))
        })
        .collect()
}

fn opt_pairs(table: &Table, key: &str) -> Result<Vec<(String, String)>, String> {
    if table.get(key).is_none() {
        return Ok(Vec::new());
    }
    get_pairs(table, key)
}

fn parse_invariant(table: &Table) -> Result<Invariant, String> {
    let id = get_str(table, "id")?;
    let kind = match get_str(table, "kind")?.as_str() {
        "monotonic-time" => InvKind::MonotonicTime,
        "requires-followup" => InvKind::RequiresFollowup {
            trigger: get_str(table, "trigger")?,
            followups: get_str_array(table, "followup")?,
            key: get_str_array(table, "key")?,
            unless: match table.get("unless") {
                None => None,
                Some(_) => Some((
                    get_str(table, "unless")?,
                    get_str_array(table, "unless-key")?,
                )),
            },
        },
        "counter-equals-events" => InvKind::CounterEqualsEvents {
            counter: get_str(table, "counter")?,
            event: get_str(table, "event")?,
        },
        "legal-transitions" => InvKind::LegalTransitions {
            event: get_str(table, "event")?,
            key: get_str_array(table, "key")?,
            from: get_str(table, "from")?,
            to: get_str(table, "to")?,
            initial: get_str(table, "initial")?,
            legal: get_pairs(table, "legal")?,
            implicit: opt_pairs(table, "implicit")?,
        },
        "counter-equals-transitions" => InvKind::CounterEqualsTransitions {
            counter: get_str(table, "counter")?,
            event: get_str(table, "event")?,
            from: get_str(table, "from")?,
            to: get_str(table, "to")?,
            pairs: get_pairs(table, "pairs")?,
        },
        "quiet-after" => InvKind::QuietAfter {
            marker: get_str(table, "marker")?,
            key: get_str_array(table, "key")?,
        },
        other => return Err(format!("unknown invariant kind `{other}`")),
    };
    Ok(Invariant { id, kind })
}

/// Parse the JSONL trace export.
fn parse_trace(text: &str) -> Result<Vec<Ev>, String> {
    let mut out = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let lineno = idx + 1;
        let v = json::parse(line).map_err(|e| format!("trace line {lineno}: {e}"))?;
        let t = v
            .get("t")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("trace line {lineno}: missing numeric `t`"))?;
        let kind = v
            .get("k")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("trace line {lineno}: missing `k`"))?;
        let name = v
            .get("n")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("trace line {lineno}: missing `n`"))?;
        let mut fields = BTreeMap::new();
        if let Some(Json::Obj(fs)) = v.get("f") {
            for (k, fv) in fs {
                if let Some(text) = fv.scalar_text() {
                    fields.insert(k.clone(), text);
                }
            }
        }
        out.push(Ev {
            t,
            name: name.to_string(),
            is_event: kind == "event",
            fields,
            line: lineno,
        });
    }
    Ok(out)
}

/// Counter values from the canonical metrics dump (`counter <name> <v>`).
fn parse_counters(text: &str) -> Result<BTreeMap<String, u64>, String> {
    let mut out = BTreeMap::new();
    for (idx, line) in text.lines().enumerate() {
        let Some(rest) = line.strip_prefix("counter ") else {
            continue;
        };
        let (name, value) = rest
            .rsplit_once(' ')
            .ok_or_else(|| format!("metrics line {}: malformed counter", idx + 1))?;
        let value: u64 = value
            .parse()
            .map_err(|_| format!("metrics line {}: bad counter value", idx + 1))?;
        out.insert(name.to_string(), value);
    }
    Ok(out)
}

/// Evaluate one invariant: `(how many things were checked, violations)`.
fn eval(inv: &Invariant, events: &[Ev], counters: &BTreeMap<String, u64>) -> (usize, Vec<String>) {
    let mut v = Vec::new();
    match &inv.kind {
        InvKind::MonotonicTime => {
            let mut prev: Option<(u64, usize)> = None;
            for ev in events {
                if let Some((pt, pline)) = prev {
                    if ev.t < pt {
                        v.push(format!(
                            "line {}: t={} goes backwards (line {} had t={})",
                            ev.line, ev.t, pline, pt
                        ));
                    }
                }
                prev = Some((ev.t, ev.line));
            }
            (events.len(), v)
        }
        InvKind::RequiresFollowup {
            trigger,
            followups,
            key,
            unless,
        } => {
            // key tuple -> first trigger event
            let mut open: BTreeMap<Vec<String>, &Ev> = BTreeMap::new();
            for ev in events.iter().filter(|e| e.is_event && e.name == *trigger) {
                match ev.key_tuple(key) {
                    Some(tuple) => {
                        open.entry(tuple).or_insert(ev);
                    }
                    None => v.push(format!(
                        "line {}: `{trigger}` is missing key field(s) {key:?}",
                        ev.line
                    )),
                }
            }
            let checked = open.len();
            for ev in events
                .iter()
                .filter(|e| e.is_event && followups.contains(&e.name))
            {
                if let Some(tuple) = ev.key_tuple(key) {
                    if let Some(t0) = open.get(&tuple).map(|e| e.t) {
                        if ev.t >= t0 {
                            open.remove(&tuple);
                        }
                    }
                }
            }
            // A marker (e.g. `edge.down`) excuses groups it matches on the
            // marker's own key fields: the emitter crashed mid-flight.
            if let Some((marker, mkey)) = unless {
                let markers: Vec<Vec<String>> = events
                    .iter()
                    .filter(|e| e.is_event && e.name == *marker)
                    .filter_map(|e| e.key_tuple(mkey))
                    .collect();
                open.retain(|_, trig| match trig.key_tuple(mkey) {
                    Some(t) => !markers.contains(&t),
                    None => true,
                });
            }
            for (tuple, trig) in open {
                v.push(format!(
                    "line {}: `{trigger}` {} never reaches any of {followups:?}",
                    trig.line,
                    show_key(key, &tuple)
                ));
            }
            (checked, v)
        }
        InvKind::CounterEqualsEvents { counter, event } => {
            let n = events
                .iter()
                .filter(|e| e.is_event && e.name == *event)
                .count() as u64;
            let c = counters.get(counter).copied().unwrap_or(0);
            if n != c {
                v.push(format!(
                    "counter `{counter}` = {c} but {n} `{event}` event(s) in the trace"
                ));
            }
            (1, v)
        }
        InvKind::LegalTransitions {
            event,
            key,
            from,
            to,
            initial,
            legal,
            implicit,
        } => {
            let mut state: BTreeMap<Vec<String>, String> = BTreeMap::new();
            let mut checked = 0usize;
            for ev in events.iter().filter(|e| e.is_event && e.name == *event) {
                let Some(tuple) = ev.key_tuple(key) else {
                    v.push(format!(
                        "line {}: `{event}` is missing key field(s) {key:?}",
                        ev.line
                    ));
                    continue;
                };
                let (Some(f), Some(t)) = (ev.fields.get(from), ev.fields.get(to)) else {
                    v.push(format!(
                        "line {}: `{event}` is missing `{from}`/`{to}` fields",
                        ev.line
                    ));
                    continue;
                };
                checked += 1;
                let current = state
                    .get(&tuple)
                    .cloned()
                    .unwrap_or_else(|| initial.clone());
                if *f != current && !implicit.iter().any(|(a, b)| *a == current && b == f) {
                    v.push(format!(
                        "line {}: {} was `{current}` but transition starts at `{f}`",
                        ev.line,
                        show_key(key, &tuple)
                    ));
                }
                if !legal.iter().any(|(a, b)| a == f && b == t) {
                    v.push(format!(
                        "line {}: {} illegal transition `{f}` -> `{t}`",
                        ev.line,
                        show_key(key, &tuple)
                    ));
                }
                state.insert(tuple, t.clone());
            }
            (checked, v)
        }
        InvKind::CounterEqualsTransitions {
            counter,
            event,
            from,
            to,
            pairs,
        } => {
            let n = events
                .iter()
                .filter(|e| e.is_event && e.name == *event)
                .filter(|e| match (e.fields.get(from), e.fields.get(to)) {
                    (Some(f), Some(t)) => pairs.iter().any(|(a, b)| a == f && b == t),
                    _ => false,
                })
                .count() as u64;
            let c = counters.get(counter).copied().unwrap_or(0);
            if n != c {
                v.push(format!(
                    "counter `{counter}` = {c} but {n} `{event}` transition(s) matching {pairs:?}"
                ));
            }
            (1, v)
        }
        InvKind::QuietAfter { marker, key } => {
            let mut downs: BTreeMap<Vec<String>, (u64, usize)> = BTreeMap::new();
            for ev in events.iter().filter(|e| e.is_event && e.name == *marker) {
                if let Some(tuple) = ev.key_tuple(key) {
                    let entry = downs.entry(tuple).or_insert((ev.t, ev.line));
                    if ev.t < entry.0 {
                        *entry = (ev.t, ev.line);
                    }
                }
            }
            for ev in events.iter().filter(|e| e.name != *marker) {
                let Some(tuple) = ev.key_tuple(key) else {
                    continue;
                };
                if let Some(&(t0, mline)) = downs.get(&tuple) {
                    if ev.t >= t0 {
                        v.push(format!(
                            "line {}: `{}` {} at t={} after `{marker}` (line {mline}, t={t0})",
                            ev.line,
                            ev.name,
                            show_key(key, &tuple),
                            ev.t
                        ));
                    }
                }
            }
            (downs.len(), v)
        }
    }
}

/// Cap per-invariant violation output; totals stay exact.
const MAX_SHOWN: usize = 8;

/// Verify `trace_path` + `metrics_path` against `invariants_path`,
/// printing a per-invariant report to `out`. Returns whether the trace
/// satisfies every invariant; `Err` for unreadable/corrupt inputs.
pub fn run_trace_check(
    trace_path: &Path,
    metrics_path: &Path,
    invariants_path: &Path,
    out: &mut dyn fmt::Write,
) -> Result<bool, String> {
    let read = |p: &Path| -> Result<String, String> {
        std::fs::read_to_string(p).map_err(|e| format!("{}: {e}", p.display()))
    };
    let invariants = parse_invariants(&read(invariants_path)?)
        .map_err(|e| format!("{}: {e}", invariants_path.display()))?;
    let events =
        parse_trace(&read(trace_path)?).map_err(|e| format!("{}: {e}", trace_path.display()))?;
    let counters = parse_counters(&read(metrics_path)?)
        .map_err(|e| format!("{}: {e}", metrics_path.display()))?;

    let mut total = 0usize;
    for inv in &invariants {
        let (checked, violations) = eval(inv, &events, &counters);
        if violations.is_empty() {
            writeln!(out, "ok {} ({checked} checked)", inv.id).map_err(|e| e.to_string())?;
        } else {
            for violation in violations.iter().take(MAX_SHOWN) {
                writeln!(out, "violation {}: {violation}", inv.id).map_err(|e| e.to_string())?;
            }
            if violations.len() > MAX_SHOWN {
                writeln!(
                    out,
                    "violation {}: ... and {} more",
                    inv.id,
                    violations.len() - MAX_SHOWN
                )
                .map_err(|e| e.to_string())?;
            }
            total += violations.len();
        }
    }
    if total == 0 {
        writeln!(
            out,
            "trace clean: {} event(s), {} invariant(s)",
            events.len(),
            invariants.len()
        )
        .map_err(|e| e.to_string())?;
    } else {
        writeln!(out, "{total} trace violation(s)").map_err(|e| e.to_string())?;
    }
    Ok(total == 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    const INVARIANTS: &str = r#"
[[invariant]]
id = "mono"
kind = "monotonic-time"

[[invariant]]
id = "probe-terminal"
kind = "requires-followup"
trigger = "decision.peer_probe"
followup = ["decision.peer_hit", "decision.peer_miss", "decision.peer_timeout"]
key = ["edge", "req"]

[[invariant]]
id = "probe-count"
kind = "counter-equals-events"
counter = "cluster.peer_probe"
event = "decision.peer_probe"

[[invariant]]
id = "breaker"
kind = "legal-transitions"
event = "cluster.peer_state"
key = ["edge", "peer"]
from = "from"
to = "to"
initial = "closed"
legal = ["closed -> open", "half_open -> closed", "half_open -> open"]
implicit = ["open -> half_open"]

[[invariant]]
id = "rebuilds"
kind = "counter-equals-transitions"
counter = "cluster.ring_rebuild"
event = "cluster.peer_state"
from = "from"
to = "to"
pairs = ["closed -> open", "half_open -> closed"]

[[invariant]]
id = "quiet"
kind = "quiet-after"
marker = "edge.down"
key = ["edge"]
"#;

    fn line(t: u64, k: &str, n: &str, fields: &[(&str, &str)]) -> String {
        let f = fields
            .iter()
            .map(|(k, v)| {
                if v.chars().all(|c| c.is_ascii_digit()) {
                    format!("\"{k}\":{v}")
                } else {
                    format!("\"{k}\":\"{v}\"")
                }
            })
            .collect::<Vec<_>>()
            .join(",");
        format!("{{\"t\":{t},\"k\":\"{k}\",\"n\":\"{n}\",\"f\":{{{f}}}}}")
    }

    fn eval_all(trace: &[String], metrics: &str) -> Vec<String> {
        let invariants = parse_invariants(INVARIANTS).unwrap();
        let events = parse_trace(&trace.join("\n")).unwrap();
        let counters = parse_counters(metrics).unwrap();
        let mut out = Vec::new();
        for inv in &invariants {
            let (_, vs) = eval(inv, &events, &counters);
            out.extend(vs.into_iter().map(|v| format!("{}: {v}", inv.id)));
        }
        out
    }

    fn good_trace() -> Vec<String> {
        vec![
            line(
                10,
                "event",
                "decision.peer_probe",
                &[("edge", "0"), ("req", "7"), ("peer", "1")],
            ),
            line(
                20,
                "event",
                "decision.peer_hit",
                &[("edge", "0"), ("req", "7"), ("peer", "1")],
            ),
            line(
                30,
                "event",
                "decision.peer_probe",
                &[("edge", "2"), ("req", "9"), ("peer", "1")],
            ),
            line(
                40,
                "event",
                "cluster.peer_state",
                &[
                    ("edge", "2"),
                    ("peer", "1"),
                    ("from", "closed"),
                    ("to", "open"),
                ],
            ),
            line(
                40,
                "event",
                "decision.peer_timeout",
                &[("edge", "2"), ("req", "9"), ("peer", "1")],
            ),
            line(
                90,
                "event",
                "cluster.peer_state",
                &[
                    ("edge", "2"),
                    ("peer", "1"),
                    ("from", "half_open"),
                    ("to", "closed"),
                ],
            ),
            line(95, "event", "edge.down", &[("edge", "3")]),
        ]
    }

    const GOOD_METRICS: &str =
        "counter cluster.peer_probe 2\ncounter cluster.ring_rebuild 2\ngauge x 1\n";

    #[test]
    fn clean_trace_passes_every_invariant() {
        assert_eq!(eval_all(&good_trace(), GOOD_METRICS), Vec::<String>::new());
    }

    #[test]
    fn unterminated_probe_is_caught() {
        let mut t = good_trace();
        t.remove(4); // drop the peer_timeout terminal for (edge=2, req=9)
        let got = eval_all(
            &t,
            "counter cluster.peer_probe 2\ncounter cluster.ring_rebuild 2\n",
        );
        assert_eq!(got.len(), 1, "{got:?}");
        assert!(got[0].contains("probe-terminal"), "{got:?}");
        assert!(got[0].contains("edge=2 req=9"), "{got:?}");
    }

    #[test]
    fn counter_event_drift_is_caught() {
        let got = eval_all(
            &good_trace(),
            "counter cluster.peer_probe 3\ncounter cluster.ring_rebuild 2\n",
        );
        assert_eq!(got.len(), 1, "{got:?}");
        assert!(got[0].contains("probe-count"), "{got:?}");
        assert!(got[0].contains("= 3 but 2"), "{got:?}");
    }

    #[test]
    fn illegal_and_discontinuous_transitions_are_caught() {
        let mut t = good_trace();
        // open -> closed is not a legal edge (must pass through half_open),
        // and it also breaks continuity for the *next* transition.
        t[5] = line(
            90,
            "event",
            "cluster.peer_state",
            &[
                ("edge", "2"),
                ("peer", "1"),
                ("from", "open"),
                ("to", "closed"),
            ],
        );
        let got = eval_all(&t, GOOD_METRICS);
        assert!(
            got.iter()
                .any(|v| v.contains("breaker") && v.contains("illegal")),
            "{got:?}"
        );
        // The implicit open -> half_open hop stays legal (the good trace
        // exercises it: closed->open then half_open->closed).
        assert_eq!(eval_all(&good_trace(), GOOD_METRICS), Vec::<String>::new());
    }

    #[test]
    fn rebuild_counter_counts_only_ring_changing_transitions() {
        // Open at 40, silently half-open, re-open at 50 (no rebuild),
        // silently half-open again, close at 90: still two
        // ring-changing transitions, so GOOD_METRICS stays valid.
        let mut t = good_trace();
        t.insert(
            5,
            line(
                50,
                "event",
                "cluster.peer_state",
                &[
                    ("edge", "2"),
                    ("peer", "1"),
                    ("from", "half_open"),
                    ("to", "open"),
                ],
            ),
        );
        let got = eval_all(&t, GOOD_METRICS);
        assert_eq!(got, Vec::<String>::new(), "{got:?}");
        // But if the counter disagrees, it is caught.
        let got = eval_all(
            &t,
            "counter cluster.peer_probe 2\ncounter cluster.ring_rebuild 5\n",
        );
        assert!(
            got.iter()
                .any(|v| v.contains("rebuilds") && v.contains("= 5 but 2")),
            "{got:?}"
        );
    }

    #[test]
    fn events_after_edge_down_are_caught() {
        let mut t = good_trace();
        t.push(line(
            99,
            "event",
            "decision.peer_probe",
            &[("edge", "3"), ("req", "4"), ("peer", "0")],
        ));
        let got = eval_all(
            &t,
            "counter cluster.peer_probe 3\ncounter cluster.ring_rebuild 2\n",
        );
        assert!(
            got.iter()
                .any(|v| v.contains("quiet") && v.contains("edge.down")),
            "{got:?}"
        );
        // The probe it adds is also unterminated; both invariants fire.
        assert!(got.iter().any(|v| v.contains("probe-terminal")), "{got:?}");
    }

    #[test]
    fn time_regressions_are_caught() {
        let mut t = good_trace();
        t.push(line(5, "event", "sim.tick", &[]));
        let got = eval_all(&t, GOOD_METRICS);
        assert!(
            got.iter()
                .any(|v| v.contains("mono") && v.contains("backwards")),
            "{got:?}"
        );
    }

    #[test]
    fn run_trace_check_reports_and_fails_on_violations() {
        let dir = std::env::temp_dir().join(format!("coic-trace-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let write = |name: &str, body: &str| {
            let p = dir.join(name);
            std::fs::write(&p, body).unwrap();
            p
        };
        let inv = write("inv.toml", INVARIANTS);
        let trace = write("t.jsonl", &good_trace().join("\n"));
        let metrics = write("m.txt", GOOD_METRICS);
        let mut out = String::new();
        assert!(run_trace_check(&trace, &metrics, &inv, &mut out).unwrap());
        assert!(out.contains("ok probe-terminal"), "{out}");
        assert!(out.contains("trace clean"), "{out}");

        let bad_metrics = write("m_bad.txt", "counter cluster.peer_probe 9\n");
        let mut out = String::new();
        assert!(!run_trace_check(&trace, &bad_metrics, &inv, &mut out).unwrap());
        assert!(out.contains("violation probe-count"), "{out}");
        assert!(out.contains("trace violation(s)"), "{out}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn edge_down_marker_excuses_unterminated_probes() {
        let with_unless = r#"
[[invariant]]
id = "probe-terminal"
kind = "requires-followup"
trigger = "decision.peer_probe"
followup = ["decision.peer_hit", "decision.peer_miss", "decision.peer_timeout"]
key = ["edge", "req"]
unless = "edge.down"
unless-key = ["edge"]
"#;
        let invariants = parse_invariants(with_unless).unwrap();
        // Edge 3 probes, then crashes before the probe settles: the
        // edge.down marker excuses it. Edge 2's open probe is not excused.
        let trace = [
            line(
                10,
                "event",
                "decision.peer_probe",
                &[("edge", "3"), ("req", "4"), ("peer", "0")],
            ),
            line(
                20,
                "event",
                "decision.peer_probe",
                &[("edge", "2"), ("req", "9"), ("peer", "1")],
            ),
            line(30, "event", "edge.down", &[("edge", "3")]),
        ]
        .join("\n");
        let events = parse_trace(&trace).unwrap();
        let (checked, vs) = eval(&invariants[0], &events, &BTreeMap::new());
        assert_eq!(checked, 2);
        assert_eq!(vs.len(), 1, "{vs:?}");
        assert!(vs[0].contains("edge=2 req=9"), "{vs:?}");
    }

    #[test]
    fn invariant_schema_is_strict() {
        assert!(parse_invariants("").is_err());
        let err = parse_invariants("[[invariant]]\nid = \"x\"\nkind = \"mystery\"").unwrap_err();
        assert!(err.contains("unknown invariant kind"), "{err}");
        let err = parse_invariants(
            "[[invariant]]\nid = \"x\"\nkind = \"legal-transitions\"\nevent = \"e\"\n\
             key = [\"k\"]\nfrom = \"f\"\nto = \"t\"\ninitial = \"i\"\nlegal = [\"oops\"]",
        )
        .unwrap_err();
        assert!(err.contains("from -> to"), "{err}");
    }
}

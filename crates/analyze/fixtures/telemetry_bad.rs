//! Fixture: one telemetry name nobody declared, and a paired counter
//! bumped without its trace event — both drift classes the registry
//! pass exists to catch. Never compiled.

fn publish(reg: &mut Registry) {
    reg.counter_add("fixture.undeclared_total", 1); // LINT-EXPECT: telemetry-registry
}

fn frame(stats: &mut Stats) {
    stats.count_frame(); // LINT-EXPECT: telemetry-registry
}

//! Fixture: wall-clock reads in a deterministic crate. Never compiled.

use std::time::Instant; // LINT-EXPECT: no-wall-clock

fn measure() -> u128 {
    let start = Instant::now(); // LINT-EXPECT: no-wall-clock
    start.elapsed().as_nanos()
}

fn stamp() -> u64 {
    let now = SystemTime::now(); // LINT-EXPECT: no-wall-clock
    let _ = now;
    0
}

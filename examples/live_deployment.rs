//! Live deployment over real TCP sockets.
//!
//! Everything the simulator models also runs for real: this example spawns
//! a cloud server and an edge server (thread-per-connection, framed TCP on
//! loopback), connects two clients, and measures wall-clock latencies. The
//! SimNet inference, CMF model parsing and panorama synthesis genuinely
//! execute on the cloud; the edge cache genuinely serves the second
//! client's requests.
//!
//! Run with: `cargo run --release --example live_deployment`

use coic::core::netrun::{spawn_cloud, spawn_edge, NetClient, NetConfig};
use coic::core::{ClientConfig, ComputeConfig, EdgeConfig, ModelLibrary, PanoLibrary, Path};
use coic::vision::ObjectClass;
use coic::workload::{Request, RequestKind, UserId, ZoneId};
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let models = Arc::new(ModelLibrary::new());
    let panos = Arc::new(PanoLibrary::new(128));
    let compute = ComputeConfig::default();
    let classes: Vec<_> = (0..8).map(ObjectClass).collect();

    let cloud = spawn_cloud(&classes, 64, compute, models.clone(), panos.clone(), 1)?;
    let edge = spawn_edge(cloud.addr(), &EdgeConfig::default())?;
    println!("cloud listening on {}", cloud.addr());
    println!(
        "edge  listening on {} (forwarding misses to cloud)\n",
        edge.addr()
    );

    let mut alice = NetClient::connect(
        edge.addr(),
        ClientConfig::default(),
        compute,
        models.clone(),
        panos.clone(),
    )?;
    let mut bob = NetClient::connect(edge.addr(), ClientConfig::default(), compute, models, panos)?;

    let requests = [
        (
            "recognize landmark 4",
            RequestKind::Recognition {
                class: 4,
                view_seed: 77,
            },
        ),
        (
            "load 1 MB avatar model",
            RequestKind::RenderLoad {
                model_id: 2,
                size_bytes: 1_000_000,
            },
        ),
        (
            "fetch panorama frame 12",
            RequestKind::Panorama { frame_id: 12 },
        ),
    ];

    println!("{:<26} {:>10} {:>10}", "request", "alice", "bob");
    println!("{:-<50}", "");
    for (label, kind) in requests {
        let req = Request {
            user: UserId(0),
            zone: ZoneId(0),
            at_ns: 0,
            kind,
        };
        // Alice goes first and warms the edge cache; Bob piggybacks.
        let a = alice.execute(&req)?;
        let b = bob.execute(&req)?;
        assert_eq!(a.path, Path::CloudMiss, "first request must miss");
        assert_eq!(b.path, Path::EdgeHit, "second user must hit");
        println!(
            "{:<26} {:>7.2} ms {:>7.2} ms   (miss → hit)",
            label,
            a.elapsed.as_secs_f64() * 1e3,
            b.elapsed.as_secs_f64() * 1e3,
        );
    }

    println!("\nBob's requests were served from the edge cache that Alice's");
    println!("misses populated — cooperative reuse over a real socket stack.");

    // The live client fills the same QoE report the simulator emits:
    // per-request records of path, latency and retries.
    let mut bob_report = bob.report();
    println!(
        "\nBob's QoE report ({} requests): mean {:.2} ms, p99 {:.2} ms, \
         hits {:.0}% (local {} / peer {}), cloud trips {}, retries {}",
        bob_report.completed,
        bob_report.mean_latency_ms(),
        bob_report.latency_ms.p99(),
        bob_report.hit_ratio() * 100.0,
        bob_report.edge_hits,
        bob_report.peer_hits,
        bob_report.cloud_trips,
        bob_report.retries,
    );
    println!("\ncanonical form (what the CI determinism job diffs):");
    for line in bob_report.canonical().lines() {
        println!("  {line}");
    }

    // --- failure drill: kill the edge, watch the client degrade to the
    // origin path, then keep serving without a single error. -------------
    println!("\nfailure drill: killing a second edge mid-workload\n");
    let models = Arc::new(ModelLibrary::new());
    let panos = Arc::new(PanoLibrary::new(128));
    let mut edge2 = spawn_edge(cloud.addr(), &EdgeConfig::default())?;
    let net = NetConfig {
        request_deadline: std::time::Duration::from_millis(800),
        connect_timeout: std::time::Duration::from_millis(300),
        ..NetConfig::default()
    };
    let mut carol = NetClient::connect_with(
        edge2.addr(),
        Some(cloud.addr()),
        net,
        ClientConfig::default(),
        compute,
        models,
        panos,
    )?;
    let pano = |frame_id| Request {
        user: UserId(1),
        zone: ZoneId(0),
        at_ns: 0,
        kind: RequestKind::Panorama { frame_id },
    };
    let before = carol.execute(&pano(3))?;
    println!(
        "  edge up:   frame 3 via {:?} in {:.2} ms",
        before.path,
        before.elapsed.as_secs_f64() * 1e3
    );
    edge2.shutdown();
    for frame in 4..7u64 {
        let out = carol.execute(&pano(frame))?;
        println!(
            "  edge down: frame {frame} via {:?} in {:.2} ms ({} retries)",
            out.path,
            out.elapsed.as_secs_f64() * 1e3,
            out.retries,
        );
    }
    println!("\nrobustness counters: {}", carol.robustness().snapshot());
    let carol_report = carol.report();
    println!(
        "carol's QoE report: {} completed, {} cloud trips (miss or fallback), {} retries",
        carol_report.completed, carol_report.cloud_trips, carol_report.retries,
    );
    Ok(())
}

//! Multiplayer arena — shared 3D avatar loading (paper insight 2).
//!
//! "Two Pokemon Go players require rendering the same 3D avatar when they
//! are interacting through Pokemon application in the same place."
//!
//! A squad of players in one arena loads a palette of avatar models with
//! Zipf popularity. The example compares origin vs CoIC across model
//! sizes and shows how co-location (players per arena) drives the benefit.
//!
//! Run with: `cargo run --release --example multi_user_arena`

use coic::core::{compare, SimConfig};
use coic::workload::{ArenaMultiplayer, Population, ZoneId};

fn arena_trace(
    players: u32,
    model_kb: u64,
    requests: usize,
    seed: u64,
) -> Vec<coic::workload::Request> {
    // Eight avatar models of the given size; popularity is Zipf(1.0).
    let models: Vec<(u64, u64)> = (0..8).map(|i| (i, model_kb * 1024)).collect();
    ArenaMultiplayer {
        population: Population::colocated(players, ZoneId(0)),
        models,
        zipf_s: 1.0,
        rate_per_sec: 2.0,
        total_requests: requests,
    }
    .generate(seed)
}

fn main() {
    println!("arena multiplayer — avatar model loading through one edge\n");

    println!("model size sweep (8 players, 64 loads):");
    println!("  size      origin-mean   coic-mean   hit%   reduction");
    for model_kb in [256u64, 1024, 4096, 16384] {
        let trace = arena_trace(8, model_kb, 64, 11);
        let cfg = SimConfig {
            num_clients: 8,
            ..SimConfig::default()
        };
        let (origin, coic, red) = compare(&trace, &cfg);
        println!(
            "  {:5} kB  {:9.1} ms  {:8.1} ms   {:3.0}%   {:6.1}%",
            model_kb,
            origin.mean_latency_ms(),
            coic.mean_latency_ms(),
            coic.hit_ratio() * 100.0,
            red
        );
    }

    println!("\nco-location sweep (4 MB avatars, 8 loads per player):");
    println!("  players   hit%   reduction");
    for players in [1u32, 2, 4, 8, 16] {
        let trace = arena_trace(players, 4096, (players * 8) as usize, 13);
        let cfg = SimConfig {
            num_clients: players,
            ..SimConfig::default()
        };
        let (_, coic, red) = compare(&trace, &cfg);
        println!(
            "  {:7}   {:3.0}%   {:6.1}%",
            players,
            coic.hit_ratio() * 100.0,
            red
        );
    }

    println!("\nMore players in the same arena → more shared avatars → higher");
    println!("hit ratio → larger load-latency reduction: the cooperative effect.");
}

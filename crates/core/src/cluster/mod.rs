//! Cooperative multi-edge cluster tier.
//!
//! The paper deploys exactly one edge; production deploys fleets. This
//! module adds the cooperative tier ROADMAP item 2 calls for, grounded in
//! "Cooperative Service Caching and Workload Scheduling in Mobile Edge
//! Computing" (arXiv 2002.01358): co-located edges partition the exact
//! (digest-keyed) descriptor space over a consistent-hash ring and answer
//! each other's misses before paying the WAN round trip to the cloud.
//!
//! The tier is sans-IO like the rest of the engine: [`ClusterState`] is a
//! plain state machine fed `now_ns` by its driver, so the simulator drives
//! 10–100 virtual edges deterministically from one seed and `netrun` runs
//! a real TCP cluster through the identical policy code. Four pieces:
//!
//! * [`HashRing`] — deterministic virtual-node placement of N edges over
//!   the digest space (FNV-1a points, `vnodes` per edge). Every edge
//!   computes the identical ring from `(num_edges, vnodes)` alone, so
//!   there is no membership gossip to converge.
//! * [`Membership`] — one [`CircuitBreaker`](crate::engine::CircuitBreaker)
//!   per peer (PR 1's breaker, reused verbatim): probe failures trip a
//!   peer out of the ring, the cooldown half-open lets a restarted edge
//!   rejoin, and every trip/rejoin counts as a ring rebuild.
//! * [`HotTracker`] — per-digest request counters driving replication
//!   *where requests land, not where inserts happened*: an edge that keeps
//!   seeing misses for a digest it does not own keeps a local replica once
//!   the counter crosses the threshold, and an owner that keeps answering
//!   peer probes for a digest pushes a failover copy to its ring
//!   successor.
//! * [`ClusterState`] — composes the three into the probe plan a miss
//!   follows: walk the ring from the digest's owner, skip self and
//!   breaker-open peers, probe at most `peer_fanout` peers, then fall back
//!   to the cloud. A dead owner is skipped, so its keyspace re-routes to
//!   the next ring successor *before* any cloud fallback.
//!
//! Drivers surface the tier through `cluster.*` counters
//! ([`ClusterStats`]) and `decision.peer_*` trace events. See DESIGN.md
//! §15.

mod hot;
mod membership;
mod ring;
mod state;
mod stats;

pub use hot::HotTracker;
pub use membership::Membership;
pub use ring::{EdgeId, HashRing};
pub use state::{ClusterState, ProbePlan};
pub use stats::{ClusterSnapshot, ClusterStats};

/// Configuration of the cooperative cluster tier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterConfig {
    /// Virtual nodes per edge on the consistent-hash ring. More vnodes
    /// smooth the partition sizes; 16 keeps the max/min keyspace ratio
    /// under ~2 for fleets up to 100 edges.
    pub vnodes: u32,
    /// Bounded peer-lookup fan-out: a miss probes at most this many peers
    /// (ring walk order from the owner) before forwarding to the cloud.
    pub peer_fanout: u32,
    /// Hot-entry replication threshold: once this many miss-path requests
    /// for one digest land on an edge, that edge keeps a local replica
    /// (and an owner seeing this many peer probes pushes a failover copy
    /// to its ring successor). Zero disables hot replication entirely —
    /// pure partitioning, where only the owner caches each digest.
    pub replicate_hot: u32,
    /// How long the simulator waits for a peer probe before counting it
    /// as a failure against that peer's breaker. (The live driver uses
    /// its socket deadlines instead.)
    pub peer_timeout_ms: u64,
    /// Consecutive probe failures before a peer is tripped out of the
    /// ring.
    pub breaker_threshold: u32,
    /// Cooldown before a tripped peer is half-opened for a rejoin probe.
    pub breaker_cooldown_ms: u64,
    /// Shared cluster secret mixed into the replication-push token every
    /// [`Msg::Replicate`](crate::protocol::Msg) carries: an edge installs
    /// a pushed entry only when the token matches its own, so a stray or
    /// hostile connection that merely reaches the edge port cannot poison
    /// the cache. The live driver additionally folds the member address
    /// list into the token, binding pushes to the joined membership; set
    /// a random value here for deployments where the member list is
    /// guessable. Zero (the default) keeps the membership binding alone.
    pub auth_token: u64,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            vnodes: 16,
            peer_fanout: 2,
            replicate_hot: 3,
            peer_timeout_ms: 50,
            breaker_threshold: 3,
            breaker_cooldown_ms: 500,
            auth_token: 0,
        }
    }
}

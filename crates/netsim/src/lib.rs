//! # coic-netsim
//!
//! Deterministic discrete-event network simulation (plus a real framed-TCP
//! transport) underpinning the CoIC reproduction.
//!
//! The paper's testbed — a Pixel phone on shaped 802.11ac WiFi talking to an
//! edge box that talks to a cloud box — is replaced here by:
//!
//! * [`topology`] — nodes and directed links (the client–edge–cloud chain),
//! * [`link`] — bandwidth/propagation/jitter/loss + droptail queue model,
//! * [`shaper`] — `tc tbf`-style token bucket,
//! * [`sim`] — the event loop driving [`sim::Node`] state machines,
//! * [`rt`] — the same protocol over real TCP sockets for live runs.
//!
//! Everything is driven by a virtual clock ([`time::SimTime`]); no wall
//! clock is ever read, so every simulation is exactly reproducible from its
//! seed.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod event;
pub mod link;
pub mod rt;
pub mod shaper;
pub mod sim;
pub mod stats;
pub mod time;
pub mod topology;
pub mod trace;

pub use link::{Link, LinkParams, LinkStats, TxOutcome};
pub use shaper::Shaper;
pub use sim::{Ctx, Node, SimStats, Simulator};
pub use stats::{Histogram, P2Quantile, Summary, Welford};
pub use time::{SimDuration, SimTime};
pub use topology::{NodeId, Topology};
pub use trace::{Trace, TraceEntry};

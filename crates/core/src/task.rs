//! The three IC task families and their results.

use bytes::Bytes;
use coic_vision::Image;
use serde::{Deserialize, Serialize};

/// A fully specified unit of IC work (what the cloud executes on a miss).
#[derive(Debug, Clone, PartialEq)]
pub enum TaskRequest {
    /// Recognize the object in a camera frame.
    Recognition {
        /// The captured frame.
        image: Image,
    },
    /// Load 3D model `model_id` (procedurally defined) of about
    /// `size_bytes`.
    RenderLoad {
        /// Model identifier (doubles as the procgen seed).
        model_id: u64,
        /// Requested model size.
        size_bytes: u64,
    },
    /// Fetch panoramic frame `frame_id`.
    Panorama {
        /// Frame identifier (doubles as the synthesis seed).
        frame_id: u64,
    },
}

impl TaskRequest {
    /// Short label for reports.
    pub fn kind(&self) -> &'static str {
        match self {
            TaskRequest::Recognition { .. } => "recognition",
            TaskRequest::RenderLoad { .. } => "render_load",
            TaskRequest::Panorama { .. } => "panorama",
        }
    }
}

/// The label a recognition task produces (the "annotation" the AR app
/// renders over the object).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RecognitionResult {
    /// Predicted object class.
    pub label: u32,
    /// Distance to the winning class centroid (lower = more confident).
    pub distance: f32,
}

/// The result of executing a task.
#[derive(Debug, Clone, PartialEq)]
pub enum TaskResult {
    /// Recognition outcome.
    Recognition(RecognitionResult),
    /// Serialized (CMF) model bytes, parsed and re-encoded by the loader.
    Model(Bytes),
    /// Raw panorama bytes.
    Panorama(Bytes),
}

impl TaskResult {
    /// Bytes this result occupies on the wire (payload only).
    ///
    /// A recognition result is not just the 8-byte label: the AR app
    /// receives the annotation content to render (the paper's "high-quality
    /// 3D annotations"), modelled as a fixed-size blob.
    pub fn byte_size(&self) -> u64 {
        match self {
            TaskResult::Recognition(_) => ANNOTATION_BYTES,
            TaskResult::Model(b) => b.len() as u64,
            TaskResult::Panorama(b) => b.len() as u64,
        }
    }

    /// Short label for reports.
    pub fn kind(&self) -> &'static str {
        match self {
            TaskResult::Recognition(_) => "recognition",
            TaskResult::Model(_) => "model",
            TaskResult::Panorama(_) => "panorama",
        }
    }
}

/// Wire size of a recognition annotation (label + the annotation asset the
/// client renders).
pub const ANNOTATION_BYTES: u64 = 20_000;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_and_sizes() {
        let r = TaskResult::Recognition(RecognitionResult {
            label: 3,
            distance: 0.1,
        });
        assert_eq!(r.kind(), "recognition");
        assert_eq!(r.byte_size(), ANNOTATION_BYTES);
        let m = TaskResult::Model(Bytes::from(vec![0u8; 1234]));
        assert_eq!(m.byte_size(), 1234);
        let p = TaskResult::Panorama(Bytes::from(vec![0u8; 99]));
        assert_eq!(p.byte_size(), 99);
        assert_eq!(TaskRequest::Panorama { frame_id: 0 }.kind(), "panorama");
    }
}

//! Bounded event trace for debugging and validating simulations.

use crate::time::SimTime;

/// One recorded simulator event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEntry {
    /// Virtual time at which the event occurred.
    pub at: SimTime,
    /// Human-readable description, e.g. `deliver n0->n1 1200B`.
    pub what: String,
}

/// A bounded in-memory trace. Once `cap` entries are recorded, further
/// entries are counted but not stored, so long simulations cannot exhaust
/// memory through tracing.
#[derive(Debug)]
pub struct Trace {
    entries: Vec<TraceEntry>,
    cap: usize,
    dropped: u64,
}

impl Trace {
    /// Create a trace storing at most `cap` entries.
    pub fn new(cap: usize) -> Self {
        Trace {
            entries: Vec::new(),
            cap,
            dropped: 0,
        }
    }

    /// Record an event.
    pub fn record(&mut self, at: SimTime, what: impl Into<String>) {
        if self.entries.len() < self.cap {
            self.entries.push(TraceEntry {
                at,
                what: what.into(),
            });
        } else {
            self.dropped += 1;
        }
    }

    /// Stored entries, in record order (which is time order, since the
    /// simulator records as it executes).
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// Number of entries that did not fit within the cap.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// True if any stored entry's description contains `needle`.
    pub fn contains(&self, needle: &str) -> bool {
        self.entries.iter().any(|e| e.what.contains(needle))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_until_cap() {
        let mut t = Trace::new(2);
        t.record(SimTime::from_millis(1), "a");
        t.record(SimTime::from_millis(2), "b");
        t.record(SimTime::from_millis(3), "c");
        assert_eq!(t.entries().len(), 2);
        assert_eq!(t.dropped(), 1);
        assert!(t.contains("a"));
        assert!(!t.contains("c"));
    }

    #[test]
    fn entries_keep_time() {
        let mut t = Trace::new(10);
        t.record(SimTime::from_millis(5), "x");
        assert_eq!(t.entries()[0].at, SimTime::from_millis(5));
    }
}

//! Fixture: time arrives as an argument, the deterministic way.
//! Instant::now() in this doc comment is prose, not code.

pub struct Window {
    deadline_ns: u64,
}

impl Window {
    /// The caller owns the clock; we just compare.
    pub fn expired(&self, now_ns: u64) -> bool {
        now_ns >= self.deadline_ns
    }
}

#[cfg(test)]
mod tests {
    use std::time::Instant;

    /// Timing tests may read the real clock: the rule defaults to
    /// skipping `#[cfg(test)]` items.
    #[test]
    fn wall_clock_in_tests_is_tolerated() {
        let start = Instant::now();
        assert!(start.elapsed().as_nanos() < u128::MAX);
    }
}

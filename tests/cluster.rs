//! Acceptance tests for the cooperative multi-edge cluster tier:
//! determinism of seeded cluster runs, the cooperative win over isolated
//! edges on a skewed workload, and failover when an edge dies mid-run.

use coic::core::simrun::{run_instrumented, Mode, SimConfig};
use coic::core::ClusterConfig;
use coic::obs::Telemetry;
use coic::workload::{ArenaMultiplayer, Population, Request};

/// A skewed multi-zone arena workload: `users` spread round-robin over
/// `zones` zones (zone k attaches to edge k), all drawing from the same
/// global model library under a steep Zipf — the same few models are hot
/// in every zone, so isolated edges each pay their own cloud fetch while
/// a cluster pays roughly one per model.
fn arena_trace(users: u32, zones: u32, requests: usize, seed: u64) -> Vec<Request> {
    ArenaMultiplayer {
        population: Population::round_robin(users, zones),
        models: (0..24u64).map(|i| (i, 64 * 1024)).collect(),
        zipf_s: 1.1,
        rate_per_sec: 20.0,
        total_requests: requests,
    }
    .generate(seed)
}

fn cfg(edges: u32, clients: u32, cluster: Option<ClusterConfig>) -> SimConfig {
    SimConfig {
        mode: Mode::CoIc,
        num_clients: clients,
        num_edges: edges,
        cluster,
        seed: 11,
        ..SimConfig::default()
    }
}

/// Two seeded 16-edge cluster runs are byte-identical in all three
/// deterministic artifacts: the canonical QoE report, the JSONL decision
/// trace, and the canonical metrics snapshot.
#[test]
fn sixteen_edge_cluster_run_is_deterministic() {
    let trace = arena_trace(32, 16, 400, 5);
    let cluster = ClusterConfig {
        peer_fanout: 3,
        replicate_hot: 2,
        ..ClusterConfig::default()
    };
    let run = || {
        let tel = Telemetry::new();
        let (mut report, _) = run_instrumented(&trace, &cfg(16, 32, Some(cluster.clone())), &tel);
        (
            report.canonical(),
            tel.trace_jsonl(),
            tel.metrics_canonical(),
        )
    };
    let (r1, t1, m1) = run();
    let (r2, t2, m2) = run();
    assert_eq!(r1, r2, "canonical reports diverged");
    assert_eq!(t1, t2, "JSONL traces diverged");
    assert_eq!(m1, m2, "metrics snapshots diverged");
    assert!(
        t1.contains("decision.peer_probe"),
        "cluster path never probed a peer"
    );
    assert!(
        m1.contains("cluster.peer_hit"),
        "cluster metrics missing from the snapshot"
    );
}

/// On the skewed workload, the cluster strictly beats isolated edges on
/// hit rate and strictly reduces cloud forwards — the cooperative-caching
/// claim of the paper, at cluster scale.
#[test]
fn cluster_beats_isolated_edges_on_skewed_workload() {
    let trace = arena_trace(32, 16, 600, 5);
    let tel = Telemetry::disabled();
    let (isolated, _) = run_instrumented(&trace, &cfg(16, 32, None), &tel);
    let cluster = ClusterConfig {
        peer_fanout: 3,
        replicate_hot: 2,
        ..ClusterConfig::default()
    };
    let (coop, _) = run_instrumented(&trace, &cfg(16, 32, Some(cluster)), &tel);
    assert!(
        coop.hit_ratio() > isolated.hit_ratio(),
        "cluster hit rate {:.3} not above isolated {:.3}",
        coop.hit_ratio(),
        isolated.hit_ratio()
    );
    assert!(
        coop.cloud_trips < isolated.cloud_trips,
        "cluster cloud trips {} not below isolated {}",
        coop.cloud_trips,
        isolated.cloud_trips
    );
    assert!(coop.peer_hits > 0, "cooperation never produced a peer hit");
}

/// Killing an edge mid-run re-routes its keyspace to ring successors with
/// zero hung or failed requests: probes to the dead edge time out, its
/// breaker trips (a ring rebuild), and plans fail over around it.
#[test]
fn killed_edge_reroutes_keyspace_without_hanging() {
    // Users live in zones 0..3 of an 8-edge cluster, so edge 5 serves no
    // clients but still owns a slice of the digest space — exactly the
    // peer that probes must reach, then survive losing.
    let trace = arena_trace(8, 4, 240, 9);
    let cluster = ClusterConfig {
        peer_fanout: 3,
        replicate_hot: 2,
        breaker_threshold: 1,
        ..ClusterConfig::default()
    };
    let mut config = cfg(8, 8, Some(cluster));
    config.edge_down_ms = vec![(200, 5)];
    let tel = Telemetry::new();
    let (report, _) = run_instrumented(&trace, &config, &tel);
    assert_eq!(report.failed, 0, "requests hung or failed after the kill");
    assert_eq!(report.completed, trace.len(), "not every request completed");
    let reg = tel.registry();
    assert!(
        reg.counter("cluster.peer_timeout") > 0,
        "no probe ever timed out against the dead edge"
    );
    assert!(
        reg.counter("cluster.ring_rebuild") > 0,
        "the dead edge's breaker never tripped"
    );
    assert!(
        reg.counter("cluster.peer_failover") > 0,
        "plans never failed over around the dead owner"
    );
}

//! Cooperative edges — the "C" in CoIC, fully simulated.
//!
//! Two arenas, two edge servers, one popular set of avatar models. Without
//! cooperation each edge must fetch every model from the cloud itself;
//! with the `PeerQuery` protocol an edge answers its neighbour's misses
//! over the LAN. This example also shows panorama prefetching on a third,
//! lone viewer: cooperation with one's own future.
//!
//! Run with: `cargo run --release --example edge_cooperation`

use coic::core::simrun::{run, SimConfig};
use coic::workload::{ArenaMultiplayer, Population, Request, RequestKind, UserId, VrVideo, ZoneId};

fn main() {
    // --- Part 1: two edges share their model caches -----------------------
    let models: Vec<(u64, u64)> = (0..8).map(|i| (i, 2_000_000)).collect();
    let trace = ArenaMultiplayer {
        population: Population::round_robin(8, 2), // 4 players per arena
        models,
        zipf_s: 0.9,
        rate_per_sec: 1.0,
        total_requests: 80,
    }
    .generate(19);

    println!("two arenas, two edges, 8 shared avatar models (2 MB each)\n");
    for peer_lookup in [false, true] {
        let cfg = SimConfig {
            num_clients: 8,
            num_edges: 2,
            peer_lookup,
            ..SimConfig::default()
        };
        let report = run(&trace, &cfg);
        println!(
            "peer lookup {}: local hits {:>2}, peer hits {:>2}, cloud trips {:>2} \
             → mean {:>6.1} ms, WAN {:>5.1} MB",
            if peer_lookup { "ON " } else { "OFF" },
            report.edge_hits,
            report.peer_hits,
            report.cloud_trips,
            report.mean_latency_ms(),
            report.wan_bytes as f64 / 1e6,
        );
    }

    // --- Part 2: a lone viewer cooperates with their own future -----------
    println!("\nlone VR viewer, 30 frames, edge prefetching:\n");
    let vr: Vec<Request> = VrVideo {
        population: Population::colocated(1, ZoneId(0)),
        frame_interval_ns: 100_000_000,
        max_start_skew_frames: 0,
        user_stagger_ns: 0,
        frames_per_user: 30,
    }
    .generate(7);
    for depth in [0u32, 2] {
        let cfg = SimConfig {
            prefetch_depth: depth,
            ..SimConfig::default()
        };
        let report = run(&vr, &cfg);
        println!(
            "prefetch depth {depth}: hit ratio {:>5.1}%, mean frame latency {:>6.1} ms",
            report.hit_ratio() * 100.0,
            report.mean_latency_ms(),
        );
    }

    // --- Part 3: sanity anchor — a truly cold, solo, one-shot workload ----
    let solo = vec![Request {
        user: UserId(0),
        zone: ZoneId(0),
        at_ns: 0,
        kind: RequestKind::RenderLoad {
            model_id: 99,
            size_bytes: 2_000_000,
        },
    }];
    let report = run(&solo, &SimConfig::default());
    println!(
        "\n(for scale: a single cold 2 MB model load costs {:.1} ms)",
        report.mean_latency_ms()
    );
}

//! Lint self-tests over the checked-in fixtures: every `// LINT-EXPECT:
//! rule-id` marker must produce exactly one finding with that rule id on
//! that line, and nothing else may fire.
//!
//! The whole tree is linted with `lint_root` so workspace-scope passes
//! (lock-order graph, telemetry registry) and the built-in config audits
//! run too; their findings may anchor in `rules.toml` or
//! `telemetry.toml`, so markers are collected from the fixture `.toml`
//! files as well as the `.rs` ones.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures")
}

/// Every fixture file markers may live in: the `.rs` fixtures plus the
/// config files findings can anchor to (`rules.toml`, `telemetry.toml`).
fn marker_files(root: &Path) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(root)
        .expect("read fixtures dir")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "rs" || x == "toml"))
        .collect();
    files.sort();
    files
}

/// (file, line, rule) triples declared by `LINT-EXPECT:` markers.
/// Markers accept a comma-separated id list for lines with several
/// expected findings.
fn expected(root: &Path) -> BTreeSet<(String, u32, String)> {
    let mut want = BTreeSet::new();
    for path in marker_files(root) {
        let rel = path
            .strip_prefix(root)
            .expect("under root")
            .to_string_lossy()
            .replace('\\', "/");
        let source = std::fs::read_to_string(&path).expect("read fixture");
        for (idx, line) in source.lines().enumerate() {
            let Some(at) = line.find("LINT-EXPECT:") else {
                continue;
            };
            let rest = &line[at + "LINT-EXPECT:".len()..];
            for id in rest.split(',').map(str::trim).filter(|s| !s.is_empty()) {
                let inserted = want.insert((rel.clone(), idx as u32 + 1, id.to_string()));
                assert!(inserted, "duplicate marker {id} at {rel}:{}", idx + 1);
            }
        }
    }
    want
}

#[test]
fn fixture_findings_match_expect_markers_exactly() {
    let root = fixtures_dir();
    let findings = coic_analyze::lint_root(&root, &root.join("rules.toml")).expect("lint");
    let got: BTreeSet<(String, u32, String)> = findings
        .iter()
        .map(|f| (f.file.clone(), f.line, f.rule.clone()))
        .collect();
    assert_eq!(
        got.len(),
        findings.len(),
        "duplicate findings: {findings:#?}"
    );
    let want = expected(&root);
    assert!(!want.is_empty(), "no LINT-EXPECT markers found");
    let missing: Vec<_> = want.difference(&got).collect();
    let surprise: Vec<_> = got.difference(&want).collect();
    assert!(
        missing.is_empty() && surprise.is_empty(),
        "marker/finding mismatch\n  expected but absent: {missing:#?}\n  \
         found but unexpected: {surprise:#?}"
    );
}

#[test]
fn every_bad_fixture_fails_and_every_good_fixture_passes() {
    // One full-tree lint, grouped by finding file: workspace passes only
    // run under `lint_root`, and a `_bad` fixture may be convicted by a
    // per-file rule or by a workspace pass anchoring its finding there.
    let root = fixtures_dir();
    let findings = coic_analyze::lint_root(&root, &root.join("rules.toml")).expect("lint");
    let mut bad = 0;
    let mut good = 0;
    for path in coic_analyze::collect_rust_files(&root).expect("walk fixtures") {
        let rel = path
            .strip_prefix(&root)
            .expect("under root")
            .to_string_lossy()
            .replace('\\', "/");
        let file_findings: Vec<_> = findings.iter().filter(|f| f.file == rel).collect();
        if rel.contains("_bad") {
            bad += 1;
            assert!(
                !file_findings.is_empty(),
                "{rel}: bad fixture produced no findings"
            );
        } else {
            good += 1;
            assert!(
                file_findings.is_empty(),
                "{rel}: good fixture produced findings: {file_findings:#?}"
            );
        }
    }
    assert!(
        bad >= 6,
        "expected at least one bad fixture per rule, got {bad}"
    );
    assert!(
        good >= 6,
        "expected at least one good fixture per rule, got {good}"
    );
}

#[test]
fn run_lint_reports_failure_on_the_fixture_tree() {
    let root = fixtures_dir();
    let mut out = String::new();
    let clean = coic_analyze::run_lint(&root, &root.join("rules.toml"), &mut out).expect("lint");
    assert!(!clean, "fixture tree must lint dirty");
    assert!(out.contains("finding(s)"), "{out}");
    assert!(out.contains("no-std-net"), "{out}");
    // Workspace-scope and built-in findings surface in the same report.
    assert!(out.contains("lock-cycles"), "{out}");
    assert!(out.contains("dead-exemption"), "{out}");
}

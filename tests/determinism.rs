//! Determinism tests: the engine is the single decision-maker, so (a) the
//! same seeded workload and fault schedule through the simulator twice
//! yields byte-identical QoE reports, and (b) the simulator and the live
//! TCP stack traverse byte-identical decision traces — timestamps differ
//! (virtual vs wall clock) but every hit/miss/retry/degrade choice agrees.

use coic::core::netrun::{spawn_cloud, spawn_edge_with, NetClient, NetConfig};
use coic::core::simrun::{run_traced, Mode, SimConfig};
use coic::core::{
    ClientConfig, ComputeConfig, Decision, DriverKind, EdgeConfig, FaultSchedule, ModelLibrary,
    PanoLibrary, Path, QoeReport, RetryPolicy,
};
use coic::vision::ObjectClass;
use coic::workload::{Request, RequestKind, UserId, ZoneId};
use std::sync::Arc;
use std::time::Duration;

/// One client requesting panorama frames [0, 0, 1]: a cloud miss, an edge
/// hit, then a request whose edge leg is killed by the fault schedule.
fn pano_trace() -> Vec<Request> {
    [0u64, 0, 1]
        .into_iter()
        .enumerate()
        .map(|(i, frame_id)| Request {
            user: UserId(0),
            zone: ZoneId(0),
            at_ns: i as u64 * 1_000_000,
            kind: RequestKind::Panorama { frame_id },
        })
        .collect()
}

/// The shared retry policy: backoff jitter is seeded, so the sim and the
/// live client compute identical (if differently-realized) delays.
fn policy() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 3,
        base_backoff: Duration::from_millis(1),
        max_backoff: Duration::from_millis(5),
        jitter_frac: 0.3,
        seed: 7,
    }
}

/// Every edge attempt of the third request (seq 2) fails.
fn faults() -> FaultSchedule {
    FaultSchedule::new().drop_edge_request(2)
}

/// The decision sequence both drivers must produce for this workload.
fn expected_trace() -> Vec<Decision> {
    vec![
        Decision::Attempt { seq: 0, attempt: 0 },
        Decision::Complete {
            seq: 0,
            path: Path::CloudMiss,
        },
        Decision::Attempt { seq: 1, attempt: 0 },
        Decision::Complete {
            seq: 1,
            path: Path::EdgeHit,
        },
        Decision::Attempt { seq: 2, attempt: 0 },
        Decision::AttemptFailed { seq: 2, attempt: 0 },
        Decision::Retry { seq: 2, attempt: 1 },
        Decision::Attempt { seq: 2, attempt: 1 },
        Decision::AttemptFailed { seq: 2, attempt: 1 },
        Decision::Retry { seq: 2, attempt: 2 },
        Decision::Attempt { seq: 2, attempt: 2 },
        Decision::AttemptFailed { seq: 2, attempt: 2 },
        Decision::Degrade { seq: 2 },
        Decision::OriginAttempt { seq: 2, attempt: 0 },
        Decision::Complete {
            seq: 2,
            path: Path::Baseline,
        },
    ]
}

fn sim_config() -> SimConfig {
    SimConfig {
        mode: Mode::CoIc,
        num_clients: 1,
        retry: Some(policy()),
        origin_fallback: true,
        request_timeout_ms: 200,
        faults: faults(),
        seed: 7,
        ..SimConfig::default()
    }
}

#[test]
fn sim_twice_is_byte_identical() {
    let trace = pano_trace();
    let cfg = sim_config();
    let (mut a, traces_a) = run_traced(&trace, &cfg);
    let (mut b, traces_b) = run_traced(&trace, &cfg);
    assert_eq!(a.canonical(), b.canonical(), "QoE reports must agree");
    assert_eq!(traces_a, traces_b, "decision traces must agree");
}

/// Run the live loopback leg on the given IO driver: same retry policy,
/// same fault schedule as the simulator leg. Returns the client's
/// decision trace and QoE report.
fn live_leg(driver: DriverKind) -> (Vec<Decision>, QoeReport) {
    let trace = pano_trace();
    let models = Arc::new(ModelLibrary::new());
    let panos = Arc::new(PanoLibrary::new(64));
    let compute = ComputeConfig::default();
    let classes = vec![ObjectClass(0)];
    let cloud = spawn_cloud(&classes, 64, compute, models.clone(), panos.clone(), 7).unwrap();
    let edge_net = NetConfig::builder().driver(driver).build();
    let edge = spawn_edge_with(cloud.addr(), &EdgeConfig::default(), edge_net, None).unwrap();
    assert_eq!(edge.driver(), driver);
    let net = NetConfig::builder()
        .retry(policy())
        .faults(faults())
        .build();
    let mut client = NetClient::connect_with(
        edge.addr(),
        Some(cloud.addr()),
        net,
        ClientConfig::default(),
        compute,
        models,
        panos,
    )
    .unwrap();
    let mut live_paths = Vec::new();
    for req in &trace {
        live_paths.push(client.execute(req).unwrap().path);
    }
    assert_eq!(live_paths, [Path::CloudMiss, Path::EdgeHit, Path::Baseline]);
    assert!(client.is_degraded(), "edge leg of seq 2 was exhausted");
    if driver == DriverKind::Evloop {
        let stats = edge.loop_stats();
        assert!(stats.frames > 0, "evloop edge must have decoded frames");
    }
    (client.decisions().to_vec(), client.report())
}

#[test]
fn sim_and_live_traverse_identical_decision_traces() {
    // Simulator leg.
    let (sim_report, sim_traces) = run_traced(&pano_trace(), &sim_config());
    assert_eq!(sim_report.completed, 3);
    assert_eq!(sim_traces.len(), 1);
    assert_eq!(sim_traces[0], expected_trace());

    // The tentpole claim, on BOTH IO drivers: byte-identical decision
    // sequences between the simulator and the live TCP stack, including
    // under the injected fault schedule.
    for driver in [DriverKind::Threads, DriverKind::Evloop] {
        let (live_decisions, live_report) = live_leg(driver);
        assert_eq!(
            live_decisions,
            expected_trace(),
            "driver {driver:?} diverged from the canonical trace"
        );
        assert_eq!(
            sim_traces[0], live_decisions,
            "driver {driver:?} diverged from the simulator"
        );

        // And both paths emit the same report type with agreeing
        // structure (latencies differ: virtual vs wall clock).
        assert_eq!(live_report.completed, sim_report.completed);
        assert_eq!(live_report.edge_hits, sim_report.edge_hits);
        assert_eq!(live_report.cloud_trips, sim_report.cloud_trips);
        assert_eq!(live_report.retries, sim_report.retries);
        assert_eq!(live_report.retried_requests, sim_report.retried_requests);
    }
}

#[test]
fn both_io_drivers_traverse_identical_decision_traces() {
    // Driver-equality acceptance: the threads driver and the event loop
    // realize the same engine decisions byte-for-byte under the same
    // seeded workload and fault schedule.
    let (threads_decisions, threads_report) = live_leg(DriverKind::Threads);
    let (evloop_decisions, evloop_report) = live_leg(DriverKind::Evloop);
    assert_eq!(threads_decisions, evloop_decisions);
    assert_eq!(threads_report.completed, evloop_report.completed);
    assert_eq!(threads_report.edge_hits, evloop_report.edge_hits);
    assert_eq!(threads_report.cloud_trips, evloop_report.cloud_trips);
    assert_eq!(threads_report.retries, evloop_report.retries);
}

//! **Ext N** — recognition-cache compaction.
//!
//! When the edge runs a *tight* similarity threshold (e.g. after the
//! adaptive controller clamps down during a hard phase), co-located users
//! pack the cache with near-duplicate descriptors. If the threshold later
//! relaxes, that redundancy stays — every stop-sign sighting is cached
//! five times. Compaction merges entries whose descriptors sit within a
//! merge radius and whose labels agree. This experiment fills a cache at
//! a tight threshold (0.15), operates it at the default (0.45), compacts
//! at several radii, and measures space reclaimed vs hit ratio retained.
//!
//! Run with: `cargo run --release -p coic-bench --bin ext_compaction`

use coic_cache::{ApproxCache, ApproxLookup, IndexKind, PolicyKind};
use coic_core::RecognitionResult;
use coic_vision::{ObjectClass, PrototypeClassifier, SceneGenerator, SimNet, ViewParams};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

const FILL_THRESHOLD: f32 = 0.15;
const OPERATING_THRESHOLD: f32 = 0.45;

fn fill(cache: &mut ApproxCache<RecognitionResult>, clf: &PrototypeClassifier) {
    let gen = SceneGenerator::new(64);
    let net = SimNet::default_net();
    let mut rng = StdRng::seed_from_u64(61);
    let classes: Vec<_> = (0..10).map(ObjectClass).collect();
    for i in 0..600 {
        let rank = (rng.random::<f64>().powi(2) * classes.len() as f64) as usize;
        let truth = classes[rank.min(classes.len() - 1)];
        let view = ViewParams::jittered(&mut rng, 0.08, 4.0);
        let d = net.extract(&gen.observe(truth, &view, &mut rng));
        if let ApproxLookup::Miss { .. } = cache.lookup(&d, i) {
            let (label, distance) = clf.predict(&d);
            cache.insert(
                d,
                RecognitionResult {
                    label: label.0,
                    distance,
                },
                20_000,
                i,
            );
        }
    }
}

fn probe_hit_ratio(cache: &mut ApproxCache<RecognitionResult>) -> f64 {
    let gen = SceneGenerator::new(64);
    let net = SimNet::default_net();
    let mut rng = StdRng::seed_from_u64(62);
    let mut hits = 0;
    let n = 300;
    for i in 0..n {
        let class = ObjectClass((rng.random::<f64>().powi(2) * 10.0) as u32 % 10);
        let view = ViewParams::jittered(&mut rng, 0.08, 4.0);
        let d = net.extract(&gen.observe(class, &view, &mut rng));
        if matches!(cache.lookup(&d, 10_000 + i), ApproxLookup::Hit { .. }) {
            hits += 1;
        }
    }
    hits as f64 / n as f64
}

fn main() {
    let gen = SceneGenerator::new(64);
    let net = SimNet::default_net();
    let classes: Vec<_> = (0..10).map(ObjectClass).collect();
    let mut rng = StdRng::seed_from_u64(60);
    let clf = PrototypeClassifier::train(&net, &gen, &classes, 5, 0.08, 4.0, &mut rng);

    println!("Ext N — cache compaction (600-request fill at threshold 0.15,");
    println!("operated at 0.45; 10 objects)\n");
    println!(
        "{:>13} | {:>8} {:>9} | {:>10} | {:>6}",
        "merge radius", "entries", "bytes", "reclaimed", "hit%"
    );
    coic_bench::rule(56);
    for radius in [0.0f32, 0.10, 0.20, 0.30, 0.40] {
        let mut cache: ApproxCache<RecognitionResult> = ApproxCache::new(
            256 << 20,
            PolicyKind::Lru,
            FILL_THRESHOLD,
            IndexKind::Linear,
            32,
        );
        fill(&mut cache, &clf);
        cache.set_threshold(OPERATING_THRESHOLD);
        let before = cache.used_bytes();
        let removed = if radius > 0.0 {
            cache.compact_with(radius, |a, b| a.label == b.label)
        } else {
            0
        };
        let hit = probe_hit_ratio(&mut cache);
        println!(
            "{:>13} | {:>8} {:>8}k | {:>9.1}% | {:>5.1}%",
            if radius == 0.0 {
                "none".to_string()
            } else {
                format!("{radius:.2}")
            },
            cache.len(),
            cache.used_bytes() / 1000,
            (before - cache.used_bytes()) as f64 / before as f64 * 100.0,
            hit * 100.0,
        );
        let _ = removed;
    }
    coic_bench::rule(56);
    println!("Merging same-label entries within a modest radius reclaims a large");
    println!("share of the cache while the probe hit ratio barely moves; past");
    println!("~threshold/2 the survivors' coverage starts to erode.");
}

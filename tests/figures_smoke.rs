//! Smoke tests of the figure pipelines: scaled-down versions of Fig. 2a and
//! Fig. 2b must reproduce the paper's qualitative shape on every run.

use coic::core::simrun::{compare, SimConfig};
use coic::workload::{ArenaMultiplayer, Population, SafeDrivingAr, ZoneId, ZoneModel};

fn recog_trace(n: usize) -> Vec<coic::workload::Request> {
    SafeDrivingAr {
        population: Population::colocated(4, ZoneId(0)),
        zones: ZoneModel::new(1, 30, 1.0, 3),
        rate_per_sec: 4.0,
        zipf_s: 0.7,
        total_requests: n,
    }
    .generate(42)
}

#[test]
fn fig2a_shape_reduction_grows_as_wan_shrinks() {
    // The paper's Figure 2a trend: the slower the edge→cloud segment, the
    // bigger CoIC's recognition-latency reduction.
    // The reduction rises as the WAN narrows, peaking once the WAN
    // dominates the miss path; at extreme throttling it plateaus (misses
    // are then WAN-bound in both systems). We assert the rise and that the
    // slow-WAN regime stays well above the fast-WAN one.
    let trace = recog_trace(60);
    let mut reds = Vec::new();
    for wan_mbps in [100.0, 20.0, 5.0] {
        let cfg = SimConfig {
            num_clients: 4,
            wan_mbps,
            ..SimConfig::default()
        };
        let (_, _, red) = compare(&trace, &cfg);
        assert!(red > 0.0, "CoIC must win at wan {wan_mbps} Mbps");
        reds.push(red);
    }
    assert!(
        reds[1] > reds[0],
        "20 Mbps reduction {:.1}% should exceed 100 Mbps {:.1}%",
        reds[1],
        reds[0]
    );
    assert!(
        reds[2] > reds[0],
        "5 Mbps reduction {:.1}% should exceed 100 Mbps {:.1}%",
        reds[2],
        reds[0]
    );
    assert!(reds[2] > 30.0, "slow-WAN reduction only {:.1}%", reds[2]);
}

#[test]
fn fig2a_positive_reduction_across_access_speeds() {
    let trace = recog_trace(60);
    for access_mbps in [50.0, 100.0, 400.0] {
        let cfg = SimConfig {
            num_clients: 4,
            access_mbps,
            ..SimConfig::default()
        };
        let (origin, coic, red) = compare(&trace, &cfg);
        assert!(red > 10.0, "access {access_mbps}: reduction {red:.1}%");
        assert_eq!(origin.completed, coic.completed);
    }
}

#[test]
fn fig2b_shape_hits_avoid_size_scaled_costs() {
    // The paper's Figure 2b claim: caching the loaded model at the edge
    // removes the size-proportional WAN+load cost; reduction holds across
    // model sizes and latency scales with size in both systems.
    let mut prev_origin = 0.0;
    for size in [200_000u64, 800_000, 3_200_000] {
        let models: Vec<(u64, u64)> = (0..4).map(|i| (i, size)).collect();
        let trace = ArenaMultiplayer {
            population: Population::colocated(1, ZoneId(0)),
            models,
            zipf_s: 0.9,
            rate_per_sec: 0.5,
            total_requests: 24,
        }
        .generate(9);
        let cfg = SimConfig {
            num_clients: 1,
            ..SimConfig::default()
        };
        let (origin, coic, red) = compare(&trace, &cfg);
        assert!(
            origin.mean_latency_ms() > prev_origin,
            "origin latency must grow with model size"
        );
        prev_origin = origin.mean_latency_ms();
        assert!(
            red > 40.0,
            "size {size}: reduction {red:.1}% (coic {:.1} ms vs origin {:.1} ms)",
            coic.mean_latency_ms(),
            origin.mean_latency_ms()
        );
    }
}

#[test]
fn reductions_stay_under_100_percent() {
    let trace = recog_trace(40);
    let cfg = SimConfig {
        num_clients: 4,
        ..SimConfig::default()
    };
    let (_, _, red) = compare(&trace, &cfg);
    assert!(red < 100.0);
}

//! # coic-obs
//!
//! The unified observability layer for CoIC: one API every crate reports
//! through, replacing the ad-hoc per-crate stats structs.
//!
//! Three layers (DESIGN.md §12):
//!
//! * [`Recorder`] — the trait instrumented code talks to: counters,
//!   gauges, latency observations, and structured trace spans/events.
//!   [`NullRecorder`] discards everything; [`Telemetry`] records.
//! * [`MetricsRegistry`] — deterministic storage: `BTreeMap`-backed
//!   counters, gauges and fixed-bucket integer histograms. No default
//!   hashers, no wall clock — every timestamp is passed in by the caller,
//!   which owns a `Clock`, so simulated and live runs share one code path
//!   and seeded sim runs stay byte-reproducible.
//! * Exporters — a JSONL trace writer ([`TraceLog::to_jsonl`]), the
//!   canonical metrics snapshot ([`MetricsRegistry::canonical`], sorted
//!   keys, integer units) for determinism diffing, and the human summary
//!   behind `coic obs report` ([`report::summarize_trace`]).
//!
//! This crate is dependency-free and does no IO: exporters return
//! `String`s and the caller decides where they go.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod canonical;
pub mod metrics;
pub mod recorder;
pub mod report;
pub mod trace;

pub use canonical::CanonicalWriter;
pub use metrics::{Histogram, MetricsRegistry};
pub use recorder::{NullRecorder, Recorder, Telemetry};
pub use trace::{TraceEvent, TraceKind, TraceLog, Value};

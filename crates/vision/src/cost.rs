//! Compute-cost model.
//!
//! The paper offloads recognition because a phone is slow at it; the
//! simulation must therefore charge realistic *relative* compute times per
//! tier. Costs are expressed in multiply–accumulate operations (MACs) and
//! converted to virtual nanoseconds through a tier's effective throughput.
//! Absolute values are calibrated to 2018-era hardware classes (poster's
//! Pixel phone / Linux edge box / cloud server) but only the ratios shape
//! the experiment results.

use serde::{Deserialize, Serialize};

/// Effective compute throughput of an execution tier.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ComputeProfile {
    /// Effective MAC/s this tier sustains on DNN-style workloads.
    pub macs_per_sec: f64,
    /// Fixed per-invocation overhead (framework dispatch, memory staging)
    /// in nanoseconds.
    pub overhead_ns: u64,
}

impl ComputeProfile {
    /// 2018 flagship phone (no NN accelerator in the loop): ~5 GMAC/s
    /// effective, noticeable dispatch overhead.
    pub const MOBILE: ComputeProfile = ComputeProfile {
        macs_per_sec: 5.0e9,
        overhead_ns: 2_000_000, // 2 ms
    };

    /// Edge box with a desktop GPU: ~60 GMAC/s effective.
    pub const EDGE: ComputeProfile = ComputeProfile {
        macs_per_sec: 60.0e9,
        overhead_ns: 500_000, // 0.5 ms
    };

    /// Cloud server GPU: ~200 GMAC/s effective.
    pub const CLOUD: ComputeProfile = ComputeProfile {
        macs_per_sec: 200.0e9,
        overhead_ns: 500_000, // 0.5 ms
    };

    /// Virtual time to execute `macs` multiply–accumulates on this tier,
    /// in nanoseconds.
    pub fn time_ns(&self, macs: u64) -> u64 {
        assert!(self.macs_per_sec > 0.0, "throughput must be positive");
        let ns = macs as f64 / self.macs_per_sec * 1e9;
        self.overhead_ns + ns.round() as u64
    }
}

/// MAC count of the *full* recognition DNN the cloud runs (the descriptor
/// extractor the client runs is tiny by comparison — that asymmetry is what
/// makes offloading worthwhile). 600 MMAC ≈ a 2018 mobile-vision model
/// (MobileNetV2-class at higher resolution).
pub const FULL_DNN_MACS: u64 = 600_000_000;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_dnn_times_are_plausible() {
        // Mobile: 2 ms overhead + 120 ms compute.
        let mobile_ms = ComputeProfile::MOBILE.time_ns(FULL_DNN_MACS) as f64 / 1e6;
        let cloud_ms = ComputeProfile::CLOUD.time_ns(FULL_DNN_MACS) as f64 / 1e6;
        assert!((100.0..200.0).contains(&mobile_ms), "mobile {mobile_ms}ms");
        assert!((1.0..10.0).contains(&cloud_ms), "cloud {cloud_ms}ms");
        assert!(mobile_ms > 10.0 * cloud_ms);
    }

    #[test]
    fn zero_work_costs_only_overhead() {
        assert_eq!(
            ComputeProfile::EDGE.time_ns(0),
            ComputeProfile::EDGE.overhead_ns
        );
    }

    #[test]
    fn time_scales_linearly() {
        let p = ComputeProfile {
            macs_per_sec: 1e9,
            overhead_ns: 0,
        };
        assert_eq!(p.time_ns(1_000_000_000), 1_000_000_000);
        assert_eq!(p.time_ns(500_000_000), 500_000_000);
    }
}

//! Sharded, read-optimized concurrent *exact* cache for the live edge.
//!
//! The original [`crate::concurrent`] wrappers guard each whole cache with
//! one mutex, so every client connection thread serializes behind every
//! other — lookups included. [`ShardedExactCache`] splits the digest key
//! space across N independent shards (shard = digest bytes mod N), each
//! behind its own `RwLock`, so the hot path (a cache *hit*) takes only a
//! shared read lock on one shard. Values are stored as `Arc<V>`, so a hit
//! clones a reference count under the read lock and the guard is dropped
//! **before** any deep clone of the payload (3D model bytes never copy
//! inside the lock — see [`ShardedExactCache::lookup_owned`]).
//!
//! Digest keys shard cleanly because equality is exact. Descriptor keys do
//! not: sharding the *descriptor space* fragments LSH buckets and forces a
//! miss to probe every shard, which benchmarked worse than a single mutex
//! (`bench/baseline.json`, rev a68375a). The approximate hot path
//! therefore lives in [`crate::snapshot`] — immutable snapshots with
//! lock-free lookups — not here.
//!
//! Read-path hit/miss counters accumulate in per-shard relaxed atomics and
//! are merged with the write-path store counters on [`stats`] snapshots.
//! Recency is preserved without write-locking on reads: each shard keeps a
//! small pending-touch queue that the next writer drains and replays, so
//! LRU order still tracks access order (batched, slightly delayed).
//!
//! The touch protocol is deliberately ordered so a drained touch always
//! refers to a key that is still present:
//!
//! * readers queue the touch **while holding the shard's read guard**, so
//!   no writer can evict the key between the hit and the queue push;
//! * writers drain the queue **after acquiring the shard's write lock**,
//!   so no other writer can evict a queued key between drain and replay.
//!
//! Lock order is `cache` before `touches` on both paths (the lint's
//! lock-order rule pins this); the reader uses `try_lock`, which can only
//! contend with other readers — a writer is excluded by the read guard —
//! so a failed try drops the touch instead of deadlocking. The model
//! checker in `tests/model.rs` explores this protocol's interleavings
//! exhaustively and asserts [`TouchStats::dead`] stays zero.
//!
//! The single-mutex wrappers remain in [`crate::concurrent`] as the
//! contention baseline that `coic bench` measures the sharded wrappers
//! against.
//!
//! [`stats`]: ShardedExactCache::stats

use crate::admission::TinyLfuConfig;
use crate::digest::Digest;
use crate::exact::ExactCache;
use crate::metrics::Metrics;
use crate::policy::PolicyKind;
use crate::sync::{AtomicU64, Mutex, Ordering, RwLock};
use std::sync::Arc;

/// Default shard count for the live edge: enough to make same-shard
/// collisions rare at realistic connection counts without bloating
/// per-shard capacity fragmentation.
pub const DEFAULT_SHARDS: usize = 8;

/// Bound on queued recency touches per shard (hits observed on the read
/// path, waiting for the next writer to replay them). Beyond this, further
/// touches are dropped — recency becomes approximate, correctness is
/// unaffected.
const MAX_PENDING_TOUCHES: usize = 1024;

/// Counters for the deferred-touch protocol, aggregated across shards.
///
/// `dead` counts touches replayed against a key that was no longer
/// present. The drain protocol makes that impossible (see the module
/// docs), so `dead` staying zero is the protocol's observable invariant —
/// the model checker and the concurrent regression tests assert on it.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct TouchStats {
    /// Touches queued by read-path hits.
    pub queued: u64,
    /// Touches dropped (queue full, or another reader held the queue).
    pub dropped: u64,
    /// Queued touches replayed against a still-present key.
    pub replayed: u64,
    /// Queued touches that found their key gone at replay time.
    pub dead: u64,
}

struct TouchCounters {
    queued: AtomicU64,
    dropped: AtomicU64,
    replayed: AtomicU64,
    dead: AtomicU64,
}

impl TouchCounters {
    fn new() -> TouchCounters {
        TouchCounters {
            queued: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            replayed: AtomicU64::new(0),
            dead: AtomicU64::new(0),
        }
    }

    fn merge_into(&self, total: &mut TouchStats) {
        total.queued += self.queued.load(Ordering::Relaxed);
        total.dropped += self.dropped.load(Ordering::Relaxed);
        total.replayed += self.replayed.load(Ordering::Relaxed);
        total.dead += self.dead.load(Ordering::Relaxed);
    }

    fn count_replay(&self, live: bool) {
        if live {
            self.replayed.fetch_add(1, Ordering::Relaxed);
        } else {
            debug_assert!(false, "deferred touch replayed against a dead key");
            self.dead.fetch_add(1, Ordering::Relaxed);
        }
    }
}

// ------------------------------------------------------------------ exact --

struct ExactShard<V> {
    cache: RwLock<ExactCache<Arc<V>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    touches: Mutex<Vec<Digest>>,
    touch_counters: TouchCounters,
}

/// A shareable exact cache split into N independently locked shards.
pub struct ShardedExactCache<V> {
    shards: Arc<Vec<ExactShard<V>>>,
}

impl<V> Clone for ShardedExactCache<V> {
    fn clone(&self) -> Self {
        ShardedExactCache {
            shards: Arc::clone(&self.shards),
        }
    }
}

impl<V> ShardedExactCache<V> {
    /// Create a sharded cache: `capacity_bytes` is the *total* budget,
    /// split evenly across `shards` shards (each at least 1 byte).
    ///
    /// # Panics
    /// Panics if `shards` is zero.
    pub fn new(
        capacity_bytes: u64,
        policy: PolicyKind,
        ttl_ns: Option<u64>,
        shards: usize,
    ) -> Self {
        assert!(shards > 0, "shard count must be positive");
        let per_shard = (capacity_bytes / shards as u64).max(1);
        let shards = (0..shards)
            .map(|_| ExactShard {
                cache: RwLock::new(ExactCache::new(per_shard, policy, ttl_ns)),
                hits: AtomicU64::new(0),
                misses: AtomicU64::new(0),
                touches: Mutex::new(Vec::new()),
                touch_counters: TouchCounters::new(),
            })
            .collect();
        ShardedExactCache {
            shards: Arc::new(shards),
        }
    }

    /// Enable TinyLFU admission on every shard.
    pub fn with_admission(self, cfg: TinyLfuConfig) -> Self {
        for shard in self.shards.iter() {
            let mut guard = shard.cache.write();
            let plain = std::mem::replace(&mut *guard, ExactCache::new(1, PolicyKind::Lru, None));
            *guard = plain.with_admission(cfg);
        }
        self
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Index of the shard serving `key` (telemetry: the `shard` field of
    /// `edge.lookup` trace events).
    pub fn shard_of_key(&self, key: &Digest) -> usize {
        (key.short() as usize) % self.shards.len()
    }

    fn shard_of(&self, key: &Digest) -> &ExactShard<V> {
        &self.shards[self.shard_of_key(key)]
    }

    /// Look a digest up at `now_ns`. The returned `Arc` is cloned under a
    /// *read* lock (a reference-count bump, never a payload copy); the
    /// guard is released before this function returns.
    pub fn lookup(&self, key: &Digest, now_ns: u64) -> Option<Arc<V>> {
        let shard = self.shard_of(key);
        let found = {
            let guard = shard.cache.read();
            let found = guard.peek_valid(key, now_ns).cloned();
            if found.is_some() {
                // Queue the recency touch while still holding the read
                // guard: writers drain the queue only under the write
                // lock, so the key cannot be evicted between this hit and
                // the push. The try_lock can only contend with other
                // readers (the read guard excludes writers), so a failed
                // try drops the touch — it never deadlocks.
                match shard.touches.try_lock() {
                    Some(mut queue) if queue.len() < MAX_PENDING_TOUCHES => {
                        queue.push(*key);
                        shard.touch_counters.queued.fetch_add(1, Ordering::Relaxed);
                    }
                    _ => {
                        shard.touch_counters.dropped.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            found
        };
        // Guard dropped: only the hit/miss atomics remain.
        match found {
            Some(value) => {
                shard.hits.fetch_add(1, Ordering::Relaxed);
                Some(value)
            }
            None => {
                shard.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Presence check without stats or recency side effects (TTL-aware).
    pub fn contains(&self, key: &Digest, now_ns: u64) -> bool {
        self.shard_of(key)
            .cache
            .read()
            .peek_valid(key, now_ns)
            .is_some()
    }

    /// Insert a value. The writer first replays queued read-path recency
    /// touches, so eviction order keeps tracking access order.
    pub fn insert(&self, key: Digest, value: V, size: u64, now_ns: u64) {
        let shard = self.shard_of(&key);
        let mut guard = shard.cache.write();
        // Drain only after the write lock is held: touches are queued
        // under the read guard, so every drained touch refers to a key
        // that is still present (evictions happen only under this lock).
        // Draining before locking let a concurrent writer evict a queued
        // key between our drain and our replay, losing the touch — the
        // model checker in tests/model.rs finds that schedule in seconds.
        let pending = std::mem::take(&mut *shard.touches.lock());
        for touched in pending {
            let live = guard.touch(&touched, now_ns);
            shard.touch_counters.count_replay(live);
        }
        guard.insert(key, Arc::new(value), size, now_ns);
    }

    /// The unified counter snapshot: per-shard read-path atomics, each
    /// shard's write-path store counters, and the deferred-touch protocol
    /// counters, merged into one [`Metrics`] view. [`Metrics::touch_dead`]
    /// must be zero (see the module docs).
    pub fn metrics(&self) -> Metrics {
        let mut total = Metrics::default();
        let mut touches = TouchStats::default();
        for shard in self.shards.iter() {
            let s = *shard.cache.read().stats();
            total.hits += s.hits + shard.hits.load(Ordering::Relaxed);
            total.misses += s.misses + shard.misses.load(Ordering::Relaxed);
            total.insertions += s.insertions;
            total.evictions += s.evictions;
            total.expired += s.expired;
            total.rejected += s.rejected;
            total.admission_rejects += s.admission_rejects;
            shard.touch_counters.merge_into(&mut touches);
        }
        total.touch_queued = touches.queued;
        total.touch_dropped = touches.dropped;
        total.touch_replayed = touches.replayed;
        total.touch_dead = touches.dead;
        total
    }

    /// Total entries across shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.cache.read().len()).sum()
    }

    /// True when every shard is empty.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.cache.read().is_empty())
    }

    /// Bytes in use across shards.
    pub fn used_bytes(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.cache.read().used_bytes())
            .sum()
    }

    /// Total capacity across shards.
    pub fn capacity_bytes(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.cache.read().capacity_bytes())
            .sum()
    }
}

impl<V: Clone> ShardedExactCache<V> {
    /// Clone-out lookup. The deep clone of the payload happens **after**
    /// the shard guard is dropped (inside [`ShardedExactCache::lookup`]
    /// only the `Arc` is cloned), so a large 3D-model payload — or a
    /// payload whose `Clone` is pathologically slow — never stalls other
    /// threads on this shard.
    pub fn lookup_owned(&self, key: &Digest, now_ns: u64) -> Option<V> {
        self.lookup(key, now_ns).map(|arc| V::clone(&arc))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::{Duration, Instant};

    #[test]
    fn exact_roundtrip_across_threads() {
        let cache: ShardedExactCache<String> =
            ShardedExactCache::new(1 << 20, PolicyKind::Lru, None, 4);
        let key = Digest::of(b"model");
        cache.insert(key, "loaded".into(), 100, 0);
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let c = cache.clone();
                std::thread::spawn(move || c.lookup_owned(&key, 0).unwrap())
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), "loaded");
        }
        assert_eq!(cache.metrics().hits, 8);
        assert_eq!(cache.metrics().insertions, 1);
    }

    #[test]
    fn merged_stats_equal_per_thread_observation_sums() {
        let cache: ShardedExactCache<u64> =
            ShardedExactCache::new(1 << 20, PolicyKind::Lru, None, 8);
        for i in 0..16u64 {
            cache.insert(Digest::of(&i.to_le_bytes()), i, 64, 0);
        }
        let handles: Vec<_> = (0..8u64)
            .map(|t| {
                let c = cache.clone();
                std::thread::spawn(move || {
                    let (mut hits, mut misses) = (0u64, 0u64);
                    for i in 0..400u64 {
                        // Present keys 0..16, absent keys 16..32.
                        let k = (t * 131 + i * 7) % 32;
                        match c.lookup(&Digest::of(&k.to_le_bytes()), 0) {
                            Some(v) => {
                                assert_eq!(*v, k);
                                hits += 1;
                            }
                            None => misses += 1,
                        }
                    }
                    (hits, misses)
                })
            })
            .collect();
        let (mut hits, mut misses) = (0u64, 0u64);
        for h in handles {
            let (a, b) = h.join().unwrap();
            hits += a;
            misses += b;
        }
        let merged = cache.metrics();
        assert_eq!(merged.hits, hits, "merged hits must equal observed sum");
        assert_eq!(merged.misses, misses);
        assert_eq!(merged.lookups(), 8 * 400);
    }

    #[test]
    fn read_path_respects_ttl() {
        let cache: ShardedExactCache<u32> =
            ShardedExactCache::new(1 << 10, PolicyKind::Lru, Some(1_000), 2);
        let key = Digest::of(b"frame");
        cache.insert(key, 7, 10, 0);
        assert_eq!(cache.lookup_owned(&key, 999), Some(7));
        assert_eq!(cache.lookup_owned(&key, 1_000), None);
        let s = cache.metrics();
        assert_eq!((s.hits, s.misses), (1, 1));
    }

    #[test]
    fn capacity_splits_across_shards_and_evicts() {
        let cache: ShardedExactCache<u32> = ShardedExactCache::new(400, PolicyKind::Lru, None, 4);
        assert_eq!(cache.capacity_bytes(), 400);
        for i in 0..40u32 {
            cache.insert(Digest::of(&i.to_le_bytes()), i, 30, 0);
        }
        assert!(cache.used_bytes() <= 400);
        assert!(cache.metrics().evictions > 0);
        assert!(!cache.is_empty());
    }

    /// A stand-in for a huge 3D-model payload whose deep clone is
    /// expensive: cloning sleeps, making it obvious (via timing) whether
    /// the clone ran inside or outside the shard lock.
    #[derive(Debug)]
    struct PoisonedSizePayload {
        label: u32,
    }

    impl Clone for PoisonedSizePayload {
        fn clone(&self) -> Self {
            std::thread::sleep(Duration::from_millis(400));
            PoisonedSizePayload { label: self.label }
        }
    }

    #[test]
    fn deep_clone_happens_outside_the_shard_lock() {
        // Single shard: if lookup_owned deep-cloned under the lock, the
        // concurrent insert below would stall for the whole 400 ms clone.
        let cache: ShardedExactCache<PoisonedSizePayload> =
            ShardedExactCache::new(1 << 20, PolicyKind::Lru, None, 1);
        let key = Digest::of(b"huge model");
        cache.insert(key, PoisonedSizePayload { label: 1 }, 1 << 19, 0);

        let reader = {
            let c = cache.clone();
            std::thread::spawn(move || c.lookup_owned(&key, 0).unwrap())
        };
        // Give the reader time to take and release the read guard (the
        // slow clone runs after release).
        std::thread::sleep(Duration::from_millis(100));
        let start = Instant::now();
        cache.insert(
            Digest::of(b"other"),
            PoisonedSizePayload { label: 2 },
            16,
            0,
        );
        let insert_elapsed = start.elapsed();
        assert_eq!(reader.join().unwrap().label, 1);
        assert!(
            insert_elapsed < Duration::from_millis(250),
            "insert blocked behind a payload clone: {insert_elapsed:?}"
        );
    }

    #[derive(Debug)]
    struct PanickingClone;

    impl Clone for PanickingClone {
        fn clone(&self) -> Self {
            panic!("poisoned payload clone");
        }
    }

    #[test]
    fn panicking_payload_clone_does_not_wedge_the_shard() {
        let cache: ShardedExactCache<PanickingClone> =
            ShardedExactCache::new(1 << 10, PolicyKind::Lru, None, 1);
        let key = Digest::of(b"k");
        cache.insert(key, PanickingClone, 10, 0);
        let c = cache.clone();
        let r = std::thread::spawn(move || {
            let _ = c.lookup_owned(&key, 0); // panics in the clone
        })
        .join();
        assert!(r.is_err(), "clone should have panicked");
        // The shard must still be fully usable: the panic happened after
        // the guard was released (Arc-level lookup still works).
        assert!(cache.lookup(&key, 0).is_some());
        cache.insert(Digest::of(b"k2"), PanickingClone, 10, 0);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    #[should_panic(expected = "shard count must be positive")]
    fn zero_shards_rejected() {
        let _ = ShardedExactCache::<u32>::new(1024, PolicyKind::Lru, None, 0);
    }

    #[test]
    fn deferred_touches_never_replay_dead_keys_under_churn() {
        // Regression for the drain-before-lock race: a writer used to
        // drain the touch queue *before* taking the write lock, so a
        // second writer could evict a queued key in between and the
        // drained touch replayed against a dead entry. Tiny capacity +
        // one shard maximizes eviction pressure on the race window.
        let cache: ShardedExactCache<u64> = ShardedExactCache::new(200, PolicyKind::Lru, None, 1);
        let keys: Vec<Digest> = (0..8u64).map(|i| Digest::of(&i.to_le_bytes())).collect();
        let writers: Vec<_> = (0..2u64)
            .map(|t| {
                let c = cache.clone();
                let keys = keys.clone();
                std::thread::spawn(move || {
                    for i in 0..2_000u64 {
                        let k = keys[((t * 3 + i) % 8) as usize];
                        c.insert(k, i, 100, i);
                    }
                })
            })
            .collect();
        let readers: Vec<_> = (0..2u64)
            .map(|t| {
                let c = cache.clone();
                let keys = keys.clone();
                std::thread::spawn(move || {
                    for i in 0..2_000u64 {
                        let _ = c.lookup(&keys[((t + i) % 8) as usize], i);
                    }
                })
            })
            .collect();
        for h in writers.into_iter().chain(readers) {
            h.join().unwrap();
        }
        // Drain whatever is still queued.
        cache.insert(Digest::of(b"final"), 0, 100, u64::MAX);
        let m = cache.metrics();
        assert_eq!(
            m.touch_dead, 0,
            "touch replayed against an evicted key: {m:?}"
        );
        assert_eq!(
            m.touch_queued, m.touch_replayed,
            "every queued touch must replay"
        );
    }
}

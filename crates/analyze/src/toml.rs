//! A dependency-free parser for the TOML subset the rules files use:
//! `[table]` headers, `[[array-of-tables]]` headers, `key = value` pairs
//! where values are strings, arrays of strings (single- or multi-line),
//! integers, or booleans, and `#` comments. Unsupported syntax is a parse error, not a silent
//! skip — a typo in `rules.toml` must fail the lint run loudly.

use std::collections::BTreeMap;

/// A parsed value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    /// A quoted string.
    Str(String),
    /// An array of quoted strings.
    StrArray(Vec<String>),
    /// An integer.
    Int(i64),
    /// A boolean.
    Bool(bool),
}

impl Value {
    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The string-array payload, if this is one.
    pub fn as_str_array(&self) -> Option<&[String]> {
        match self {
            Value::StrArray(v) => Some(v),
            _ => None,
        }
    }
}

/// One table: ordered key/value pairs (BTreeMap: deterministic iteration).
pub type Table = BTreeMap<String, Value>;

/// Parse result: top-level keys plus named arrays of tables. Plain
/// `[name]` tables are treated as arrays of length one, which is all the
/// rules format needs.
#[derive(Debug, Default)]
pub struct Document {
    /// Keys defined before any table header.
    pub root: Table,
    /// Tables by header name, in file order per name.
    pub tables: BTreeMap<String, Vec<Table>>,
    /// 1-based header line of each table, parallel to `tables` — the
    /// semantic passes anchor findings about a config table (a dead
    /// exemption, an unused telemetry declaration) at its header.
    pub table_lines: BTreeMap<String, Vec<usize>>,
}

impl Document {
    fn push_table(&mut self, name: &str, lineno: usize) {
        self.tables
            .entry(name.to_string())
            .or_default()
            .push(Table::new());
        self.table_lines
            .entry(name.to_string())
            .or_default()
            .push(lineno);
    }
}

/// Parse `source`; errors carry the 1-based line number.
pub fn parse(source: &str) -> Result<Document, String> {
    let mut doc = Document::default();
    let mut current: Option<String> = None;
    for (lineno, line) in logical_lines(source) {
        if let Some(header) = line.strip_prefix("[[").and_then(|l| l.strip_suffix("]]")) {
            let name = header.trim().to_string();
            doc.push_table(&name, lineno);
            current = Some(name);
        } else if let Some(header) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
            let name = header.trim().to_string();
            doc.push_table(&name, lineno);
            current = Some(name);
        } else {
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("line {lineno}: expected `key = value`"))?;
            let key = key.trim().to_string();
            let value = parse_value(value.trim()).map_err(|e| format!("line {lineno}: {e}"))?;
            let table = match &current {
                None => &mut doc.root,
                Some(name) => doc
                    .tables
                    .get_mut(name)
                    .and_then(|v| v.last_mut())
                    .expect("header created a table"),
            };
            if table.insert(key.clone(), value).is_some() {
                return Err(format!("line {lineno}: duplicate key `{key}`"));
            }
        }
    }
    Ok(doc)
}

/// Comment-stripped, trimmed, non-empty lines with their 1-based line
/// numbers; a `key = [` whose array closes on a later line is joined
/// into one logical line (numbered where it started).
fn logical_lines(source: &str) -> Vec<(usize, String)> {
    let mut out: Vec<(usize, String)> = Vec::new();
    let mut open_arrays = 0usize;
    for (idx, raw_line) in source.lines().enumerate() {
        let line = strip_comment(raw_line).trim();
        if line.is_empty() {
            continue;
        }
        let continuing = open_arrays > 0;
        let mut in_string = false;
        for c in line.chars() {
            match c {
                '"' => in_string = !in_string,
                '[' if !in_string => open_arrays += 1,
                ']' if !in_string => open_arrays = open_arrays.saturating_sub(1),
                _ => {}
            }
        }
        if continuing {
            let (_, last) = out.last_mut().expect("continuation follows a start line");
            last.push(' ');
            last.push_str(line);
        } else {
            out.push((idx + 1, line.to_string()));
        }
    }
    out
}

/// Strip a `#` comment, respecting quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        match c {
            _ if escaped => escaped = false,
            '\\' if in_string => escaped = true,
            '"' => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_value(text: &str) -> Result<Value, String> {
    if text == "true" {
        return Ok(Value::Bool(true));
    }
    if text == "false" {
        return Ok(Value::Bool(false));
    }
    if let Some(body) = text.strip_prefix('[') {
        let body = body.strip_suffix(']').ok_or("unterminated array")?;
        let mut items = Vec::new();
        for part in split_array(body)? {
            match parse_value(&part)? {
                Value::Str(s) => items.push(s),
                _ => return Err("arrays may only contain strings".into()),
            }
        }
        return Ok(Value::StrArray(items));
    }
    if let Some(body) = text.strip_prefix('"') {
        let body = body.strip_suffix('"').ok_or("unterminated string")?;
        if body.contains('\\') {
            return Err("string escapes are not supported".into());
        }
        return Ok(Value::Str(body.to_string()));
    }
    text.parse::<i64>()
        .map(Value::Int)
        .map_err(|_| format!("unsupported value `{text}`"))
}

/// Split an array body on commas outside quotes; trailing comma allowed.
fn split_array(body: &str) -> Result<Vec<String>, String> {
    let mut items = Vec::new();
    let mut current = String::new();
    let mut in_string = false;
    for c in body.chars() {
        match c {
            '"' => {
                in_string = !in_string;
                current.push(c);
            }
            ',' if !in_string => {
                if !current.trim().is_empty() {
                    items.push(current.trim().to_string());
                }
                current.clear();
            }
            _ => current.push(c),
        }
    }
    if in_string {
        return Err("unterminated string in array".into());
    }
    if !current.trim().is_empty() {
        items.push(current.trim().to_string());
    }
    Ok(items)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_rules_shape() {
        let doc = parse(
            r#"
version = 1 # a comment
[[rule]]
id = "no-std-net"
patterns = ["std::net", "TcpListener"]
paths = ["crates/**"]
[[rule]]
id = "other"
enabled = false
"#,
        )
        .unwrap();
        assert_eq!(doc.root.get("version"), Some(&Value::Int(1)));
        let rules = &doc.tables["rule"];
        assert_eq!(rules.len(), 2);
        assert_eq!(rules[0].get("id").unwrap().as_str(), Some("no-std-net"));
        assert_eq!(
            rules[0].get("patterns").unwrap().as_str_array().unwrap(),
            ["std::net", "TcpListener"]
        );
        assert_eq!(rules[1].get("enabled"), Some(&Value::Bool(false)));
    }

    #[test]
    fn multi_line_arrays_join() {
        let doc = parse(
            "[[rule]]\npaths = [\n  \"a/**\", # trailing comment\n  \"b/*.rs\",\n]\nnext = 1",
        )
        .unwrap();
        let rule = &doc.tables["rule"][0];
        assert_eq!(
            rule.get("paths").unwrap().as_str_array().unwrap(),
            ["a/**", "b/*.rs"]
        );
        assert_eq!(rule.get("next"), Some(&Value::Int(1)));
    }

    #[test]
    fn table_header_lines_are_recorded() {
        let doc = parse("version = 1\n[[rule]]\nid = \"a\"\n\n[[rule]]\nid = \"b\"").unwrap();
        assert_eq!(doc.table_lines["rule"], [2, 5]);
    }

    #[test]
    fn hash_inside_string_is_not_a_comment() {
        let doc = parse("name = \"a#b\"").unwrap();
        assert_eq!(doc.root.get("name").unwrap().as_str(), Some("a#b"));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = parse("ok = 1\nbroken").unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        let err = parse("x = [\"a\", 3]").unwrap_err();
        assert!(err.contains("strings"), "{err}");
        let err = parse("a = 1\na = 2").unwrap_err();
        assert!(err.contains("duplicate"), "{err}");
    }
}

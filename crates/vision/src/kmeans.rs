//! K-means clustering over feature vectors (k-means++ seeding + Lloyd).
//!
//! Unsupervised structure discovery for descriptor streams: an edge that
//! clusters what it has been seeing can discover "the objects at this
//! place" without labels — useful for choosing prototypes, sizing the
//! similarity threshold from within-cluster spread, and compaction.

use crate::distance::{l2, l2_sq};
use crate::features::FeatureVec;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A fitted k-means model.
#[derive(Debug, Clone)]
pub struct KMeans {
    centroids: Vec<FeatureVec>,
}

impl KMeans {
    /// Fit `k` clusters to `data` with at most `max_iters` Lloyd rounds,
    /// deterministically seeded. Uses k-means++ initialization.
    ///
    /// # Panics
    /// Panics if `data` is empty, `k == 0`, `k > data.len()`, or the
    /// vectors disagree on dimensionality.
    pub fn fit(data: &[FeatureVec], k: usize, max_iters: usize, seed: u64) -> KMeans {
        assert!(!data.is_empty(), "cannot cluster an empty dataset");
        assert!(k > 0 && k <= data.len(), "k must be in 1..=data.len()");
        let dim = data[0].dim();
        assert!(
            data.iter().all(|v| v.dim() == dim),
            "all vectors must share a dimension"
        );
        let mut rng = StdRng::seed_from_u64(seed);

        // k-means++: first centroid uniform, the rest proportional to the
        // squared distance from the nearest chosen centroid.
        let mut centroids: Vec<FeatureVec> = Vec::with_capacity(k);
        centroids.push(data[rng.random_range(0..data.len())].clone());
        while centroids.len() < k {
            let weights: Vec<f64> = data
                .iter()
                .map(|v| {
                    centroids
                        .iter()
                        .map(|c| l2_sq(v, c) as f64)
                        .fold(f64::INFINITY, f64::min)
                })
                .collect();
            let total: f64 = weights.iter().sum();
            let next = if total <= 0.0 {
                // All points coincide with existing centroids: pick any.
                rng.random_range(0..data.len())
            } else {
                let mut target = rng.random::<f64>() * total;
                let mut pick = data.len() - 1;
                for (i, w) in weights.iter().enumerate() {
                    if target < *w {
                        pick = i;
                        break;
                    }
                    target -= w;
                }
                pick
            };
            centroids.push(data[next].clone());
        }

        // Lloyd iterations.
        let mut assignment = vec![0usize; data.len()];
        for _ in 0..max_iters {
            let mut changed = false;
            for (i, v) in data.iter().enumerate() {
                let best = (0..k)
                    .min_by(|&a, &b| {
                        l2_sq(v, &centroids[a])
                            .partial_cmp(&l2_sq(v, &centroids[b]))
                            .expect("finite distances")
                    })
                    .expect("k >= 1");
                if assignment[i] != best {
                    assignment[i] = best;
                    changed = true;
                }
            }
            // Recompute centroids as cluster means (empty clusters keep
            // their previous centroid).
            let mut sums = vec![vec![0.0f32; dim]; k];
            let mut counts = vec![0usize; k];
            for (i, v) in data.iter().enumerate() {
                let c = assignment[i];
                counts[c] += 1;
                for (s, x) in sums[c].iter_mut().zip(v.as_slice()) {
                    *s += x;
                }
            }
            for c in 0..k {
                if counts[c] > 0 {
                    centroids[c] =
                        FeatureVec::new(sums[c].iter().map(|s| s / counts[c] as f32).collect());
                }
            }
            if !changed {
                break;
            }
        }
        KMeans { centroids }
    }

    /// Fit with `restarts` differently-seeded initializations and keep the
    /// lowest-inertia model (the standard defence against a bad k-means++
    /// draw merging two true clusters).
    ///
    /// # Panics
    /// As [`KMeans::fit`], plus if `restarts == 0`.
    pub fn fit_best(
        data: &[FeatureVec],
        k: usize,
        max_iters: usize,
        seed: u64,
        restarts: usize,
    ) -> KMeans {
        assert!(restarts > 0, "need at least one restart");
        (0..restarts)
            .map(|r| KMeans::fit(data, k, max_iters, seed.wrapping_add(r as u64 * 0x9E37)))
            .min_by(|a, b| {
                a.inertia(data)
                    .partial_cmp(&b.inertia(data))
                    .expect("finite inertia")
            })
            .expect("restarts > 0")
    }

    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.centroids.len()
    }

    /// The fitted centroids.
    pub fn centroids(&self) -> &[FeatureVec] {
        &self.centroids
    }

    /// Index of the nearest centroid to `v`.
    pub fn assign(&self, v: &FeatureVec) -> usize {
        (0..self.centroids.len())
            .min_by(|&a, &b| {
                l2_sq(v, &self.centroids[a])
                    .partial_cmp(&l2_sq(v, &self.centroids[b]))
                    .expect("finite distances")
            })
            .expect("at least one centroid")
    }

    /// Sum of squared distances of `data` to their assigned centroids.
    pub fn inertia(&self, data: &[FeatureVec]) -> f64 {
        data.iter()
            .map(|v| l2_sq(v, &self.centroids[self.assign(v)]) as f64)
            .sum()
    }

    /// Mean silhouette coefficient over `data` in `[-1, 1]`: how much
    /// closer each point is to its own cluster than to the nearest other
    /// cluster. Near 1 = well-separated clustering; near 0 = overlapping;
    /// the standard model-selection score for choosing `k`.
    ///
    /// Returns 0 for `k < 2` (silhouette is undefined).
    pub fn silhouette(&self, data: &[FeatureVec]) -> f64 {
        if self.centroids.len() < 2 || data.len() < 2 {
            return 0.0;
        }
        let labels: Vec<usize> = data.iter().map(|v| self.assign(v)).collect();
        let mut total = 0.0;
        for (i, v) in data.iter().enumerate() {
            // Mean distance to own cluster (a) and to the nearest other
            // cluster (b), computed over points (simplified medoid-free
            // form using the actual members).
            let mut own_sum = 0.0;
            let mut own_n = 0u32;
            let mut other: std::collections::HashMap<usize, (f64, u32)> =
                std::collections::HashMap::new();
            for (j, w) in data.iter().enumerate() {
                if i == j {
                    continue;
                }
                let d = l2(v, w) as f64;
                if labels[j] == labels[i] {
                    own_sum += d;
                    own_n += 1;
                } else {
                    let e = other.entry(labels[j]).or_insert((0.0, 0));
                    e.0 += d;
                    e.1 += 1;
                }
            }
            let a = if own_n > 0 {
                own_sum / own_n as f64
            } else {
                0.0
            };
            let b = other
                .values()
                .map(|&(s, n)| s / n as f64)
                .fold(f64::INFINITY, f64::min);
            if b.is_finite() {
                let denom = a.max(b);
                if denom > 0.0 {
                    total += (b - a) / denom;
                }
            }
        }
        total / data.len() as f64
    }

    /// Mean within-cluster distance — a data-driven starting point for the
    /// CoIC similarity threshold.
    pub fn mean_within_cluster_distance(&self, data: &[FeatureVec]) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        data.iter()
            .map(|v| l2(v, &self.centroids[self.assign(v)]) as f64)
            .sum::<f64>()
            / data.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scene::{ObjectClass, SceneGenerator, ViewParams};
    use crate::SimNet;

    fn blobs() -> Vec<FeatureVec> {
        // Three well-separated 2-D blobs, five points each.
        let centers = [(0.0f32, 0.0f32), (10.0, 0.0), (0.0, 10.0)];
        let mut data = Vec::new();
        for &(cx, cy) in &centers {
            for d in 0..5 {
                let o = d as f32 * 0.1;
                data.push(FeatureVec::new(vec![cx + o, cy - o]));
            }
        }
        data
    }

    #[test]
    fn recovers_separated_blobs() {
        let data = blobs();
        let km = KMeans::fit(&data, 3, 50, 1);
        // All points of one blob share a cluster; blobs get distinct ones.
        let labels: Vec<usize> = data.iter().map(|v| km.assign(v)).collect();
        for blob in 0..3 {
            let first = labels[blob * 5];
            assert!(labels[blob * 5..(blob + 1) * 5].iter().all(|&l| l == first));
        }
        let distinct: std::collections::HashSet<_> = labels.iter().collect();
        assert_eq!(distinct.len(), 3);
    }

    #[test]
    fn deterministic_per_seed() {
        let data = blobs();
        let a = KMeans::fit(&data, 3, 50, 7);
        let b = KMeans::fit(&data, 3, 50, 7);
        assert_eq!(a.centroids(), b.centroids());
    }

    #[test]
    fn inertia_decreases_with_k() {
        let data = blobs();
        let i1 = KMeans::fit(&data, 1, 50, 3).inertia(&data);
        let i3 = KMeans::fit(&data, 3, 50, 3).inertia(&data);
        assert!(i3 < i1 / 10.0, "k=3 inertia {i3} vs k=1 {i1}");
    }

    #[test]
    fn discovers_object_classes_without_labels() {
        // The CoIC use case: cluster unlabeled SimNet descriptors and check
        // the clusters recover the underlying object classes (purity).
        let gen = SceneGenerator::new(64);
        let net = SimNet::default_net();
        let mut rng = StdRng::seed_from_u64(13);
        let classes = 5u32;
        let per = 8usize;
        let mut data = Vec::new();
        let mut truth = Vec::new();
        for c in 0..classes {
            for _ in 0..per {
                let v = ViewParams::jittered(&mut rng, 0.06, 3.0);
                data.push(net.extract(&gen.observe(ObjectClass(c), &v, &mut rng)));
                truth.push(c);
            }
        }
        let km = KMeans::fit_best(&data, classes as usize, 100, 2, 5);
        // Purity: each cluster's majority class fraction.
        let mut majority = vec![std::collections::HashMap::new(); classes as usize];
        for (v, &t) in data.iter().zip(&truth) {
            *majority[km.assign(v)].entry(t).or_insert(0u32) += 1;
        }
        let pure: u32 = majority
            .iter()
            .map(|m| m.values().copied().max().unwrap_or(0))
            .sum();
        let purity = pure as f64 / data.len() as f64;
        assert!(purity >= 0.9, "cluster purity {purity}");
        // And the within-cluster spread suggests a sane threshold.
        let spread = km.mean_within_cluster_distance(&data);
        assert!(spread > 0.0 && spread < 0.6, "spread {spread}");
    }

    #[test]
    fn silhouette_peaks_at_true_k() {
        let data = blobs(); // three true clusters
        let s2 = KMeans::fit_best(&data, 2, 50, 1, 3).silhouette(&data);
        let s3 = KMeans::fit_best(&data, 3, 50, 1, 3).silhouette(&data);
        let s6 = KMeans::fit_best(&data, 6, 50, 1, 3).silhouette(&data);
        assert!(s3 > s2, "k=3 ({s3:.3}) should beat k=2 ({s2:.3})");
        assert!(s3 > s6, "k=3 ({s3:.3}) should beat k=6 ({s6:.3})");
        assert!(s3 > 0.8, "true clustering should be near 1, got {s3:.3}");
    }

    #[test]
    fn silhouette_degenerate_cases() {
        let data = blobs();
        // k = 1: undefined, reported as 0.
        assert_eq!(KMeans::fit(&data, 1, 10, 0).silhouette(&data), 0.0);
    }

    #[test]
    fn k_equals_n_gives_zero_inertia() {
        let data = blobs();
        let km = KMeans::fit(&data, data.len(), 10, 5);
        assert!(km.inertia(&data) < 1e-9);
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_data_rejected() {
        let _ = KMeans::fit(&[], 1, 10, 0);
    }

    #[test]
    #[should_panic(expected = "k must be")]
    fn oversized_k_rejected() {
        let _ = KMeans::fit(&blobs(), 99, 10, 0);
    }
}

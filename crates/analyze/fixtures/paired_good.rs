//! Fixture: every `offer()` is settled in the same function, and the
//! acquiring/settling definitions themselves are exempt. Never compiled.

fn admit(ctl: &mut OverloadControl, req: u64, now: u64) {
    match ctl.offer(req, now) {
        Verdict::Serve => ctl.release(req),
        Verdict::Shed => ctl.note_shed(req),
    }
}

fn offer(inner: &mut Inner, req: u64, now: u64) -> Verdict {
    // The defining function is the policy layer, not a call site.
    inner.offer(req, now)
}

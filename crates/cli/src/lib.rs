//! # coic-cli
//!
//! Command-line front end for the CoIC reproduction. Subcommands:
//!
//! ```text
//! coic trace gen   --app safedriving|arena|vrvideo|flashcrowd --out trace.csv [...]
//! coic trace info  --in trace.csv
//! coic sim         --in trace.csv [--mode coic|origin] [network flags]
//!                  [--trace-out t.jsonl] [--metrics-out m.txt]
//! coic live        --in trace.csv [--seed N] [--driver threads|evloop]
//!                  [--trace-out t.jsonl] [--metrics-out m.txt]
//! coic compare     --in trace.csv [network flags]
//! coic obs report  [--trace t.jsonl] [--metrics m.txt]
//! coic model gen   --size-bytes N --seed N --out model.cmf
//! coic model info  --in model.cmf
//! coic model render --in model.cmf --out render.pgm [--size 256]
//! coic hash        --in any-file
//! coic pano gen    --frame N --out pano.pgm [--height 256]
//! coic pano crop   --frame N --yaw R --pitch R --out view.pgm
//! coic bench       [--quick] [--seed N] [--runs N] [--out BENCH_edge.json]
//! coic bench --load [--load-clients N] [--conns N,N,..] [--out BENCH_live.json]
//! coic lint        [--root DIR] [--rules FILE]
//! coic analyze trace --trace t.jsonl --metrics m.txt [--invariants FILE]
//! ```
//!
//! All subcommand logic lives in this library so it is unit-testable; the
//! binary is a thin `main`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod args;
pub mod commands;

pub use args::{ArgError, Args};

/// Top-level dispatch: returns the text to print, or an error message.
pub fn run(raw: Vec<String>) -> Result<String, String> {
    if raw.iter().any(|a| a == "--help" || a == "-h") {
        return Ok(USAGE.to_string());
    }
    // Boolean switches are declared per subcommand (every other flag
    // takes a value, and `--flag` with no value stays an error there).
    let switches: &[&str] = match raw.first().map(String::as_str) {
        Some("bench") => &["quick", "load"],
        _ => &[],
    };
    let args = Args::parse_with_switches(raw, switches).map_err(|e| e.to_string())?;
    let cmd: Vec<&str> = args.command.iter().map(|s| s.as_str()).collect();
    match cmd.as_slice() {
        ["trace", "gen"] => commands::trace_gen(&args),
        ["trace", "info"] => commands::trace_info(&args),
        ["sim"] => commands::sim(&args),
        ["live"] => commands::live(&args),
        ["compare"] => commands::compare(&args),
        ["obs", "report"] => commands::obs_report(&args),
        ["model", "gen"] => commands::model_gen(&args),
        ["model", "info"] => commands::model_info(&args),
        ["model", "render"] => commands::model_render(&args),
        ["hash"] => commands::hash(&args),
        ["pano", "gen"] => commands::pano_gen(&args),
        ["pano", "crop"] => commands::pano_crop(&args),
        ["bench"] => commands::bench(&args),
        ["lint"] => commands::lint(&args),
        ["analyze", "trace"] => commands::analyze_trace(&args),
        [] | ["help"] => Ok(USAGE.to_string()),
        other => Err(format!("unknown command {:?}\n\n{USAGE}", other.join(" ")).into()),
    }
    .map_err(|e: Box<dyn std::error::Error>| e.to_string())
}

/// Usage text.
pub const USAGE: &str = "\
coic — cooperative edge caching for mobile immersive computing

USAGE:
  coic trace gen    --app safedriving|arena|vrvideo|flashcrowd --out FILE
                    [--users N] [--requests N] [--seed N] [--zipf S]
                    [--pool N] [--model-kb N] [--frames N]
                    [--rate X] [--burst-x X] [--burst-start-ms N]
                    [--burst-ms N] [--hot N] [--horizon-ms N]
                    [--zones N] [--shared F]
  coic trace info   --in FILE
  coic sim          --in FILE [--mode coic|origin] [--access-mbps X]
                    [--wan-mbps X] [--clients N] [--edges N]
                    [--peer-lookup 0|1] [--peer-fanout K] [--replicate N]
                    [--prefetch N] [--seed N]
                    [--origin-fallback 0|1] [--open-loop 0|1]
                    [--lookup-ms N] [--admission N]
                    [--admission-aimd 0|1] [--admission-queue N]
                    [--admission-age-ms N] [--latency-target-ms N]
                    [--retry-after-ms N] [--brownout 0|1]
                    [--edge-down MS@EDGE[,MS@EDGE...]]
                    [--canonical 0|1] [--trace-out FILE] [--metrics-out FILE]
  coic live         --in FILE [--seed N] [--driver threads|evloop]
                    [--trace-out FILE] [--metrics-out FILE]
  coic compare      --in FILE [same network flags as sim]
  coic obs report   [--trace FILE] [--metrics FILE]
  coic model gen    --size-bytes N --out FILE [--seed N]
  coic model info   --in FILE
  coic model render --in FILE --out FILE.pgm [--size N]
  coic hash         --in FILE
  coic pano gen     --frame N --out FILE.pgm [--height N]
  coic pano crop    --frame N --yaw R --pitch R --out FILE.pgm
                    [--fov R] [--width N] [--height N]
  coic bench        [--quick] [--seed N] [--runs N] [--out BENCH_edge.json]
                    [--trace-out FILE] [--metrics-out FILE]
                    (thread grid: 1/4/16, matching EXPERIMENTS.md)
  coic bench --load [--load-clients N] [--load-reqs N] [--conns N,N,...]
                    [--drivers threads,evloop] [--seed N]
                    [--out BENCH_live.json] [--ledger-out FILE]
                    (live-scale harness: N simulated clients multiplexed
                     over each connection-pool size, per IO driver)
  coic lint         [--root DIR] [--rules FILE]
  coic analyze trace --trace FILE --metrics FILE
                    [--invariants FILE] [--root DIR]";

//! Online statistics used throughout the simulator and the experiment
//! harness: running mean/variance (Welford), exact percentile summaries for
//! experiment-sized samples, and fixed-layout histograms.

use serde::{Deserialize, Serialize};

/// Welford's online mean/variance accumulator.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Welford {
    /// Create an empty accumulator.
    pub fn new() -> Self {
        Welford {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Fold one observation into the accumulator.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 for an empty accumulator).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest observation (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }
}

/// Exact sample summary: keeps every observation, computes percentiles on
/// demand. Experiments in this workspace collect at most a few hundred
/// thousand points, so exact percentiles are affordable and remove the
/// estimator-accuracy caveat from reported numbers.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Summary {
    values: Vec<f64>,
    sorted: bool,
}

impl Summary {
    /// Create an empty summary.
    pub fn new() -> Self {
        Summary {
            values: Vec::new(),
            sorted: true,
        }
    }

    /// Record one observation.
    pub fn push(&mut self, x: f64) {
        self.values.push(x);
        self.sorted = false;
    }

    /// Fold every observation of `other` into this summary.
    pub fn merge(&mut self, other: &Summary) {
        self.values.extend_from_slice(&other.values);
        self.sorted = false;
    }

    /// Number of observations.
    pub fn count(&self) -> usize {
        self.values.len()
    }

    /// True when no observations were recorded.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        self.values.iter().sum::<f64>() / self.values.len() as f64
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.values
                .sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
            self.sorted = true;
        }
    }

    /// Percentile via linear interpolation between closest ranks.
    /// `q` in [0, 1]. Returns 0 when empty.
    pub fn quantile(&mut self, q: f64) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        self.ensure_sorted();
        let q = q.clamp(0.0, 1.0);
        let pos = q * (self.values.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        if lo == hi {
            self.values[lo]
        } else {
            let frac = pos - lo as f64;
            self.values[lo] * (1.0 - frac) + self.values[hi] * frac
        }
    }

    /// Median (p50).
    pub fn median(&mut self) -> f64 {
        self.quantile(0.5)
    }

    /// 99th percentile.
    pub fn p99(&mut self) -> f64 {
        self.quantile(0.99)
    }

    /// Smallest observation (0 when empty).
    pub fn min(&mut self) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        self.ensure_sorted();
        self.values[0]
    }

    /// Largest observation (0 when empty).
    pub fn max(&mut self) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        self.ensure_sorted();
        *self.values.last().unwrap()
    }

    /// All recorded values, unsorted.
    pub fn values(&self) -> &[f64] {
        &self.values
    }
}

/// Online quantile estimation with the P² algorithm (Jain & Chlamtac,
/// 1985): tracks one quantile in O(1) memory, for long-running monitors
/// where keeping every sample ([`Summary`]) is too expensive.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct P2Quantile {
    q: f64,
    /// Marker heights (the 5 running estimates).
    heights: [f64; 5],
    /// Marker positions (1-based ranks).
    positions: [f64; 5],
    /// Desired marker positions.
    desired: [f64; 5],
    /// Desired position increments per observation.
    increments: [f64; 5],
    count: usize,
    /// First five observations, used for initialization.
    init: Vec<f64>,
}

impl P2Quantile {
    /// Track the `q`-quantile (`0 < q < 1`).
    ///
    /// # Panics
    /// Panics if `q` is outside `(0, 1)`.
    pub fn new(q: f64) -> Self {
        assert!(q > 0.0 && q < 1.0, "quantile must be in (0,1)");
        P2Quantile {
            q,
            heights: [0.0; 5],
            positions: [1.0, 2.0, 3.0, 4.0, 5.0],
            desired: [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0],
            increments: [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0],
            count: 0,
            init: Vec::with_capacity(5),
        }
    }

    /// Fold in one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        if self.init.len() < 5 {
            self.init.push(x);
            if self.init.len() == 5 {
                self.init
                    .sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
                for (h, v) in self.heights.iter_mut().zip(&self.init) {
                    *h = *v;
                }
            }
            return;
        }
        // Find the cell k such that heights[k] <= x < heights[k+1].
        let k = if x < self.heights[0] {
            self.heights[0] = x;
            0
        } else if x >= self.heights[4] {
            self.heights[4] = x;
            3
        } else {
            (0..4)
                .find(|&i| x < self.heights[i + 1])
                .expect("x is within the marker range")
        };
        for p in self.positions.iter_mut().skip(k + 1) {
            *p += 1.0;
        }
        for (d, inc) in self.desired.iter_mut().zip(&self.increments) {
            *d += inc;
        }
        // Adjust the three interior markers with parabolic interpolation.
        for i in 1..4 {
            let d = self.desired[i] - self.positions[i];
            let right = self.positions[i + 1] - self.positions[i];
            let left = self.positions[i - 1] - self.positions[i];
            if (d >= 1.0 && right > 1.0) || (d <= -1.0 && left < -1.0) {
                let d = d.signum();
                let h = self.heights[i];
                // P² parabolic formula.
                let candidate = h + d / (self.positions[i + 1] - self.positions[i - 1])
                    * ((self.positions[i] - self.positions[i - 1] + d) * (self.heights[i + 1] - h)
                        / right
                        + (self.positions[i + 1] - self.positions[i] - d)
                            * (h - self.heights[i - 1])
                            / -left);
                // Fall back to linear when the parabola leaves the bracket.
                self.heights[i] =
                    if self.heights[i - 1] < candidate && candidate < self.heights[i + 1] {
                        candidate
                    } else if d > 0.0 {
                        h + (self.heights[i + 1] - h) / right
                    } else {
                        h + (self.heights[i - 1] - h) / left
                    };
                self.positions[i] += d;
            }
        }
    }

    /// Current estimate (exact for fewer than five observations).
    pub fn value(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        if self.init.len() < 5 {
            // Too few samples: exact small-sample quantile.
            let mut v = self.init.clone();
            v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
            let pos = self.q * (v.len() - 1) as f64;
            return v[pos.round() as usize];
        }
        self.heights[2]
    }

    /// Observations folded in so far.
    pub fn count(&self) -> usize {
        self.count
    }
}

/// Fixed-bin histogram over `[lo, hi)` with uniform bin width, plus
/// underflow/overflow counters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Create a histogram over `[lo, hi)` with `nbins` uniform bins.
    ///
    /// # Panics
    /// Panics if `nbins == 0` or `hi <= lo`.
    pub fn new(lo: f64, hi: f64, nbins: usize) -> Self {
        assert!(nbins > 0, "histogram needs at least one bin");
        assert!(hi > lo, "histogram range must be non-empty");
        Histogram {
            lo,
            hi,
            bins: vec![0; nbins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Record one observation.
    pub fn record(&mut self, x: f64) {
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let w = (self.hi - self.lo) / self.bins.len() as f64;
            let idx = ((x - self.lo) / w) as usize;
            let idx = idx.min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Per-bin counts.
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Observations below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above the upper bound.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total recorded observations, including out-of-range ones.
    pub fn total(&self) -> u64 {
        self.bins.iter().sum::<u64>() + self.underflow + self.overflow
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_closed_form() {
        let mut w = Welford::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            w.push(x);
        }
        assert_eq!(w.count(), 8);
        assert!((w.mean() - 5.0).abs() < 1e-12);
        // Population variance of that set is 4; sample variance = 32/7.
        assert!((w.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(w.min(), Some(2.0));
        assert_eq!(w.max(), Some(9.0));
    }

    #[test]
    fn welford_empty_is_safe() {
        let w = Welford::new();
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.variance(), 0.0);
        assert_eq!(w.min(), None);
    }

    #[test]
    fn summary_quantiles_exact() {
        let mut s = Summary::new();
        for x in 1..=100 {
            s.push(x as f64);
        }
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 100.0);
        assert!((s.median() - 50.5).abs() < 1e-12);
        assert!((s.quantile(0.0) - 1.0).abs() < 1e-12);
        assert!((s.quantile(1.0) - 100.0).abs() < 1e-12);
        assert!((s.quantile(0.25) - 25.75).abs() < 1e-12);
    }

    #[test]
    fn summary_single_value() {
        let mut s = Summary::new();
        s.push(42.0);
        assert_eq!(s.median(), 42.0);
        assert_eq!(s.p99(), 42.0);
        assert_eq!(s.mean(), 42.0);
    }

    #[test]
    fn summary_interleaves_push_and_quantile() {
        let mut s = Summary::new();
        s.push(10.0);
        s.push(20.0);
        assert_eq!(s.median(), 15.0);
        s.push(30.0);
        assert_eq!(s.median(), 20.0);
    }

    #[test]
    fn p2_tracks_median_of_uniform_stream() {
        let mut p = P2Quantile::new(0.5);
        // Weyl sequence: n·φ mod 1 is equidistributed over [0, 1).
        let phi = 0.618_033_988_749_894_9_f64;
        for n in 1..=20_000u64 {
            p.push((n as f64 * phi).fract());
        }
        let v = p.value();
        assert!((v - 0.5).abs() < 0.05, "median estimate {v}");
    }

    #[test]
    fn p2_matches_exact_quantile_on_linear_ramp() {
        for q in [0.1, 0.5, 0.9, 0.99] {
            let mut p = P2Quantile::new(q);
            let n = 10_000;
            for i in 0..n {
                p.push(i as f64);
            }
            let exact = q * (n - 1) as f64;
            let est = p.value();
            let err = (est - exact).abs() / n as f64;
            assert!(err < 0.02, "q={q}: estimate {est}, exact {exact}");
        }
    }

    #[test]
    fn p2_small_samples_are_exact() {
        let mut p = P2Quantile::new(0.5);
        assert_eq!(p.value(), 0.0);
        p.push(10.0);
        assert_eq!(p.value(), 10.0);
        p.push(20.0);
        p.push(30.0);
        assert_eq!(p.value(), 20.0);
        assert_eq!(p.count(), 3);
    }

    #[test]
    #[should_panic(expected = "quantile must be")]
    fn p2_rejects_degenerate_quantile() {
        let _ = P2Quantile::new(1.0);
    }

    #[test]
    fn histogram_binning() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.record(-1.0);
        h.record(0.0);
        h.record(9.999);
        h.record(10.0);
        h.record(5.5);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.bins()[0], 1);
        assert_eq!(h.bins()[9], 1);
        assert_eq!(h.bins()[5], 1);
        assert_eq!(h.total(), 5);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn histogram_zero_bins_panics() {
        let _ = Histogram::new(0.0, 1.0, 0);
    }
}

//! Size-aware entry store with pluggable eviction and optional TTL.
//!
//! The store is the mechanical half of the edge cache: it accounts bytes,
//! expires entries, and asks the [`crate::policy`] for victims when
//! capacity runs out. Key typing (exact digest vs. approximate descriptor)
//! is layered on top in [`crate::exact`] and [`crate::approx`].

use crate::admission::{TinyLfu, TinyLfuConfig};
use crate::policy::{EvictionPolicy, PolicyKind};
use crate::stats::CacheStats;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

fn key_hash<K: Hash>(key: &K) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    key.hash(&mut h);
    h.finish()
}

struct Entry<K, V> {
    key: K,
    value: V,
    size: u64,
    expires_at_ns: Option<u64>,
}

/// A bounded, size-aware key-value store.
///
/// # Examples
/// ```
/// use coic_cache::{PolicyKind, Store};
///
/// let mut store: Store<&str, u32> = Store::new(25, PolicyKind::Lru, None);
/// store.insert("a", 1, 10, 0);
/// store.insert("b", 2, 10, 0);
/// let _ = store.get(&"a", 0);            // touch "a" so "b" is coldest
/// let evicted = store.insert("c", 3, 10, 0);
/// assert_eq!(evicted, vec![("b", 2)]);   // LRU victim
/// assert!(store.used_bytes() <= 25);
/// ```
pub struct Store<K, V> {
    capacity_bytes: u64,
    ttl_ns: Option<u64>,
    policy: Box<dyn EvictionPolicy>,
    admission: Option<TinyLfu>,
    by_key: HashMap<K, u64>,
    entries: HashMap<u64, Entry<K, V>>,
    next_id: u64,
    used_bytes: u64,
    stats: CacheStats,
}

impl<K: Hash + Eq + Clone, V> Store<K, V> {
    /// Create a store holding at most `capacity_bytes` of values under the
    /// given eviction policy. `ttl_ns` (if set) expires entries that many
    /// virtual nanoseconds after insertion.
    ///
    /// # Panics
    /// Panics if `capacity_bytes` is zero.
    pub fn new(capacity_bytes: u64, policy: PolicyKind, ttl_ns: Option<u64>) -> Self {
        assert!(capacity_bytes > 0, "cache capacity must be positive");
        Store {
            capacity_bytes,
            ttl_ns,
            policy: policy.build(),
            admission: None,
            by_key: HashMap::new(),
            entries: HashMap::new(),
            next_id: 0,
            used_bytes: 0,
            stats: CacheStats::default(),
        }
    }

    /// Enable TinyLFU admission: when full, a new entry must have a higher
    /// estimated request frequency than the eviction victim to get in.
    pub fn with_admission(mut self, cfg: TinyLfuConfig) -> Self {
        self.admission = Some(TinyLfu::new(cfg));
        self
    }

    /// Capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity_bytes
    }

    /// Bytes currently accounted to stored values.
    pub fn used_bytes(&self) -> u64 {
        self.used_bytes
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Counters.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn remove_id(&mut self, id: u64) -> Option<(K, V)> {
        let entry = self.entries.remove(&id)?;
        self.by_key.remove(&entry.key);
        self.policy.on_remove(id);
        self.used_bytes -= entry.size;
        Some((entry.key, entry.value))
    }

    fn expired(&self, id: u64, now_ns: u64) -> bool {
        self.entries
            .get(&id)
            .and_then(|e| e.expires_at_ns)
            .map(|t| now_ns >= t)
            .unwrap_or(false)
    }

    /// Look `key` up at virtual time `now_ns`, recording hit/miss and
    /// recency. Expired entries count as misses and are removed.
    pub fn get(&mut self, key: &K, now_ns: u64) -> Option<&V> {
        if let Some(adm) = &mut self.admission {
            adm.record(key_hash(key));
        }
        let Some(&id) = self.by_key.get(key) else {
            self.stats.misses += 1;
            return None;
        };
        if self.expired(id, now_ns) {
            self.remove_id(id);
            self.stats.expired += 1;
            self.stats.misses += 1;
            return None;
        }
        self.stats.hits += 1;
        self.policy.on_access(id);
        Some(&self.entries[&id].value)
    }

    /// Check presence without touching stats or recency (diagnostics).
    pub fn peek(&self, key: &K) -> Option<&V> {
        let id = self.by_key.get(key)?;
        Some(&self.entries[id].value)
    }

    /// TTL-aware presence check through a shared reference: like
    /// [`Store::peek`] but an entry whose TTL has elapsed at `now_ns` is
    /// reported absent (it stays in place until a mutating call removes
    /// it). This is the read path of the sharded concurrent wrappers,
    /// where lookups hold only a read lock and must not mutate anything.
    pub fn peek_valid(&self, key: &K, now_ns: u64) -> Option<&V> {
        let &id = self.by_key.get(key)?;
        if self.expired(id, now_ns) {
            return None;
        }
        Some(&self.entries[&id].value)
    }

    /// Refresh recency for `key` without recording a hit or a miss. The
    /// sharded wrappers count hits on their lock-free read path and replay
    /// the recency effect here under the next write lock, so eviction
    /// order still tracks access order without double-counting stats.
    /// Expired entries are removed (and counted) exactly as in
    /// [`Store::get`]. Returns `false` when the key is absent (evicted or
    /// removed since the touch was observed) — the sharded wrappers'
    /// drain protocol guarantees this never happens, and model/regression
    /// tests pin that invariant on the return value.
    pub fn touch(&mut self, key: &K, now_ns: u64) -> bool {
        let Some(&id) = self.by_key.get(key) else {
            return false;
        };
        if self.expired(id, now_ns) {
            self.remove_id(id);
            self.stats.expired += 1;
            return true;
        }
        self.policy.on_access(id);
        true
    }

    /// Insert `value` of `size` bytes under `key`, evicting as needed.
    /// Returns the evicted `(key, value)` pairs (empty when none). A value
    /// larger than the whole cache is rejected and counted.
    pub fn insert(&mut self, key: K, value: V, size: u64, now_ns: u64) -> Vec<(K, V)> {
        if size > self.capacity_bytes {
            self.stats.rejected += 1;
            return Vec::new();
        }
        let mut evicted = Vec::new();
        let candidate_hash = key_hash(&key);
        if let Some(adm) = &mut self.admission {
            adm.record(candidate_hash);
        }
        // Replace an existing entry under the same key.
        if let Some(&old) = self.by_key.get(&key) {
            self.remove_id(old);
        }
        while self.used_bytes + size > self.capacity_bytes {
            let victim = self
                .policy
                .victim()
                .expect("store over capacity but policy has no victim");
            if let Some(adm) = &self.admission {
                // TinyLFU gate: the newcomer must be warmer than the entry
                // it would displace, else it is turned away at the door.
                let victim_hash = key_hash(&self.entries.get(&victim).expect("victim exists").key);
                if !adm.admit(candidate_hash, victim_hash) {
                    self.stats.admission_rejects += 1;
                    return evicted;
                }
            }
            let pair = self
                .remove_id(victim)
                .expect("policy returned unknown victim");
            self.stats.evictions += 1;
            evicted.push(pair);
        }
        let id = self.next_id;
        self.next_id += 1;
        let expires_at_ns = self.ttl_ns.map(|ttl| now_ns + ttl);
        self.entries.insert(
            id,
            Entry {
                key: key.clone(),
                value,
                size,
                expires_at_ns,
            },
        );
        self.by_key.insert(key, id);
        self.policy.on_insert(id, size);
        self.used_bytes += size;
        self.stats.insertions += 1;
        evicted
    }

    /// Iterate over all live `(key, value)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.entries.values().map(|e| (&e.key, &e.value))
    }

    /// Remove `key`, returning its value.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let id = *self.by_key.get(key)?;
        self.remove_id(id).map(|(_, v)| v)
    }

    /// Drop every entry whose TTL has elapsed; returns how many were
    /// removed. (Lazy expiry in [`Store::get`] already keeps lookups
    /// correct; this is for explicit housekeeping.)
    pub fn sweep_expired(&mut self, now_ns: u64) -> usize {
        let dead: Vec<u64> = self
            .entries
            .iter()
            .filter(|(_, e)| e.expires_at_ns.map(|t| now_ns >= t).unwrap_or(false))
            .map(|(&id, _)| id)
            .collect();
        let n = dead.len();
        for id in dead {
            self.remove_id(id);
            self.stats.expired += 1;
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store(cap: u64) -> Store<String, u32> {
        Store::new(cap, PolicyKind::Lru, None)
    }

    #[test]
    fn insert_get_roundtrip() {
        let mut s = store(100);
        s.insert("a".into(), 1, 10, 0);
        assert_eq!(s.get(&"a".into(), 0), Some(&1));
        assert_eq!(s.get(&"b".into(), 0), None);
        assert_eq!(s.stats().hits, 1);
        assert_eq!(s.stats().misses, 1);
        assert_eq!(s.used_bytes(), 10);
    }

    #[test]
    fn capacity_is_enforced_by_eviction() {
        let mut s = store(25);
        s.insert("a".into(), 1, 10, 0);
        s.insert("b".into(), 2, 10, 0);
        let evicted = s.insert("c".into(), 3, 10, 0);
        assert_eq!(evicted, vec![("a".into(), 1)]);
        assert!(s.used_bytes() <= 25);
        assert_eq!(s.len(), 2);
        assert_eq!(s.stats().evictions, 1);
    }

    #[test]
    fn lru_access_protects_entry() {
        let mut s = store(25);
        s.insert("a".into(), 1, 10, 0);
        s.insert("b".into(), 2, 10, 0);
        let _ = s.get(&"a".into(), 0); // a is now hotter than b
        let evicted = s.insert("c".into(), 3, 10, 0);
        assert_eq!(evicted, vec![("b".into(), 2)]);
    }

    #[test]
    fn replacement_under_same_key_keeps_one_entry() {
        let mut s = store(100);
        s.insert("a".into(), 1, 10, 0);
        s.insert("a".into(), 2, 30, 0);
        assert_eq!(s.len(), 1);
        assert_eq!(s.used_bytes(), 30);
        assert_eq!(s.get(&"a".into(), 0), Some(&2));
    }

    #[test]
    fn oversized_value_rejected() {
        let mut s = store(10);
        let evicted = s.insert("big".into(), 1, 11, 0);
        assert!(evicted.is_empty());
        assert_eq!(s.len(), 0);
        assert_eq!(s.stats().rejected, 1);
    }

    #[test]
    fn ttl_expires_on_get() {
        let mut s: Store<String, u32> = Store::new(100, PolicyKind::Lru, Some(1_000));
        s.insert("a".into(), 1, 10, 0);
        assert_eq!(s.get(&"a".into(), 999), Some(&1));
        assert_eq!(s.get(&"a".into(), 1_000), None);
        assert_eq!(s.stats().expired, 1);
        assert_eq!(s.len(), 0);
    }

    #[test]
    fn sweep_removes_expired_in_bulk() {
        let mut s: Store<String, u32> = Store::new(100, PolicyKind::Lru, Some(500));
        s.insert("a".into(), 1, 10, 0);
        s.insert("b".into(), 2, 10, 100);
        assert_eq!(s.sweep_expired(550), 1); // only "a" has expired
        assert_eq!(s.len(), 1);
        assert_eq!(s.sweep_expired(1_000), 1);
        assert!(s.is_empty());
        assert_eq!(s.used_bytes(), 0);
    }

    #[test]
    fn remove_returns_value() {
        let mut s = store(100);
        s.insert("a".into(), 7, 10, 0);
        assert_eq!(s.remove(&"a".into()), Some(7));
        assert_eq!(s.remove(&"a".into()), None);
        assert_eq!(s.used_bytes(), 0);
    }

    #[test]
    fn peek_does_not_affect_stats_or_order() {
        let mut s = store(25);
        s.insert("a".into(), 1, 10, 0);
        s.insert("b".into(), 2, 10, 0);
        assert_eq!(s.peek(&"a".into()), Some(&1));
        assert_eq!(s.stats().hits, 0);
        // a was peeked, not touched: it is still the LRU victim.
        let evicted = s.insert("c".into(), 3, 10, 0);
        assert_eq!(evicted, vec![("a".into(), 1)]);
    }

    #[test]
    fn multi_eviction_for_large_insert() {
        let mut s = store(30);
        s.insert("a".into(), 1, 10, 0);
        s.insert("b".into(), 2, 10, 0);
        s.insert("c".into(), 3, 10, 0);
        let evicted = s.insert("d".into(), 4, 25, 0);
        assert_eq!(evicted.len(), 3);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn admission_protects_hot_entries() {
        use crate::admission::TinyLfuConfig;
        let mut s: Store<u32, u32> =
            Store::new(30, PolicyKind::Lru, None).with_admission(TinyLfuConfig::default());
        // Warm three entries with repeated gets.
        for k in 0..3u32 {
            s.insert(k, k, 10, 0);
        }
        for _ in 0..5 {
            for k in 0..3u32 {
                let _ = s.get(&k, 0);
            }
        }
        // A cold scan of new keys must bounce off the filter.
        for k in 100..120u32 {
            s.insert(k, k, 10, 0);
        }
        for k in 0..3u32 {
            assert!(s.get(&k, 0).is_some(), "hot key {k} was displaced");
        }
        assert!(s.stats().admission_rejects >= 19);
    }

    #[test]
    fn admission_lets_warmer_newcomers_in() {
        use crate::admission::TinyLfuConfig;
        let mut s: Store<u32, u32> =
            Store::new(20, PolicyKind::Lru, None).with_admission(TinyLfuConfig::default());
        s.insert(1, 1, 10, 0);
        s.insert(2, 2, 10, 0);
        // Key 9 becomes genuinely popular (misses recorded via get).
        for _ in 0..8 {
            let _ = s.get(&9, 0);
        }
        s.insert(9, 9, 10, 0);
        assert!(s.get(&9, 0).is_some(), "popular newcomer must be admitted");
    }

    #[test]
    fn works_with_every_policy() {
        for kind in PolicyKind::ALL {
            let mut s: Store<u32, u32> = Store::new(100, kind, None);
            for i in 0..50u32 {
                s.insert(i, i, 7, 0);
                if i % 2 == 0 {
                    let _ = s.get(&i, 0);
                }
            }
            assert!(s.used_bytes() <= 100, "{kind} exceeded capacity");
            assert!(s.len() <= 14);
            assert!(!s.is_empty());
        }
    }
}

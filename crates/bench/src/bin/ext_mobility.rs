//! **Ext K** — time-varying wireless bandwidth (user mobility / fading).
//!
//! The paper shapes a *static* link with `tc`; a walking user's 802.11ac
//! rate swings by an order of magnitude. This experiment replays the
//! recognition workload under step-fading access schedules and shows that
//! CoIC's latency advantage is robust across fading profiles — its hits
//! dodge the WAN entirely, keeping absolute latency interactive while the
//! baseline drifts upward.
//!
//! Run with: `cargo run --release -p coic-bench --bin ext_mobility`

use coic_bench::{base_config, fig2a_trace};
use coic_core::simrun::{run, Mode, SimConfig};

fn main() {
    let trace = fig2a_trace(160, 42);

    // Fading profiles: (label, schedule of (ms, Mbps) steps from 400 Mbps).
    let profiles: Vec<(&str, Vec<(u64, f64)>)> = vec![
        ("static 400 Mbps", vec![]),
        (
            "mild fade (400⇄100)",
            vec![
                (2_000, 100.0),
                (4_000, 400.0),
                (6_000, 100.0),
                (8_000, 400.0),
            ],
        ),
        (
            "deep fade (400⇄20)",
            vec![(2_000, 20.0), (4_000, 400.0), (6_000, 20.0), (8_000, 400.0)],
        ),
        (
            "walk away (400→100→20)",
            vec![(3_000, 100.0), (6_000, 20.0)],
        ),
    ];

    println!("Ext K — access-link fading (160 recognition requests)\n");
    println!(
        "{:<24} | {:>11} {:>10} | {:>11} {:>10} | {:>9}",
        "profile", "origin-mean", "origin-p99", "coic-mean", "coic-p99", "reduction"
    );
    coic_bench::rule(92);
    for (label, schedule) in profiles {
        let mk = |mode| SimConfig {
            mode,
            access_schedule: schedule.clone(),
            ..base_config()
        };
        let mut origin = run(&trace, &mk(Mode::Origin));
        let mut coic = run(&trace, &mk(Mode::CoIc));
        let red = coic_core::reduction_percent(origin.mean_latency_ms(), coic.mean_latency_ms());
        println!(
            "{:<24} | {:>8.1} ms {:>7.1} ms | {:>8.1} ms {:>7.1} ms | {:>8.2}%",
            label,
            origin.mean_latency_ms(),
            origin.latency_ms.p99(),
            coic.mean_latency_ms(),
            coic.latency_ms.p99(),
            red
        );
    }
    coic_bench::rule(92);
    println!("CoIC's advantage is robust to fading (~37-42% across profiles):");
    println!("hits dodge the WAN entirely, so its absolute latency stays well");
    println!("inside interactive range while the baseline drifts past 200 ms.");
}

//! Recall parity property test (ISSUE 7, satellite 3).
//!
//! Drives [`SnapshotApproxCache`] with randomly generated descriptor sets
//! and query mixes, and pins each approximate family's *hit ratio* to a
//! brute-force linear scan over the same entries. The acceptance band is
//! the same 0.5% the bench gate enforces: the snapshot families may
//! satisfice (answer with any in-radius entry instead of the true
//! nearest), but they may not flip hit/miss decisions beyond that band.
//!
//! This is intentionally a *decision* test, not a nearest-neighbour test:
//! the threshold-cache contract in `approx.rs` only cares whether some
//! cached descriptor sits within the radius, so that is what we compare.

use coic_cache::{AnnFamily, SnapshotApproxCache};
use coic_vision::features::FeatureVec;
use proptest::prelude::*;

/// Matches `check_approx_gate`'s `APPROX_HIT_RATIO_TOLERANCE`.
const HIT_RATIO_TOLERANCE: f64 = 0.005;
const DIM: usize = 16;
const THRESHOLD: f32 = 0.3;

fn unit_vec(seed: &[f32]) -> FeatureVec {
    let norm = seed.iter().map(|x| x * x).sum::<f32>().sqrt().max(1e-6);
    FeatureVec::new(seed.iter().map(|x| x / norm).collect())
}

/// A cluster centre plus a small per-query perturbation, mirroring how
/// real descriptors of the same object differ across frames.
fn perturbed(centre: &[f32], delta: &[f32], scale: f32) -> FeatureVec {
    let v: Vec<f32> = centre
        .iter()
        .zip(delta)
        .map(|(c, d)| c + d * scale)
        .collect();
    unit_vec(&v)
}

fn l2(a: &FeatureVec, b: &FeatureVec) -> f32 {
    a.as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f32>()
        .sqrt()
}

fn build_cache(family: AnnFamily, entries: &[FeatureVec]) -> SnapshotApproxCache<u64> {
    let cache = SnapshotApproxCache::new(64 << 20, THRESHOLD, family, DIM, 16);
    for (i, desc) in entries.iter().enumerate() {
        cache.insert(desc.clone(), i as u64, 256, i as u64);
        // Fold mid-stream so queries exercise both the snapshot and the
        // journal suffix, not just a fully-folded index.
        if i % 23 == 11 {
            cache.maintain(i as u64);
        }
    }
    cache
}

fn centre_strategy() -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-1.0f32..1.0, DIM)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24 })]

    /// For every random corpus + query mix, each snapshot family's hit
    /// ratio stays within 0.5% of the exact linear scan's.
    #[test]
    fn snapshot_families_match_brute_force_hit_ratio(
        centres in prop::collection::vec(centre_strategy(), 4..12),
        deltas in prop::collection::vec(centre_strategy(), 64),
        // Which cluster each stored entry / query belongs to, and how far
        // each query strays from its centre. `stray` spans the threshold
        // so the mix contains both hits and misses.
        entry_picks in prop::collection::vec(0usize..12, 24..96),
        query_picks in prop::collection::vec((0usize..12, 0usize..64, 0.0f32..0.6), 128),
    ) {
        let entries: Vec<FeatureVec> = entry_picks
            .iter()
            .enumerate()
            .map(|(i, &pick)| {
                let centre = &centres[pick % centres.len()];
                perturbed(centre, &deltas[i % deltas.len()], 0.05)
            })
            .collect();
        let queries: Vec<FeatureVec> = query_picks
            .iter()
            .map(|&(pick, d, stray)| {
                let centre = &centres[pick % centres.len()];
                perturbed(centre, &deltas[d], stray)
            })
            .collect();

        // Ground truth: brute-force threshold decision per query.
        let exact_hits = queries
            .iter()
            .filter(|q| entries.iter().any(|e| l2(q, e) <= THRESHOLD))
            .count();
        let exact_ratio = exact_hits as f64 / queries.len() as f64;

        for family in [AnnFamily::DEFAULT_MPLSH, AnnFamily::DEFAULT_HNSW] {
            let cache = build_cache(family, &entries);
            let hits = queries
                .iter()
                .enumerate()
                .filter(|(i, q)| cache.lookup(q, 1_000 + *i as u64).is_hit())
                .count();
            let ratio = hits as f64 / queries.len() as f64;
            prop_assert!(
                (ratio - exact_ratio).abs() <= HIT_RATIO_TOLERANCE,
                "{family:?}: hit ratio {ratio:.4} vs exact {exact_ratio:.4} \
                 ({hits} vs {exact_hits} of {} queries)",
                queries.len()
            );
        }
    }
}

//! TinyLFU admission control.
//!
//! Eviction alone lets a burst of one-hit-wonders flush a popular working
//! set. TinyLFU guards the door instead: every lookup/insert attempt feeds
//! a [`crate::sketch::CountMinSketch`]; when the cache is full, a candidate
//! is admitted only if its estimated frequency beats the eviction victim's.
//! The sketch ages itself, so the comparison reflects a sliding window.

use crate::sketch::CountMinSketch;
use serde::{Deserialize, Serialize};

/// Configuration for the TinyLFU admission filter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TinyLfuConfig {
    /// Sketch counters per row (rounded up to a power of two).
    pub width: usize,
    /// Sketch rows.
    pub depth: usize,
    /// Aging window in recorded events.
    pub window: u64,
}

impl Default for TinyLfuConfig {
    fn default() -> Self {
        TinyLfuConfig {
            width: 4096,
            depth: 4,
            window: 65_536,
        }
    }
}

/// The admission filter.
#[derive(Debug, Clone)]
pub struct TinyLfu {
    sketch: CountMinSketch,
}

impl TinyLfu {
    /// Build the filter.
    pub fn new(cfg: TinyLfuConfig) -> Self {
        TinyLfu {
            sketch: CountMinSketch::new(cfg.width, cfg.depth, cfg.window),
        }
    }

    /// Record that `key` was requested (hit, miss or insert attempt).
    pub fn record(&mut self, key: u64) {
        self.sketch.increment(key);
    }

    /// Should `candidate` displace `victim`? Strictly-greater comparison:
    /// ties keep the incumbent (avoids thrash between equally-warm keys).
    pub fn admit(&self, candidate: u64, victim: u64) -> bool {
        self.sketch.estimate(candidate) > self.sketch.estimate(victim)
    }

    /// Estimated frequency of `key` (diagnostics).
    pub fn estimate(&self, key: u64) -> u32 {
        self.sketch.estimate(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn popular_candidate_displaces_cold_victim() {
        let mut f = TinyLfu::new(TinyLfuConfig::default());
        for _ in 0..10 {
            f.record(1);
        }
        f.record(2);
        assert!(f.admit(1, 2));
        assert!(!f.admit(2, 1));
    }

    #[test]
    fn ties_keep_incumbent() {
        let mut f = TinyLfu::new(TinyLfuConfig::default());
        f.record(1);
        f.record(2);
        assert!(!f.admit(1, 2));
        assert!(!f.admit(2, 1));
    }

    #[test]
    fn one_hit_wonder_cannot_enter() {
        let mut f = TinyLfu::new(TinyLfuConfig::default());
        for _ in 0..5 {
            f.record(42); // incumbent seen five times
        }
        f.record(7); // scanned once
        assert!(!f.admit(7, 42));
    }
}

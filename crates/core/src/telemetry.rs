//! Decision-to-trace glue: maps the engine's [`Decision`] stream onto the
//! structured trace events of [`coic_obs`].
//!
//! The engine itself stays telemetry-free — it already externalizes every
//! choice it makes as a `Decision`, which is what makes its behavior
//! byte-comparable between the simulator and the live stack. This module
//! gives both drivers one shared vocabulary for turning those decisions
//! into trace events, so a sim trace and a live trace of the same workload
//! use identical event names and fields.

use crate::engine::Decision;
use crate::qoe::Path;
use coic_obs::{Recorder, Value};

/// Stable trace label for a hit path (same vocabulary as
/// [`Path::label`], which this forwards to).
pub fn path_label(path: Path) -> &'static str {
    path.label()
}

/// Emit one engine decision as a structured trace event on behalf of
/// `client`. Event names are `decision.<variant>`; every event carries the
/// client id and the request sequence number.
pub fn record_decision(rec: &impl Recorder, at_ns: u64, client: u64, decision: &Decision) {
    let base = |seq: u64| vec![("client", Value::from(client)), ("seq", Value::from(seq))];
    let with_attempt = |seq: u64, attempt: u32| {
        let mut f = base(seq);
        f.push(("attempt", Value::from(attempt as u64)));
        f
    };
    match *decision {
        Decision::Attempt { seq, attempt } => {
            rec.event(at_ns, "decision.attempt", with_attempt(seq, attempt));
        }
        Decision::AttemptFailed { seq, attempt } => {
            rec.event(at_ns, "decision.attempt_failed", with_attempt(seq, attempt));
        }
        Decision::Retry { seq, attempt } => {
            rec.event(at_ns, "decision.retry", with_attempt(seq, attempt));
        }
        Decision::Upload { seq } => rec.event(at_ns, "decision.upload", base(seq)),
        Decision::Unavailable { seq } => rec.event(at_ns, "decision.unavailable", base(seq)),
        Decision::Degrade { seq } => rec.event(at_ns, "decision.degrade", base(seq)),
        Decision::Probe { seq } => rec.event(at_ns, "decision.probe", base(seq)),
        Decision::Rejoin { seq } => rec.event(at_ns, "decision.rejoin", base(seq)),
        Decision::OriginAttempt { seq, attempt } => {
            rec.event(at_ns, "decision.origin_attempt", with_attempt(seq, attempt));
        }
        Decision::Complete { seq, path } => {
            let mut f = base(seq);
            f.push(("path", Value::from(path_label(path))));
            rec.event(at_ns, "decision.complete", f);
        }
        Decision::Overloaded { seq } => rec.event(at_ns, "decision.overloaded", base(seq)),
        Decision::Fail { seq } => rec.event(at_ns, "decision.fail", base(seq)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coic_obs::Telemetry;

    #[test]
    fn decisions_become_named_events() {
        let tel = Telemetry::new();
        record_decision(&tel, 10, 3, &Decision::Attempt { seq: 7, attempt: 0 });
        record_decision(
            &tel,
            20,
            3,
            &Decision::Complete {
                seq: 7,
                path: Path::EdgeHit,
            },
        );
        let jsonl = tel.trace_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"n\":\"decision.attempt\""));
        assert!(lines[0].contains("\"client\":3"));
        assert!(lines[0].contains("\"seq\":7"));
        assert!(lines[1].contains("\"n\":\"decision.complete\""));
        assert!(lines[1].contains("\"path\":\"edge_hit\""));
    }

    #[test]
    fn every_variant_maps_to_a_distinct_name() {
        let tel = Telemetry::new();
        let all = [
            Decision::Attempt { seq: 0, attempt: 0 },
            Decision::AttemptFailed { seq: 0, attempt: 0 },
            Decision::Retry { seq: 0, attempt: 1 },
            Decision::Upload { seq: 0 },
            Decision::Unavailable { seq: 0 },
            Decision::Degrade { seq: 0 },
            Decision::Probe { seq: 0 },
            Decision::Rejoin { seq: 0 },
            Decision::OriginAttempt { seq: 0, attempt: 0 },
            Decision::Overloaded { seq: 0 },
            Decision::Complete {
                seq: 0,
                path: Path::CloudMiss,
            },
            Decision::Fail { seq: 0 },
        ];
        for d in &all {
            record_decision(&tel, 0, 0, d);
        }
        let jsonl = tel.trace_jsonl();
        let names: std::collections::BTreeSet<&str> = jsonl
            .lines()
            .map(|l| {
                let start = l.find("\"n\":\"").unwrap() + 5;
                let end = l[start..].find('"').unwrap();
                &l[start..start + end]
            })
            .collect();
        assert_eq!(names.len(), all.len(), "names must be distinct: {names:?}");
    }
}

//! Minimal in-tree replacement for the `criterion` crate (see
//! shims/README.md). Keeps the `criterion_group!`/`criterion_main!`
//! harness API so the workspace's benches compile and run offline, but
//! replaces the statistical machinery with a plain wall-clock loop that
//! prints mean ns/iter (and throughput when configured).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation for a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// How much setup output to batch per timing batch in
/// [`Bencher::iter_batched`].
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small routine input: large batches.
    SmallInput,
    /// Large routine input: small batches.
    LargeInput,
    /// One setup per routine call.
    PerIteration,
}

impl BatchSize {
    fn batch_len(self) -> usize {
        match self {
            BatchSize::SmallInput => 64,
            BatchSize::LargeInput => 8,
            BatchSize::PerIteration => 1,
        }
    }
}

/// Timing driver handed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` over the configured iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Time `routine` over inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let batch = size.batch_len() as u64;
        let mut remaining = self.iters;
        let mut total = Duration::ZERO;
        while remaining > 0 {
            let n = remaining.min(batch);
            let inputs: Vec<I> = (0..n).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            total += start.elapsed();
            remaining -= n;
        }
        self.elapsed = total;
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_iters: u64,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Hint at the sample count (scales the iteration budget down for
    /// slow benchmarks, mirroring upstream's use).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_iters = (n as u64).max(1);
        self
    }

    /// Set the throughput used for rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        // Calibrate: run once to estimate cost, then pick an iteration
        // count targeting ~50ms of measurement, capped by sample_iters
        // budget semantics (small sample_size => slow bench => few iters).
        let mut probe = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut probe);
        let per_iter = probe.elapsed.max(Duration::from_nanos(1));
        let target = Duration::from_millis(50);
        let iters = (target.as_nanos() / per_iter.as_nanos()).clamp(1, 100_000) as u64;
        let iters = iters.min(self.sample_iters.saturating_mul(1000)).max(1);

        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let ns_per_iter = b.elapsed.as_nanos() as f64 / b.iters as f64;
        let rate = match self.throughput {
            Some(Throughput::Bytes(n)) => {
                format!(
                    " ({:.1} MiB/s)",
                    n as f64 / ns_per_iter * 1e9 / (1 << 20) as f64
                )
            }
            Some(Throughput::Elements(n)) => {
                format!(" ({:.0} elem/s)", n as f64 / ns_per_iter * 1e9)
            }
            None => String::new(),
        };
        println!(
            "bench {}/{}: {:.0} ns/iter{} [{} iters]",
            self.name, id, ns_per_iter, rate, b.iters
        );
        self
    }

    /// End the group (no-op; kept for API parity).
    pub fn finish(&mut self) {}
}

/// Top-level benchmark registry.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_iters: 100,
            throughput: None,
            _criterion: self,
        }
    }
}

/// Declare a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declare the bench entry point running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_loop_runs() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(10);
        g.throughput(Throughput::Bytes(1024));
        let mut count = 0u64;
        g.bench_function("noop", |b| b.iter(|| count += 1));
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
        assert!(count > 0);
    }
}

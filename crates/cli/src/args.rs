//! Minimal `--flag value` argument parsing (no external crates).

use std::collections::HashMap;

/// Parsed command line: a subcommand path, `--key value` flags, and
/// boolean `--switch` flags (declared up front via
/// [`Args::parse_with_switches`]).
#[derive(Debug, Clone)]
pub struct Args {
    /// Positional words before the first `--flag`.
    pub command: Vec<String>,
    flags: HashMap<String, String>,
    switches: Vec<String>,
}

/// Errors from argument parsing or lookup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgError {
    /// A `--flag` had no following value.
    MissingValue(String),
    /// A required flag was absent.
    Required(String),
    /// A flag value failed to parse.
    BadValue {
        /// Flag name.
        flag: String,
        /// Raw value supplied.
        value: String,
        /// What it should have been.
        expected: &'static str,
    },
    /// The same flag appeared twice.
    Duplicate(String),
}

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArgError::MissingValue(k) => write!(f, "flag --{k} needs a value"),
            ArgError::Required(k) => write!(f, "missing required flag --{k}"),
            ArgError::BadValue {
                flag,
                value,
                expected,
            } => write!(f, "--{flag} {value:?}: expected {expected}"),
            ArgError::Duplicate(k) => write!(f, "flag --{k} given twice"),
        }
    }
}

impl std::error::Error for ArgError {}

impl Args {
    /// Parse raw arguments (without the program name). Every `--flag`
    /// takes a value; use [`Args::parse_with_switches`] for commands with
    /// boolean flags.
    pub fn parse<I: IntoIterator<Item = String>>(raw: I) -> Result<Args, ArgError> {
        Self::parse_with_switches(raw, &[])
    }

    /// Parse raw arguments where the flags named in `switches` are boolean
    /// (present/absent, no value); all other `--flag`s take a value.
    pub fn parse_with_switches<I: IntoIterator<Item = String>>(
        raw: I,
        switches: &[&str],
    ) -> Result<Args, ArgError> {
        let mut command = Vec::new();
        let mut flags = HashMap::new();
        let mut seen_switches = Vec::new();
        let mut it = raw.into_iter().peekable();
        while let Some(tok) = it.next() {
            if let Some(name) = tok.strip_prefix("--") {
                if switches.contains(&name) {
                    if seen_switches.iter().any(|s| s == name) {
                        return Err(ArgError::Duplicate(name.to_string()));
                    }
                    seen_switches.push(name.to_string());
                    continue;
                }
                let value = it
                    .next()
                    .ok_or_else(|| ArgError::MissingValue(name.to_string()))?;
                if flags.insert(name.to_string(), value).is_some() {
                    return Err(ArgError::Duplicate(name.to_string()));
                }
            } else {
                command.push(tok);
            }
        }
        Ok(Args {
            command,
            flags,
            switches: seen_switches,
        })
    }

    /// Was a boolean switch present? (Only meaningful for names passed to
    /// [`Args::parse_with_switches`].)
    pub fn switch(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }

    /// A string flag, if present.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.flags.get(name).map(|s| s.as_str())
    }

    /// A required string flag.
    pub fn require(&self, name: &str) -> Result<&str, ArgError> {
        self.get(name)
            .ok_or_else(|| ArgError::Required(name.into()))
    }

    /// A numeric flag with a default.
    pub fn num<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, ArgError> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| ArgError::BadValue {
                flag: name.into(),
                value: v.into(),
                expected: std::any::type_name::<T>(),
            }),
        }
    }

    /// A required numeric flag.
    pub fn num_required<T: std::str::FromStr>(&self, name: &str) -> Result<T, ArgError> {
        let v = self.require(name)?;
        v.parse().map_err(|_| ArgError::BadValue {
            flag: name.into(),
            value: v.into(),
            expected: std::any::type_name::<T>(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Result<Args, ArgError> {
        Args::parse(s.split_whitespace().map(String::from))
    }

    #[test]
    fn commands_and_flags() {
        let a = parse("trace gen --users 4 --out x.csv").unwrap();
        assert_eq!(a.command, vec!["trace", "gen"]);
        assert_eq!(a.get("users"), Some("4"));
        assert_eq!(a.get("out"), Some("x.csv"));
        assert_eq!(a.get("nope"), None);
    }

    #[test]
    fn numeric_parsing_and_defaults() {
        let a = parse("sim --wan-mbps 12.5").unwrap();
        assert_eq!(a.num("wan-mbps", 50.0).unwrap(), 12.5);
        assert_eq!(a.num("access-mbps", 400.0).unwrap(), 400.0);
        assert!(a.num::<u32>("wan-mbps", 1).is_err());
    }

    #[test]
    fn missing_value_detected() {
        assert_eq!(
            parse("sim --wan-mbps").unwrap_err(),
            ArgError::MissingValue("wan-mbps".into())
        );
    }

    #[test]
    fn duplicates_detected() {
        assert_eq!(
            parse("x --a 1 --a 2").unwrap_err(),
            ArgError::Duplicate("a".into())
        );
    }

    #[test]
    fn switches_take_no_value() {
        let a = Args::parse_with_switches(
            "bench --quick --seed 7 --out x.json"
                .split_whitespace()
                .map(String::from),
            &["quick"],
        )
        .unwrap();
        assert!(a.switch("quick"));
        assert!(!a.switch("verbose"));
        assert_eq!(a.get("seed"), Some("7"));
        assert_eq!(a.get("out"), Some("x.json"));
        // A trailing switch is fine (no value consumed)…
        let b = Args::parse_with_switches(
            "bench --seed 7 --quick"
                .split_whitespace()
                .map(String::from),
            &["quick"],
        )
        .unwrap();
        assert!(b.switch("quick"));
        // …and duplicate switches are rejected like duplicate flags.
        assert_eq!(
            Args::parse_with_switches(
                "bench --quick --quick".split_whitespace().map(String::from),
                &["quick"],
            )
            .unwrap_err(),
            ArgError::Duplicate("quick".into())
        );
    }

    #[test]
    fn required_flags() {
        let a = parse("x").unwrap();
        assert_eq!(
            a.require("out").unwrap_err(),
            ArgError::Required("out".into())
        );
        assert!(a.num_required::<u64>("n").is_err());
    }
}

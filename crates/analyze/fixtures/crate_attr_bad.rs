//! LINT-EXPECT: forbid-unsafe
//! Fixture: crate root missing `#![forbid(unsafe_code)]`. Never compiled.
//! (The marker sits on line 1 because missing-attribute findings anchor
//! to the top of the file.)

#![allow(dead_code)]

pub fn fine() {}

//! Mutable adapter: a batch-built [`AnnIndex`] behind the incremental
//! [`coic_vision::NnIndex`] interface.
//!
//! The single-threaded cache paths ([`crate::approx::ApproxCache`], the
//! simulator's `EdgeService`, the layer cache) mutate their index entry
//! by entry. The ANN families here are immutable batch builds — so this
//! adapter journals mutations and periodically folds them into a fresh
//! build, mirroring in miniature what [`crate::snapshot`] does across
//! threads:
//!
//! * inserts land in a `pending` set and are answered by a linear scan
//!   of that set until the next rebuild;
//! * removals and replacements mark the built index's copy `dirty`, and
//!   lookups filter dirty ids out (falling back to a scan when a probe
//!   surfaces only dirty candidates — never a false miss);
//! * once `pending + dirty` reaches `rebuild_batch`, the index is
//!   rebuilt from the live set — also forceable via
//!   [`coic_vision::NnIndex::maintain`], which the engine tick drives.
//!
//! Everything is deterministic: the live set is a `BTreeMap`, rebuilds
//! are a pure function of it, and the rebuild trigger depends only on
//! the mutation sequence. Answers are always exact with respect to the
//! live set's membership (the *nearest* choice is approximate per family,
//! the hit/miss decision matches brute force within family recall).

use super::{better, AnnFamily, AnnIndex, ProbeStats};
use coic_vision::distance::l2;
use coic_vision::features::FeatureVec;
use coic_vision::index::NnIndex;
use std::collections::{BTreeMap, BTreeSet};

/// Default mutation count that triggers a fold (shared with the
/// concurrent snapshot cache).
pub const DEFAULT_REBUILD_BATCH: usize = 64;

/// A mutable ANN index: immutable family builds + a journaled delta.
pub struct DynamicAnn {
    family: AnnFamily,
    dim: usize,
    rebuild_batch: usize,
    /// No-false-miss radius forwarded to [`AnnIndex::nearest`]; callers
    /// with a hit threshold set it via [`DynamicAnn::with_radius`] so the
    /// hit/miss decision matches brute force exactly, not just within
    /// family recall.
    within: f32,
    /// Ground truth: every live id and its current vector.
    live: BTreeMap<u64, FeatureVec>,
    /// The last batch build (over `live` at build time).
    built: Box<dyn AnnIndex>,
    /// Ids added or replaced since the build (vectors read from `live`).
    pending: BTreeSet<u64>,
    /// Ids removed or replaced since the build (stale inside `built`).
    dirty: BTreeSet<u64>,
    /// Folds performed (telemetry).
    rebuilds: u64,
}

impl DynamicAnn {
    /// Create an empty adapter; folds every `rebuild_batch` mutations.
    ///
    /// # Panics
    /// Panics if `rebuild_batch` is zero or the family parameters are
    /// invalid (see [`AnnFamily::build`]).
    pub fn new(family: AnnFamily, dim: usize, rebuild_batch: usize) -> DynamicAnn {
        assert!(rebuild_batch > 0, "rebuild batch must be positive");
        DynamicAnn {
            family,
            dim,
            rebuild_batch,
            within: f32::INFINITY,
            live: BTreeMap::new(),
            built: family.build(dim, Vec::new()),
            pending: BTreeSet::new(),
            dirty: BTreeSet::new(),
            rebuilds: 0,
        }
    }

    /// The family this adapter builds.
    pub fn family(&self) -> AnnFamily {
        self.family
    }

    /// Set the caller's hit threshold as the satisficing radius (see
    /// [`AnnIndex::nearest`]): the built index may stop at the first
    /// in-radius candidate instead of hunting for the true nearest.
    /// Defaults to `f32::INFINITY` (raw best-effort nearest).
    #[must_use]
    pub fn with_radius(mut self, within: f32) -> DynamicAnn {
        self.within = within;
        self
    }

    /// Mutations journaled since the last fold.
    pub fn journal_depth(&self) -> usize {
        self.pending.len() + self.dirty.len()
    }

    /// Folds performed so far.
    pub fn rebuilds(&self) -> u64 {
        self.rebuilds
    }

    fn fold(&mut self) -> usize {
        let folded = self.journal_depth();
        let items: Vec<(u64, FeatureVec)> =
            self.live.iter().map(|(id, v)| (*id, v.clone())).collect();
        self.built = self.family.build(self.dim, items);
        self.pending.clear();
        self.dirty.clear();
        self.rebuilds += 1;
        folded
    }

    fn maybe_fold(&mut self) {
        if self.journal_depth() >= self.rebuild_batch {
            self.fold();
        }
    }
}

impl NnIndex for DynamicAnn {
    fn insert(&mut self, id: u64, v: FeatureVec) {
        assert_eq!(v.dim(), self.dim, "vector dim mismatch");
        if self.live.insert(id, v).is_some() {
            // Replacement: the built copy (if any) is now stale.
            self.dirty.insert(id);
        }
        self.pending.insert(id);
        self.maybe_fold();
    }

    fn remove(&mut self, id: u64) -> bool {
        let present = self.live.remove(&id).is_some();
        if present {
            self.pending.remove(&id);
            self.dirty.insert(id);
            self.maybe_fold();
        }
        present
    }

    fn nearest(&self, q: &FeatureVec) -> Option<(u64, f32)> {
        let mut stats = ProbeStats::default();
        let dirty = &self.dirty;
        let mut best = self
            .built
            .nearest(q, self.within, &|id| !dirty.contains(&id), &mut stats);
        // The pending delta is scanned exactly (bounded by rebuild_batch).
        for id in &self.pending {
            if let Some(v) = self.live.get(id) {
                let d = l2(q, v);
                if better((*id, d), best) {
                    best = Some((*id, d));
                }
            }
        }
        best
    }

    fn len(&self) -> usize {
        self.live.len()
    }

    fn maintain(&mut self) -> usize {
        if self.journal_depth() == 0 {
            return 0;
        }
        self.fold()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(data: &[f32]) -> FeatureVec {
        FeatureVec::new(data.to_vec())
    }

    fn adapters() -> Vec<DynamicAnn> {
        vec![
            DynamicAnn::new(AnnFamily::Linear, 2, 4),
            DynamicAnn::new(
                AnnFamily::MultiProbeLsh {
                    tables: 2,
                    bits: 4,
                    probes: 4,
                },
                2,
                4,
            ),
            DynamicAnn::new(
                AnnFamily::Hnsw {
                    max_links: 4,
                    ef_search: 8,
                },
                2,
                4,
            ),
        ]
    }

    #[test]
    fn pending_entries_are_visible_before_fold() {
        for mut idx in adapters() {
            idx.insert(1, v(&[1.0, 0.0]));
            // journal depth 1 < batch 4: not folded yet, still findable.
            assert!(idx.journal_depth() >= 1 || idx.rebuilds() > 0);
            let (id, d) = idx.nearest(&v(&[0.9, 0.1])).expect("pending entry visible");
            assert_eq!(id, 1);
            assert!(d < 0.2);
        }
    }

    #[test]
    fn removal_is_visible_before_fold() {
        for mut idx in adapters() {
            idx.insert(1, v(&[1.0, 0.0]));
            idx.insert(2, v(&[0.0, 1.0]));
            let _ = idx.maintain(); // both in the built index
            assert!(idx.remove(1));
            assert!(!idx.remove(1));
            let (id, _) = idx.nearest(&v(&[1.0, 0.0])).expect("one entry left");
            assert_eq!(id, 2, "removed id leaked from the built index");
            assert_eq!(idx.len(), 1);
        }
    }

    #[test]
    fn replacement_supersedes_built_vector() {
        for mut idx in adapters() {
            idx.insert(1, v(&[1.0, 0.0]));
            let _ = idx.maintain();
            idx.insert(1, v(&[0.0, 1.0])); // replace, not yet folded
            let (id, d) = idx.nearest(&v(&[0.0, 1.0])).expect("entry live");
            assert_eq!(id, 1);
            assert!(d < 1e-6, "stale built vector answered: d = {d}");
            assert_eq!(idx.len(), 1);
        }
    }

    #[test]
    fn auto_fold_fires_at_batch_and_maintain_forces_it() {
        let mut idx = DynamicAnn::new(AnnFamily::Linear, 2, 4);
        for i in 0..3u64 {
            idx.insert(i, v(&[i as f32, 0.0]));
        }
        assert_eq!(idx.rebuilds(), 0);
        idx.insert(3, v(&[3.0, 0.0])); // 4th mutation: auto-fold
        assert_eq!(idx.rebuilds(), 1);
        assert_eq!(idx.journal_depth(), 0);
        assert_eq!(idx.maintain(), 0); // nothing journaled
        idx.insert(4, v(&[4.0, 0.0]));
        assert_eq!(idx.maintain(), 1);
        assert_eq!(idx.rebuilds(), 2);
    }

    #[test]
    fn matches_brute_force_across_churn() {
        for mut idx in adapters() {
            let mut truth: BTreeMap<u64, FeatureVec> = BTreeMap::new();
            for i in 0..40u64 {
                let angle = i as f32 * 0.37;
                let vec = v(&[angle.cos(), angle.sin()]);
                idx.insert(i, vec.clone());
                truth.insert(i, vec);
                if i % 5 == 4 {
                    idx.remove(i - 2);
                    truth.remove(&(i - 2));
                }
                let q = v(&[(angle + 0.01).cos(), (angle + 0.01).sin()]);
                let got = idx.nearest(&q).map(|(_, d)| d).expect("non-empty");
                let want = truth
                    .values()
                    .map(|t| l2(&q, t))
                    .fold(f32::INFINITY, f32::min);
                assert!(
                    (got - want).abs() < 0.05,
                    "family diverged from brute force: got {got}, want {want}"
                );
            }
            assert_eq!(idx.len(), truth.len());
        }
    }
}

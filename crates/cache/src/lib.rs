//! # coic-cache
//!
//! The edge result cache at the heart of CoIC:
//!
//! * [`digest`] — content digests (from-scratch SHA-256) keying models and
//!   panoramas,
//! * [`store`] — size-aware bounded store with TTL,
//! * [`policy`] — eviction policies (LRU/FIFO/LFU/SLRU/GDSF) for the
//!   cache-management ablation,
//! * [`exact`] — digest-keyed lookup (render/panorama tasks),
//! * [`approx`] — feature-descriptor lookup under a distance threshold
//!   (recognition tasks),
//! * [`ann`] — the approximate-nearest-neighbour families behind approx
//!   lookup (multi-probe LSH, HNSW, linear scan) + a mutable adapter,
//! * [`snapshot`] — the concurrent snapshot/journal descriptor cache
//!   (lock-free lookups, deterministic batch rebuilds),
//! * [`sketch`]/[`admission`] — count-min sketch + TinyLFU admission gate,
//! * [`concurrent`] — single-mutex shared wrappers (contention baseline),
//! * [`sharded`] — sharded exact-cache wrappers for the real-TCP edge,
//! * [`coop`] — multi-edge cooperative lookup,
//! * [`metrics`] — the unified [`metrics::Metrics`] view (publishes to the
//!   `coic-obs` registry) and the typed [`metrics::Lookup`] outcome,
//! * [`stats`] — legacy hit/miss/eviction counters (facade view).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod admission;
pub mod ann;
pub mod approx;
pub mod concurrent;
pub mod coop;
pub mod digest;
pub mod exact;
pub mod metrics;
pub mod policy;
pub mod sharded;
pub mod sketch;
pub mod snapshot;
pub mod stats;
pub mod store;
mod sync;

pub use admission::{TinyLfu, TinyLfuConfig};
pub use ann::{AnnFamily, AnnIndex, DynamicAnn, ProbeStats};
pub use approx::{ApproxCache, ApproxLookup, IndexKind};
pub use concurrent::{SharedApproxCache, SharedExactCache};
pub use coop::{CoopGroup, CoopOutcome};
pub use digest::{fnv1a64, sha256, Digest};
pub use exact::ExactCache;
pub use metrics::{Lookup, Metrics};
pub use policy::{EvictionPolicy, PolicyKind};
pub use sharded::{ShardedExactCache, TouchStats, DEFAULT_SHARDS};
pub use sketch::CountMinSketch;
pub use snapshot::{IndexTelemetry, SnapshotApproxCache, DEFAULT_REBUILD_BATCH};
pub use stats::CacheStats;
pub use store::Store;

//! # CoIC — Immersion on the Edge
//!
//! A from-scratch Rust reproduction of *"Immersion on the Edge: A
//! Cooperative Framework for Mobile Immersive Computing"* (Lai, Cui, Wang,
//! Hu — SIGCOMM Posters & Demos 2018).
//!
//! This umbrella crate re-exports the whole workspace:
//!
//! * [`core`] — the CoIC framework (descriptors, protocol, client/edge/
//!   cloud services, simulation and live-TCP drivers, QoE reporting, §4
//!   extensions),
//! * [`netsim`] — deterministic discrete-event network simulator + framed
//!   TCP transport,
//! * [`vision`] — synthetic vision substrate (scenes, SimNet features,
//!   NN indexes, classifier),
//! * [`render`] — 3D substrate (meshes, CMF format, loader, software
//!   rasterizer, panoramas),
//! * [`cache`] — the edge cache (digests, eviction policies, exact and
//!   approximate indexes, cooperation),
//! * [`obs`] — the unified observability layer (metrics registry,
//!   structured trace, canonical exporters),
//! * [`workload`] — Zipf/arrival/mobility workload generators.
//!
//! ## Quickstart
//!
//! ```
//! use coic::core::{compare, SimConfig};
//! use coic::workload::{Population, SafeDrivingAr, ZoneId, ZoneModel};
//!
//! // Four co-located users running a safe-driving AR app.
//! let trace = SafeDrivingAr {
//!     population: Population::colocated(4, ZoneId(0)),
//!     zones: ZoneModel::new(1, 8, 1.0, 3),
//!     rate_per_sec: 5.0,
//!     zipf_s: 0.9,
//!     total_requests: 24,
//! }
//! .generate(7);
//!
//! let cfg = SimConfig { num_clients: 4, ..SimConfig::default() };
//! let (origin, coic, reduction) = compare(&trace, &cfg);
//! assert!(coic.mean_latency_ms() <= origin.mean_latency_ms());
//! println!("CoIC reduces mean latency by {reduction:.1}%");
//! ```

#![forbid(unsafe_code)]

pub use coic_cache as cache;
pub use coic_core as core;
pub use coic_netsim as netsim;
pub use coic_obs as obs;
pub use coic_render as render;
pub use coic_vision as vision;
pub use coic_workload as workload;

//! **Ext A** — hit ratio and recognition accuracy vs similarity threshold.
//!
//! CoIC declares a recognition hit when descriptor distance falls under a
//! threshold. A loose threshold raises the hit ratio (more reuse, lower
//! latency) but risks returning a *wrong* cached label when two different
//! objects land close in feature space. The paper fixes one threshold;
//! this ablation exposes the tradeoff.
//!
//! Run with: `cargo run --release -p coic-bench --bin ext_threshold`

use coic_bench::{base_config, fig2a_trace};
use coic_cache::{ApproxCache, ApproxLookup, IndexKind, PolicyKind};
use coic_core::simrun::run;
use coic_core::RecognitionResult;
use coic_vision::{
    ConfusionMatrix, ObjectClass, PrototypeClassifier, SceneGenerator, SimNet, ViewParams,
};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn main() {
    let trace = fig2a_trace(200, 42);
    println!("Ext A — threshold sweep (200 recognition requests)\n");
    println!(
        "{:>9} | {:>6} {:>9} {:>10} | {:>10}",
        "threshold", "hit%", "accuracy", "mean-lat", "reduction*"
    );
    coic_bench::rule(58);
    let origin = run(
        &trace,
        &coic_core::simrun::SimConfig {
            mode: coic_core::simrun::Mode::Origin,
            ..base_config()
        },
    );
    for threshold in [0.05f32, 0.15, 0.25, 0.35, 0.45, 0.60, 0.80, 1.00, 1.25] {
        let mut cfg = base_config();
        cfg.edge.threshold = threshold;
        let coic = run(&trace, &cfg);
        let red = coic_core::reduction_percent(origin.mean_latency_ms(), coic.mean_latency_ms());
        println!(
            "{:>9.2} | {:>5.1}% {:>8.1}% {:>7.1} ms | {:>9.2}%",
            threshold,
            coic.hit_ratio() * 100.0,
            coic.accuracy.unwrap_or(0.0) * 100.0,
            coic.mean_latency_ms(),
            red
        );
    }
    coic_bench::rule(58);
    println!(
        "* latency reduction vs the origin baseline ({:.1} ms mean)",
        origin.mean_latency_ms()
    );
    println!("\nLoose thresholds trade accuracy for hit ratio; the default (0.45)");
    println!("sits before the accuracy knee.");

    // Where do the wrong hits go? Replay a service-level stream at a loose
    // threshold and chart the confusion structure of *cache hits*.
    let gen = SceneGenerator::new(64);
    let net = SimNet::default_net();
    let classes: Vec<_> = (0..8).map(ObjectClass).collect();
    let mut rng = StdRng::seed_from_u64(71);
    let clf = PrototypeClassifier::train(&net, &gen, &classes, 5, 0.08, 4.0, &mut rng);
    let mut cache: ApproxCache<RecognitionResult> =
        ApproxCache::new(64 << 20, PolicyKind::Lru, 0.9, IndexKind::Linear, 32);
    let mut cm = ConfusionMatrix::new();
    for i in 0..400u64 {
        let truth = classes[rng.random_range(0..classes.len())];
        let v = ViewParams::jittered(&mut rng, 0.08, 4.0);
        let d = net.extract(&gen.observe(truth, &v, &mut rng));
        match cache.lookup(&d, i) {
            ApproxLookup::Hit { id, .. } => {
                cm.record(truth, ObjectClass(cache.value(id).unwrap().label));
            }
            ApproxLookup::Miss { .. } => {
                let (label, distance) = clf.predict(&d);
                cache.insert(
                    d,
                    RecognitionResult {
                        label: label.0,
                        distance,
                    },
                    20_000,
                    i,
                );
            }
        }
    }
    println!(
        "\nhit-path confusion at a loose threshold (0.9): accuracy {:.1}%",
        cm.accuracy() * 100.0
    );
    for (t, p, n) in cm.top_confusions(4) {
        println!(
            "  object {:>2} served as object {:>2} on {n} hits",
            t.0, p.0
        );
    }
}

//! Fixture: an admission slot is acquired and escapes the function with
//! no `release()`/`note_shed()` on any path — the leak class the
//! paired-call rule exists for. Never compiled.

fn admit(ctl: &mut OverloadControl, req: u64, now: u64) -> Verdict {
    ctl.offer(req, now) // LINT-EXPECT: settle-offers
}

//! Real-socket deployment of CoIC.
//!
//! The same [`crate::services`] logic as the simulator, but deployed over
//! framed TCP ([`coic_netsim::rt`]): a cloud process, an edge process with
//! shared caches, and a blocking client. Used by the `live_deployment`
//! example and the loopback integration tests; latency here is real
//! wall-clock time (the SimNet inference, CMF parsing and panorama
//! synthesis all actually run).
//!
//! The edge serves connections through a pluggable [`IoDriver`]
//! ([`NetConfig::driver`]): the legacy thread-per-connection
//! [`ThreadsDriver`], or the readiness-driven
//! [`EventLoop`](evloop::EventLoop) (one IO thread, batched frame decode,
//! coalesced writes, admission-fed backpressure) for large fan-in
//! populations. Both run the identical frame handler, so the decision
//! traces they produce are byte-identical — the acceptance suite diffs
//! them.
//!
//! Orchestration — retries, backoff, deadlines, degrade-to-origin, edge
//! re-probing — is *not* implemented here. [`NetClient`] is a thin driver
//! around the sans-IO [`ClientEngine`]: it realizes engine effects
//! (`SendQuery` → framed TCP exchange, `ArmTimer(Backoff)` → sleep,
//! `ArmTimer(Deadline)` → socket read deadline, `ProbeEdge` → reconnect)
//! and feeds IO outcomes back as events. The simulator
//! ([`crate::simrun`]) drives the identical engine under virtual time, so
//! both stacks traverse the same decision sequences for the same workload
//! and [`FaultSchedule`].
//!
//! Fault tolerance (configured by [`NetConfig`]):
//!
//! * every socket carries read/write deadlines, so no request can hang;
//! * the engine retries failed attempts under a [`RetryPolicy`]
//!   (capped exponential backoff, seeded jitter) and the driver reconnects
//!   on broken or desynchronized connections;
//! * when the edge stays unreachable (or replies [`Msg::Unavailable`]),
//!   a client constructed with [`NetClient::connect_with`] degrades to the
//!   origin path — direct [`Msg::BaselineRequest`] to the cloud — and
//!   periodically probes the edge to rejoin the cooperative path;
//! * the edge's own cloud leg sits behind an [`UpstreamGate`] (circuit
//!   breaker + stats), so a dead cloud makes the edge answer `Unavailable`
//!   fast instead of stalling every connection thread;
//! * concurrent identical misses coalesce into one upstream fetch
//!   ([`ShardedSingleFlight`]); waiting threads block on a condvar until
//!   the leader lands the result in the cache.
//!
//! The edge's caches are *sharded* ([`SharedEdgeService`], backed by
//! [`coic_cache::sharded`]): each connection thread's cache hit takes one
//! shard's read lock instead of a service-wide mutex, and large payload
//! clones happen outside any lock. [`NetConfig::cache_shards`] sets the
//! shard count. The simulator keeps the single-threaded
//! [`crate::services::EdgeService`] — sharding changes lock granularity
//! and stats plumbing only, never hit/miss decisions, which is what the
//! sim-vs-live determinism tests check.
//!
//! Every transition is counted in [`RobustnessStats`], surfaced through
//! [`NetClient::robustness`] and [`EdgeHandle::robustness`]; per-request
//! QoE records accumulate behind the engine and aggregate via
//! [`NetClient::report`].

pub mod driver;
pub mod evloop;
pub mod poller;

pub use driver::{
    DriverServer, FrameHandler, IoDriver, LoopStats, LoopStatsSnapshot, ThreadsDriver,
};
pub use poller::{Interest, PollWaker, Poller, Readiness, ScanPoller, Token};

use crate::cluster::{ClusterConfig, ClusterSnapshot, ClusterState, EdgeId};
use crate::compute::ComputeConfig;
use crate::config::{DriverKind, EvloopConfig, NetConfigBuilder};
use crate::content::{ModelLibrary, PanoLibrary};
use crate::descriptor::FeatureDescriptor;
use crate::engine::{
    AdmissionConfig, BrownoutConfig, BrownoutState, ClientEngine, Clock, Decision, Effect,
    EngineConfig, FaultSchedule, FlightClaim, OverloadControl, ReplyKind, RetryPolicy,
    RobustnessStats, ShardedSingleFlight, TimerKind, UpstreamGate, Verdict, WallClock,
};
use crate::protocol::Msg;
use crate::qoe::QoeReport;
use crate::services::{ClientConfig, ClientLogic, CloudService, EdgeConfig, EdgeReply};
use crate::shared_edge::SharedEdgeService;
use crate::task::TaskResult;
use crate::telemetry::{path_label, record_decision};
use coic_cache::{Digest, Metrics};
use coic_netsim::rt::{FaultError, FrameConn, FrameError, FrameServer};
use coic_obs::{MetricsRegistry, Recorder, Telemetry, Value};
use coic_vision::{ObjectClass, SceneGenerator};
use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::net::SocketAddr;
use std::sync::{Arc, Condvar, Mutex as StdMutex, PoisonError};
use std::time::Duration;

/// Deadlines, retry and breaker parameters for the live deployment.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Client-side retry/backoff policy per request.
    pub retry: RetryPolicy,
    /// How long a client waits for any single reply frame.
    pub request_deadline: Duration,
    /// Bound on TCP connection establishment.
    pub connect_timeout: Duration,
    /// While degraded, how often the client probes the edge to rejoin.
    pub probe_interval: Duration,
    /// Deadline on the edge's own upstream calls (cloud, peers).
    pub edge_call_deadline: Duration,
    /// Consecutive cloud-leg failures that trip the edge's breaker.
    pub breaker_threshold: u32,
    /// How long the tripped breaker rejects before probing the cloud.
    pub breaker_cooldown: Duration,
    /// Deterministic fault injection: attempts named here fail at the
    /// client's IO boundary without touching the network, mirroring the
    /// simulator's schedule semantics for the determinism tests.
    pub faults: FaultSchedule,
    /// Lock shards per edge cache (and for the single-flight table).
    /// More shards cut contention between connection threads; values are
    /// clamped to at least 1.
    pub cache_shards: usize,
    /// Edge admission control: the same sans-IO bounded-queue + AIMD
    /// controller the simulator runs, here behind a mutex with queued
    /// connection threads parked on a condvar. `None` (the default)
    /// serves every query the moment its thread picks it up.
    pub admission: Option<AdmissionConfig>,
    /// Brownout ladder watching the admission queue's pressure (only
    /// meaningful together with [`NetConfig::admission`]).
    pub brownout: Option<BrownoutConfig>,
    /// Observability handle shared by every component spawned under this
    /// config. The default ([`Telemetry::disabled`]) drops trace records
    /// (metrics still register), so existing callers pay nothing; the
    /// `coic live` CLI passes [`Telemetry::new`] to capture the same span
    /// and event vocabulary the simulator emits.
    pub telemetry: Telemetry,
    /// Which IO driver the edge serves connections with (the client side
    /// is unaffected — it is blocking either way).
    pub driver: DriverKind,
    /// Event-loop tuning, consulted only under [`DriverKind::Evloop`].
    pub evloop: EvloopConfig,
}

impl Default for NetConfig {
    fn default() -> NetConfig {
        NetConfig {
            retry: RetryPolicy::default(),
            request_deadline: Duration::from_secs(5),
            connect_timeout: Duration::from_millis(500),
            probe_interval: Duration::from_millis(100),
            edge_call_deadline: Duration::from_secs(3),
            breaker_threshold: 3,
            breaker_cooldown: Duration::from_millis(300),
            faults: FaultSchedule::new(),
            cache_shards: coic_cache::DEFAULT_SHARDS,
            admission: None,
            brownout: None,
            telemetry: Telemetry::disabled(),
            driver: DriverKind::default(),
            evloop: EvloopConfig::default(),
        }
    }
}

impl NetConfig {
    /// Start a typed builder (the supported construction path; see
    /// [`crate::config`]).
    pub fn builder() -> NetConfigBuilder {
        NetConfigBuilder::default()
    }
}

/// A running cloud process.
pub struct CloudHandle {
    addr: SocketAddr,
    _server: FrameServer,
}

impl CloudHandle {
    /// Address clients/edges should connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

/// Start a cloud server on an ephemeral loopback port.
pub fn spawn_cloud(
    classes: &[ObjectClass],
    image_side: u32,
    compute: ComputeConfig,
    models: Arc<ModelLibrary>,
    panos: Arc<PanoLibrary>,
    seed: u64,
) -> std::io::Result<CloudHandle> {
    let gen = SceneGenerator::new(image_side);
    let service = Arc::new(CloudService::new(
        classes, &gen, compute, models, panos, seed,
    ));
    let server = FrameServer::spawn("127.0.0.1:0", move |frame| {
        let msg = Msg::decode(&frame).ok()?;
        let reply = match msg {
            Msg::Forward { req_id, task } => {
                let (result, _cost) = service.execute(&task);
                Msg::CloudReply { req_id, result }
            }
            Msg::BaselineRequest { req_id, task } => {
                let (result, _cost) = service.execute(&task);
                Msg::BaselineReply { req_id, result }
            }
            _ => return None,
        };
        Some(reply.encode().to_vec())
    })?;
    Ok(CloudHandle {
        addr: server.local_addr(),
        _server: server,
    })
}

/// Cooperative cluster membership of one live edge: the sans-IO policy
/// plus the socket address of every member (indexed by [`EdgeId`], this
/// edge included at its own id) and the replication-push token shared by
/// the membership.
struct LiveCluster {
    state: ClusterState,
    members: Vec<SocketAddr>,
    token: u64,
}

/// Replication-push token of a live cluster: every member derives the
/// identical value from the member address list it joined with (folded
/// with the configured [`ClusterConfig::auth_token`] secret), and the
/// [`Msg::Replicate`] handler installs a pushed entry only when the
/// sender presented it. A connection that merely reaches the edge port —
/// without knowing the full membership (or the secret) — cannot plant
/// arbitrary results under arbitrary digests.
fn cluster_token(members: &[SocketAddr], auth_token: u64) -> u64 {
    let mut buf = Vec::with_capacity(members.len() * 24);
    for m in members {
        buf.extend_from_slice(m.to_string().as_bytes());
        buf.push(b';');
    }
    coic_cache::fnv1a64(&buf) ^ auth_token
}

/// Best-effort replication push: connect, send [`Msg::Replicate`], await
/// the ack under the edge-call deadline. Any failure is dropped —
/// replication is an optimization, never a correctness dependency.
fn replicate_to(
    addr: SocketAddr,
    req_id: u64,
    token: u64,
    digest: Digest,
    result: TaskResult,
    net: &NetConfig,
) {
    let Ok(mut conn) = FrameConn::connect_timeout(&addr, net.connect_timeout) else {
        return;
    };
    let _ = conn.set_read_deadline(Some(net.edge_call_deadline));
    let _ = conn.set_write_deadline(Some(net.edge_call_deadline));
    if conn
        .send(
            &Msg::Replicate {
                req_id,
                token,
                digest,
                result,
            }
            .encode(),
        )
        .is_err()
    {
        return;
    }
    let _ = conn.recv(); // ReplicateAck, best effort
}

/// A running edge process. Dropping the handle (or calling
/// [`EdgeHandle::shutdown`]) tears the edge down for real — its accept
/// loop stops and live client connections are severed — which is what the
/// chaos tests rely on to kill an edge mid-workload.
pub struct EdgeHandle {
    addr: SocketAddr,
    peers: Arc<Mutex<Vec<SocketAddr>>>,
    cluster: Arc<Mutex<Option<LiveCluster>>>,
    stats: RobustnessStats,
    gate: Arc<UpstreamGate>,
    service: Arc<SharedEdgeService>,
    admission: Option<Arc<LiveAdmission>>,
    server: DriverServer,
}

impl EdgeHandle {
    /// Address clients should connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Register a cooperating peer edge: exact-task misses will ask it
    /// before going to the cloud.
    pub fn add_peer(&self, addr: SocketAddr) {
        self.peers.lock().push(addr);
    }

    /// Join a consistent-hash cluster as member `me` of `members` (every
    /// member's address, this edge included at index `me`). Replaces the
    /// broadcast [`EdgeHandle::add_peer`] list: misses probe at most
    /// `cfg.peer_fanout` peers along the ring from the digest's owner,
    /// dead peers trip out via per-peer breakers, and hot entries
    /// replicate toward their demand. Idempotent — joining again (e.g.
    /// after a restart) resets the policy state.
    pub fn join_cluster(&self, me: EdgeId, members: &[SocketAddr], cfg: ClusterConfig) {
        let token = cluster_token(members, cfg.auth_token);
        *self.cluster.lock() = Some(LiveCluster {
            state: ClusterState::new(me, members.len() as u32, cfg),
            members: members.to_vec(),
            token,
        });
    }

    /// Snapshot of this edge's cooperative-tier counters (`None` before
    /// [`EdgeHandle::join_cluster`]).
    pub fn cluster_stats(&self) -> Option<ClusterSnapshot> {
        self.cluster
            .lock()
            .as_ref()
            .map(|c| c.state.stats().snapshot())
    }

    /// Breaker state of a cluster peer as seen from this edge (`None`
    /// before [`EdgeHandle::join_cluster`]).
    pub fn peer_state(&self, peer: EdgeId) -> Option<crate::robust::BreakerState> {
        self.cluster
            .lock()
            .as_ref()
            .and_then(|c| c.state.peer_state(peer))
    }

    /// Fault-handling counters for this edge (breaker trips, unavailable
    /// replies, upstream timeouts).
    pub fn robustness(&self) -> RobustnessStats {
        self.stats.clone()
    }

    /// State of the edge→cloud circuit breaker.
    pub fn breaker_state(&self) -> crate::robust::BreakerState {
        self.gate.state()
    }

    /// Current brownout rung of the admission controller (Healthy when
    /// admission control is disabled).
    pub fn brownout_state(&self) -> BrownoutState {
        self.admission
            .as_ref()
            .map_or(BrownoutState::Healthy, |a| a.state())
    }

    /// Recognition-cache metrics, merged across shards.
    pub fn recog_cache_metrics(&self) -> Metrics {
        self.service.recog_metrics()
    }

    /// Exact-cache metrics, merged across shards.
    pub fn exact_cache_metrics(&self) -> Metrics {
        self.service.exact_metrics()
    }

    /// Publish this edge's cache metrics (`cache.recog.*`, `cache.exact.*`)
    /// and robustness counters (`robustness.*`) into `reg`.
    pub fn publish_metrics(&self, reg: &MetricsRegistry) {
        self.service.publish_metrics(reg);
        self.stats.snapshot().publish(reg);
        self.server.loop_stats().publish(reg);
        if let Some(snap) = self.cluster_stats() {
            snap.publish(reg);
        }
    }

    /// Combined hit ratio over both edge caches.
    pub fn cache_hit_ratio(&self) -> f64 {
        self.service.hit_ratio()
    }

    /// Fold the recognition cache's journal into a fresh snapshot now
    /// (inserts also self-fold at the rebuild batch; this flushes any
    /// partial batch, e.g. at the end of a measurement window). Returns
    /// how many journal entries were folded.
    pub fn maintain_index(&self, now_ns: u64) -> usize {
        self.service.maintain(now_ns)
    }

    /// Snapshot of the recognition index hot-path telemetry (probe
    /// counts, rebuilds, journal depth, snapshot age).
    pub fn index_telemetry(&self) -> coic_cache::IndexTelemetry {
        self.service.index_telemetry()
    }

    /// Lock shards per cache on this edge.
    pub fn cache_shards(&self) -> usize {
        self.service.shard_count()
    }

    /// Which IO driver this edge serves connections with.
    pub fn driver(&self) -> DriverKind {
        self.server.kind()
    }

    /// IO-loop counters (`loop.*`): wakeups, frames per wakeup, coalesced
    /// writes, read-pause transitions, shed connections. All zero under
    /// the threads driver except `accepted`.
    pub fn loop_stats(&self) -> LoopStatsSnapshot {
        self.server.loop_stats()
    }

    /// Stop the edge: no new connections, live ones severed. Idempotent;
    /// also runs on drop.
    pub fn shutdown(&mut self) {
        self.server.shutdown();
    }
}

/// A queued single-flight waiter: blocks its connection thread until the
/// leader completes (or the deadline passes), then re-checks the cache.
#[derive(Default)]
struct FlightWaiter {
    done: StdMutex<bool>,
    cv: Condvar,
}

impl FlightWaiter {
    fn notify(&self) {
        // A waiter that panicked while holding the flag poisons the
        // mutex; the flag itself is still meaningful, so recover it.
        *self.done.lock().unwrap_or_else(PoisonError::into_inner) = true;
        self.cv.notify_all();
    }

    /// Wait until notified or `timeout`; returns whether the leader
    /// finished.
    fn wait(&self, timeout: Duration) -> bool {
        let g = self.done.lock().unwrap_or_else(PoisonError::into_inner);
        match self.cv.wait_timeout_while(g, timeout, |done| !*done) {
            Ok((g, _)) => *g,
            Err(poisoned) => *poisoned.into_inner().0,
        }
    }
}

/// Outcome of [`LiveAdmission::admit`] for one query.
enum LiveAdmit {
    /// Serve now. `cached_only` is the Degraded brownout rung (misses
    /// shed); the handler must call [`LiveAdmission::release`] with
    /// `offered_at` once its local service is done.
    Serve { cached_only: bool, offered_at: u64 },
    /// Refuse with `Msg::Overloaded` and this retry-after hint.
    Shed { retry_after_ms: u32 },
}

/// The live edge's admission gate: the same sans-IO [`OverloadControl`]
/// the simulator drives, here behind a mutex with queued connection
/// threads parked on a condvar. A release that grants a slot (or an age
/// expiry that sheds) moves the waiter's req_id into the `ready` / `shed`
/// set and wakes everyone; each woken thread answers its own client, so
/// shed replies never block behind service.
struct LiveAdmission {
    inner: StdMutex<LiveAdmissionInner>,
    cv: Condvar,
    clock: WallClock,
    stats: RobustnessStats,
    tel: Telemetry,
}

struct LiveAdmissionInner {
    ctl: OverloadControl,
    /// Queued req_ids granted a service slot by some release.
    ready: std::collections::BTreeSet<u64>,
    /// Queued req_ids shed (aged out or evicted) while waiting.
    shed: std::collections::BTreeSet<u64>,
}

impl LiveAdmission {
    fn new(
        ctl: OverloadControl,
        clock: WallClock,
        stats: RobustnessStats,
        tel: Telemetry,
    ) -> LiveAdmission {
        LiveAdmission {
            inner: StdMutex::new(LiveAdmissionInner {
                ctl,
                ready: std::collections::BTreeSet::new(),
                shed: std::collections::BTreeSet::new(),
            }),
            cv: Condvar::new(),
            clock,
            stats,
            tel,
        }
    }

    fn note_transition(&self, transition: Option<BrownoutState>, now: u64) {
        if let Some(state) = transition {
            self.tel.event(
                now,
                "edge.brownout_state",
                vec![("state", Value::from(state.as_str()))],
            );
            self.tel
                .registry()
                .gauge_set("edge.brownout_state", state.as_gauge() as i64);
        }
    }

    fn admitted_event(&self, req_id: u64, queued: bool, now: u64) {
        self.stats.count_admitted();
        self.tel.event(
            now,
            "edge.admitted",
            vec![
                ("req", Value::from(req_id)),
                ("queued", Value::from(queued)),
            ],
        );
    }

    fn shed_event(&self, req_id: u64, retry_after_ms: u32, reason: &'static str, now: u64) {
        self.stats.count_shed();
        self.tel.event(
            now,
            "edge.shed",
            vec![
                ("req", Value::from(req_id)),
                ("reason", Value::from(reason)),
                ("retry_after_ms", Value::from(retry_after_ms)),
            ],
        );
    }

    /// Admit one query, blocking this connection thread while the query
    /// waits in the bounded queue. Queue time is bounded by the
    /// controller's age-based shedding, which the waiter drives itself if
    /// no other admission event comes along.
    fn admit(&self, req_id: u64) -> LiveAdmit {
        let now = self.clock.now_ns();
        let mut g = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        // lint: allow(release-admission-slots, the slot escapes as a LiveAdmit whose every variant path ends in release or note_shed — the contract serve/shed below uphold)
        let decision = g.ctl.offer(req_id, now);
        self.note_transition(decision.transition, now);
        for victim in decision.shed {
            g.shed.insert(victim);
        }
        match decision.verdict {
            Verdict::Serve | Verdict::ServeCachedOnly => {
                let cached_only = matches!(decision.verdict, Verdict::ServeCachedOnly);
                drop(g);
                self.cv.notify_all();
                self.admitted_event(req_id, false, now);
                LiveAdmit::Serve {
                    cached_only,
                    offered_at: now,
                }
            }
            Verdict::Shed { retry_after_ms } => {
                drop(g);
                self.cv.notify_all();
                self.shed_event(req_id, retry_after_ms, "refused", now);
                LiveAdmit::Shed { retry_after_ms }
            }
            Verdict::Queued => loop {
                if g.ready.remove(&req_id) {
                    let cached_only = g.ctl.state() == BrownoutState::Degraded;
                    drop(g);
                    let granted = self.clock.now_ns();
                    self.admitted_event(req_id, true, granted);
                    return LiveAdmit::Serve {
                        cached_only,
                        offered_at: now,
                    };
                }
                if g.shed.remove(&req_id) {
                    let retry_after_ms = g.ctl.retry_after_ms();
                    drop(g);
                    self.shed_event(req_id, retry_after_ms, "queue", self.clock.now_ns());
                    return LiveAdmit::Shed { retry_after_ms };
                }
                let (g2, _) = self
                    .cv
                    .wait_timeout(g, Duration::from_millis(5))
                    .unwrap_or_else(PoisonError::into_inner);
                g = g2;
                // Self-driven age expiry: an idle edge still sheds its
                // stale waiters (possibly including this one).
                let tick = self.clock.now_ns();
                let (expired, transition) = g.ctl.expire(tick);
                self.note_transition(transition, tick);
                if !expired.is_empty() {
                    for victim in expired {
                        g.shed.insert(victim);
                    }
                    self.cv.notify_all();
                }
            },
        }
    }

    /// Return one slot after serving an admitted query whose sojourn
    /// started at `offered_at`; wakes whoever the drain granted or shed.
    fn release(&self, offered_at: u64) {
        let now = self.clock.now_ns();
        let mut g = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        let (drain, transition) = g.ctl.release(now.saturating_sub(offered_at), now);
        self.note_transition(transition, now);
        for id in drain.start {
            g.ready.insert(id);
        }
        for id in drain.shed {
            g.shed.insert(id);
        }
        drop(g);
        self.cv.notify_all();
    }

    /// Record a degraded-mode cache miss that is being shed; returns the
    /// retry-after hint to embed in the `Msg::Overloaded` reply.
    fn shed_miss(&self, req_id: u64) -> u32 {
        let mut g = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        g.ctl.note_shed();
        let retry_after_ms = g.ctl.retry_after_ms();
        drop(g);
        self.shed_event(req_id, retry_after_ms, "degraded_miss", self.clock.now_ns());
        retry_after_ms
    }

    /// Current brownout rung.
    fn state(&self) -> BrownoutState {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .ctl
            .state()
    }
}

/// Call the cloud through the upstream gate. Returns `None` when the gate
/// is open or the call fails (the gate records the outcome and mirrors
/// breaker transitions into the shared stats).
fn guarded_cloud_call(
    cloud_addr: SocketAddr,
    msg: &Msg,
    net: &NetConfig,
    gate: &UpstreamGate,
    clock: &WallClock,
    stats: &RobustnessStats,
) -> Option<TaskResult> {
    if !gate.preflight(clock.now_ns()) {
        return None;
    }
    let result = (|| {
        let mut cloud = FrameConn::connect_timeout(&cloud_addr, net.connect_timeout).ok()?;
        cloud.set_read_deadline(Some(net.edge_call_deadline)).ok()?;
        cloud
            .set_write_deadline(Some(net.edge_call_deadline))
            .ok()?;
        cloud.send(&msg.encode()).ok()?;
        let resp = match cloud.recv() {
            Ok(r) => r,
            Err(e) => {
                if e.fault() == FaultError::Timeout {
                    stats.count_timeout();
                }
                return None;
            }
        };
        match Msg::decode(&resp).ok()? {
            Msg::CloudReply { result, .. } => Some(result),
            _ => None,
        }
    })();
    gate.report(result.is_some(), clock.now_ns());
    result
}

/// Trace an `index.rebuild` event when an insert's self-fold rebuilt the
/// recognition snapshot (`folded` journal entries baked into the new
/// generation).
fn trace_rebuild(net: &NetConfig, service: &SharedEdgeService, folded: usize, now_ns: u64) {
    if folded == 0 {
        return;
    }
    let t = service.index_telemetry();
    net.telemetry.event(
        now_ns,
        "index.rebuild",
        vec![
            ("folded", Value::from(folded)),
            ("index", Value::from(service.index_family())),
            ("snapshot_len", Value::from(t.snapshot_len)),
            ("rebuilds", Value::from(t.rebuilds)),
        ],
    );
}

/// Start an edge server on an ephemeral loopback port with default
/// fault-tolerance parameters, forwarding misses to `cloud_addr`.
pub fn spawn_edge(cloud_addr: SocketAddr, cfg: &EdgeConfig) -> std::io::Result<EdgeHandle> {
    spawn_edge_with(cloud_addr, cfg, NetConfig::default(), None)
}

/// Start an edge server, forwarding misses to `cloud_addr` under the given
/// [`NetConfig`]. `bind` pins the listening address (an edge restarted on
/// its old address lets degraded clients rejoin); `None` picks an
/// ephemeral loopback port.
pub fn spawn_edge_with(
    cloud_addr: SocketAddr,
    cfg: &EdgeConfig,
    net: NetConfig,
    bind: Option<SocketAddr>,
) -> std::io::Result<EdgeHandle> {
    let shards = net.cache_shards.max(1);
    let service = Arc::new(SharedEdgeService::new(cfg, shards));
    let service_in_handle = service.clone();
    let pending = Arc::new(Mutex::new(HashMap::new()));
    let peers: Arc<Mutex<Vec<SocketAddr>>> = Arc::new(Mutex::new(Vec::new()));
    let peers_in_handler = peers.clone();
    let cluster: Arc<Mutex<Option<LiveCluster>>> = Arc::new(Mutex::new(None));
    let cluster_h = cluster.clone();
    let stats = RobustnessStats::default();
    let gate = Arc::new(UpstreamGate::new(
        net.breaker_threshold,
        net.breaker_cooldown,
        stats.clone(),
    ));
    // Single-flight table: one upstream fetch per content digest at a
    // time; queued threads block on a condvar and re-check the cache when
    // the leader completes. Sharded like the caches so unrelated misses
    // never contend on one flight mutex.
    let flights: Arc<ShardedSingleFlight<Digest, Arc<FlightWaiter>>> =
        Arc::new(ShardedSingleFlight::new(shards));
    let (stats_h, gate_h, flights_h) = (stats.clone(), gate.clone(), flights.clone());
    let clock = WallClock::new();
    let admission: Option<Arc<LiveAdmission>> = net.admission.clone().map(|a| {
        Arc::new(LiveAdmission::new(
            OverloadControl::new(a, net.brownout.clone()),
            clock.clone(),
            stats.clone(),
            net.telemetry.clone(),
        ))
    });
    let admission_h = admission.clone();
    let bind = bind.unwrap_or_else(|| SocketAddr::from(([127, 0, 0, 1], 0)));
    let driver_kind = net.driver;
    let mut evcfg = net.evloop.clone();
    // Backpressure chain: with admission control on, the loop must stop
    // reading no later than the admission queue would start shedding, so
    // the dispatch bound is clamped to the admission queue (plus the
    // worker slots that drain it).
    if let Some(a) = &net.admission {
        evcfg.dispatch_depth = evcfg
            .dispatch_depth
            .min(a.queue_limit.saturating_add(evcfg.workers).max(1));
    }
    let server = DriverServer::spawn(bind, driver_kind, evcfg, move |frame| {
        let peers = &peers_in_handler;
        let msg = Msg::decode(&frame).ok()?;
        let now = clock.now_ns();
        let reply = match msg {
            Msg::Query {
                req_id,
                descriptor,
                hint,
            } => {
                // Admission first: a shed query is answered `Overloaded`
                // without touching the caches or upstream at all.
                let ticket = match admission_h.as_ref().map(|a| a.admit(req_id)) {
                    Some(LiveAdmit::Shed { retry_after_ms }) => {
                        return Some(
                            Msg::Overloaded {
                                req_id,
                                retry_after_ms,
                            }
                            .encode()
                            .to_vec(),
                        );
                    }
                    Some(LiveAdmit::Serve {
                        cached_only,
                        offered_at,
                    }) => Some((cached_only, offered_at)),
                    None => None,
                };
                // Queue time may have passed while waiting for the slot.
                let now = clock.now_ns();
                // One typed lookup serves both the reply decision and the
                // trace: the event records which cache answered (exact vs
                // approx vs miss) plus the path dimension — the lock
                // shard for digests, the lock-free snapshot index family
                // for descriptors.
                let outcome = service.lookup(&descriptor, now);
                let mut fields = vec![
                    ("req", Value::from(req_id)),
                    ("kind", Value::from(outcome.kind_str())),
                    ("hit", Value::from(outcome.is_hit())),
                ];
                match &descriptor {
                    FeatureDescriptor::Dnn(_) => {
                        fields.push(("index", Value::from(service.index_family())));
                    }
                    FeatureDescriptor::ModelHash(d) | FeatureDescriptor::PanoramaHash(d) => {
                        fields.push(("shard", Value::from(service.exact_shard_of(d))));
                    }
                }
                net.telemetry.event(now, "edge.lookup", fields);
                let decision = match outcome.into_value() {
                    Some(result) => EdgeReply::Hit(result),
                    None if ticket.is_some_and(|(cached_only, _)| cached_only) => {
                        // Degraded brownout: only cache hits are served;
                        // the miss is shed and the slot returned.
                        let retry_after_ms =
                            admission_h.as_ref().map_or(0, |a| a.shed_miss(req_id));
                        if let (Some((_, offered_at)), Some(a)) = (ticket, admission_h.as_ref()) {
                            a.release(offered_at);
                        }
                        return Some(
                            Msg::Overloaded {
                                req_id,
                                retry_after_ms,
                            }
                            .encode()
                            .to_vec(),
                        );
                    }
                    None => match &hint {
                        Some(task) => EdgeReply::Forward(task.clone()),
                        None => EdgeReply::NeedPayload,
                    },
                };
                let reply = match decision {
                    EdgeReply::Hit(result) => Msg::Hit { req_id, result },
                    EdgeReply::NeedPayload => {
                        pending.lock().insert(req_id, descriptor);
                        Msg::NeedPayload { req_id }
                    }
                    EdgeReply::Forward(task) => {
                        let digest = crate::services::descriptor_digest(&descriptor);
                        let fetch = |task: crate::task::TaskRequest| {
                            // Cooperative lookup: ask peer edges before
                            // paying the cloud round trip (exact tasks
                            // carry their digest in the descriptor).
                            let peer_hit = digest.and_then(|digest| {
                                // One probe: Ok(reply) when a frame came
                                // back (a content miss still proves the
                                // peer alive), Err on connect/deadline
                                // failure.
                                let probe = |addr: SocketAddr| -> Result<Option<TaskResult>, ()> {
                                    let mut peer =
                                        FrameConn::connect_timeout(&addr, net.connect_timeout)
                                            .map_err(|_| ())?;
                                    peer.set_read_deadline(Some(net.edge_call_deadline))
                                        .map_err(|_| ())?;
                                    peer.set_write_deadline(Some(net.edge_call_deadline))
                                        .map_err(|_| ())?;
                                    peer.send(&Msg::PeerQuery { req_id, digest }.encode())
                                        .map_err(|_| ())?;
                                    let resp = peer.recv().map_err(|_| ())?;
                                    match Msg::decode(&resp) {
                                        Ok(Msg::PeerReply { result, .. }) => Ok(result),
                                        _ => Err(()),
                                    }
                                };
                                let peer_field = |p: EdgeId| {
                                    vec![
                                        ("req", Value::from(req_id)),
                                        ("peer", Value::from(p as u64)),
                                    ]
                                };
                                // Cluster tier: bounded fan-out along the
                                // ring from the digest's owner, each probe
                                // outcome feeding that peer's breaker.
                                let planned = {
                                    let mut g = cluster_h.lock();
                                    g.as_mut().map(|c| {
                                        c.state.note_local_request(&digest);
                                        let plan = c.state.plan(&digest, clock.now_ns());
                                        let targets: Vec<(EdgeId, SocketAddr)> = plan
                                            .peers
                                            .iter()
                                            .filter_map(|&p| {
                                                c.members.get(p as usize).map(|&a| (p, a))
                                            })
                                            .collect();
                                        (targets, plan.failover, c.state.stats().clone())
                                    })
                                };
                                if let Some((targets, failover, cstats)) = planned {
                                    if failover {
                                        if let Some(&(peer, _)) = targets.first() {
                                            net.telemetry.event(
                                                clock.now_ns(),
                                                "decision.peer_failover",
                                                peer_field(peer),
                                            );
                                        }
                                    }
                                    let started = clock.now_ns();
                                    for (i, &(peer, addr)) in targets.iter().enumerate() {
                                        // Counted at send time so the
                                        // counter matches the probes (and
                                        // decision.peer_probe events)
                                        // actually emitted — a plan that
                                        // resolves early sends fewer
                                        // probes than it planned.
                                        cstats.count_probe();
                                        net.telemetry.event(
                                            clock.now_ns(),
                                            "decision.peer_probe",
                                            peer_field(peer),
                                        );
                                        let outcome = probe(addr);
                                        let now = clock.now_ns();
                                        let mut transition = None;
                                        {
                                            let mut g = cluster_h.lock();
                                            if let Some(c) = g.as_mut() {
                                                transition = c
                                                    .state
                                                    .record_probe(peer, outcome.is_ok(), now)
                                                    .map(|(from, to)| (c.state.me(), from, to));
                                                match &outcome {
                                                    Ok(Some(_)) => c.state.stats().count_peer_hit(),
                                                    Ok(None) => c.state.stats().count_peer_miss(),
                                                    Err(()) => c.state.stats().count_peer_timeout(),
                                                }
                                                if matches!(outcome, Ok(Some(_))) {
                                                    // This hit resolves the
                                                    // plan early: hand the
                                                    // unprobed peers' breaker
                                                    // grants back, or a
                                                    // half-open peer's single
                                                    // rejoin probe would be
                                                    // consumed by a probe
                                                    // that never happens.
                                                    for &(rest, _) in targets.iter().skip(i + 1) {
                                                        c.state.cancel_probe(rest);
                                                    }
                                                }
                                            }
                                        }
                                        if let Some((me, from, to)) = transition {
                                            net.telemetry.event(
                                                now,
                                                "cluster.peer_state",
                                                vec![
                                                    ("edge", Value::from(me as u64)),
                                                    ("req", Value::from(req_id)),
                                                    ("peer", Value::from(peer as u64)),
                                                    ("from", Value::from(from.as_str())),
                                                    ("to", Value::from(to.as_str())),
                                                ],
                                            );
                                        }
                                        match outcome {
                                            Ok(Some(result)) => {
                                                net.telemetry.event(
                                                    now,
                                                    "decision.peer_hit",
                                                    peer_field(peer),
                                                );
                                                net.telemetry.registry().observe(
                                                    "cluster.peer_latency_ns",
                                                    now.saturating_sub(started),
                                                );
                                                return Some(result);
                                            }
                                            Ok(None) => net.telemetry.event(
                                                now,
                                                "decision.peer_miss",
                                                peer_field(peer),
                                            ),
                                            Err(()) => net.telemetry.event(
                                                now,
                                                "decision.peer_timeout",
                                                peer_field(peer),
                                            ),
                                        }
                                    }
                                    return None;
                                }
                                // Legacy broadcast: every registered peer
                                // in list order.
                                let addrs = peers.lock().clone();
                                for addr in addrs {
                                    if let Ok(Some(result)) = probe(addr) {
                                        return Some(result);
                                    }
                                }
                                None
                            });
                            if let Some(result) = peer_hit {
                                return Some((result, true));
                            }
                            net.telemetry.event(
                                clock.now_ns(),
                                "cloud.forward",
                                vec![("req", Value::from(req_id))],
                            );
                            guarded_cloud_call(
                                cloud_addr,
                                &Msg::Forward { req_id, task },
                                &net,
                                &gate_h,
                                &clock,
                                &stats_h,
                            )
                            .map(|r| (r, false))
                        };
                        match digest {
                            Some(d) => loop {
                                let now = clock.now_ns();
                                if let Some(result) = service.exact_lookup(&d, now) {
                                    break Msg::Hit { req_id, result };
                                }
                                let waiter = Arc::new(FlightWaiter::default());
                                match flights_h.claim(d, waiter.clone()) {
                                    FlightClaim::Leader => {
                                        let fetched = fetch(task);
                                        if let Some((result, from_peer)) = &fetched {
                                            // Partition placement: under
                                            // the cluster a non-owner
                                            // pushes cloud fetches to the
                                            // digest's owner and keeps a
                                            // local replica only once its
                                            // own demand went hot.
                                            let (keep, push) = {
                                                let mut g = cluster_h.lock();
                                                match g.as_mut() {
                                                    Some(c) if !c.state.is_owner(&d) => {
                                                        let keep = c.state.is_locally_hot(&d);
                                                        if keep {
                                                            c.state.stats().count_replica_keep();
                                                        }
                                                        let push = if *from_peer {
                                                            None
                                                        } else {
                                                            c.state
                                                                .placement_target(&d)
                                                                .and_then(|o| {
                                                                    c.members
                                                                        .get(o as usize)
                                                                        .map(|&a| (o, a))
                                                                })
                                                                .map(|(o, a)| {
                                                                    c.state
                                                                        .stats()
                                                                        .count_replication_copy();
                                                                    (o, a, c.token)
                                                                })
                                                        };
                                                        (keep, push)
                                                    }
                                                    _ => (true, None),
                                                }
                                            };
                                            if keep {
                                                let folded =
                                                    service.insert(&descriptor, result, now);
                                                trace_rebuild(
                                                    &net,
                                                    &service,
                                                    folded,
                                                    clock.now_ns(),
                                                );
                                            }
                                            if let Some((owner, addr, token)) = push {
                                                net.telemetry.event(
                                                    clock.now_ns(),
                                                    "decision.peer_replicate",
                                                    vec![
                                                        ("req", Value::from(req_id)),
                                                        ("peer", Value::from(owner as u64)),
                                                    ],
                                                );
                                                replicate_to(
                                                    addr,
                                                    req_id,
                                                    token,
                                                    d,
                                                    result.clone(),
                                                    &net,
                                                );
                                            }
                                        }
                                        for w in flights_h.complete(&d) {
                                            w.notify();
                                        }
                                        break match fetched {
                                            Some((result, true)) => {
                                                Msg::PeerResult { req_id, result }
                                            }
                                            Some((result, false)) => Msg::Result { req_id, result },
                                            None => {
                                                stats_h.count_unavailable();
                                                net.telemetry.event(
                                                    clock.now_ns(),
                                                    "edge.unavailable",
                                                    vec![("req", Value::from(req_id))],
                                                );
                                                Msg::Unavailable { req_id }
                                            }
                                        };
                                    }
                                    FlightClaim::Queued => {
                                        net.telemetry.event(
                                            now,
                                            "flight.queued",
                                            vec![("req", Value::from(req_id))],
                                        );
                                        if !waiter.wait(net.edge_call_deadline) {
                                            stats_h.count_unavailable();
                                            net.telemetry.event(
                                                clock.now_ns(),
                                                "edge.unavailable",
                                                vec![("req", Value::from(req_id))],
                                            );
                                            break Msg::Unavailable { req_id };
                                        }
                                        // Leader finished: loop to re-check
                                        // the cache (and lead ourselves if
                                        // the leader failed).
                                    }
                                }
                            },
                            None => match fetch(task) {
                                Some((result, true)) => {
                                    let folded = service.insert(&descriptor, &result, now);
                                    trace_rebuild(&net, &service, folded, clock.now_ns());
                                    Msg::PeerResult { req_id, result }
                                }
                                Some((result, false)) => {
                                    let folded = service.insert(&descriptor, &result, now);
                                    trace_rebuild(&net, &service, folded, clock.now_ns());
                                    Msg::Result { req_id, result }
                                }
                                None => {
                                    stats_h.count_unavailable();
                                    net.telemetry.event(
                                        clock.now_ns(),
                                        "edge.unavailable",
                                        vec![("req", Value::from(req_id))],
                                    );
                                    Msg::Unavailable { req_id }
                                }
                            },
                        }
                    }
                };
                // Local service done: return the slot (upstream waits,
                // if any, are part of the observed sojourn on purpose —
                // a slow cloud is edge overload from the client's view).
                if let (Some((_, offered_at)), Some(a)) = (ticket, admission_h.as_ref()) {
                    a.release(offered_at);
                }
                reply
            }
            Msg::PeerQuery { req_id, digest } => {
                let result = service.exact_lookup(&digest, now);
                // Hot-entry failover replication: enough peer demand on an
                // owned entry pushes a copy to the digest's ring successor
                // so the content survives this edge dying.
                if let Some(result) = &result {
                    let push = {
                        let mut g = cluster_h.lock();
                        g.as_mut().and_then(|c| {
                            if !c.state.note_owner_request(&digest) {
                                return None;
                            }
                            c.state
                                .successor_target(&digest)
                                .and_then(|s| c.members.get(s as usize).map(|&a| (s, a)))
                                .map(|(s, a)| {
                                    c.state.stats().count_replication_copy();
                                    (s, a, c.token)
                                })
                        })
                    };
                    if let Some((succ, addr, token)) = push {
                        net.telemetry.event(
                            clock.now_ns(),
                            "decision.peer_replicate",
                            vec![
                                ("req", Value::from(req_id)),
                                ("peer", Value::from(succ as u64)),
                            ],
                        );
                        // Detached: the probing edge is waiting on this
                        // reply under its own edge-call deadline, so the
                        // push (connect + ack round trip) must never ride
                        // the probe's response path — a healthy owner
                        // would read as a breaker failure whenever a hot
                        // crossing coincides with a probe.
                        let push_net = net.clone();
                        let push_result = result.clone();
                        let _ = std::thread::Builder::new()
                            .name("coic-replicate".into())
                            .spawn(move || {
                                replicate_to(addr, req_id, token, digest, push_result, &push_net);
                            });
                    }
                }
                Msg::PeerReply { req_id, result }
            }
            Msg::Replicate {
                req_id,
                token,
                digest,
                result,
            } => {
                // Membership gate: install the pushed copy only when the
                // sender presented this cluster's token (derived from the
                // joined member list plus the configured secret). With no
                // cluster joined, or on a token mismatch, drop the
                // connection — an arbitrary process that reaches the edge
                // port must not be able to plant results under chosen
                // digests and have them served to peers.
                let member = cluster_h.lock().as_ref().is_some_and(|c| c.token == token);
                if !member {
                    return None;
                }
                // Install under the content hash (the exact store is
                // digest-keyed; the descriptor kind does not matter).
                let folded = service.insert(&FeatureDescriptor::ModelHash(digest), &result, now);
                trace_rebuild(&net, &service, folded, clock.now_ns());
                Msg::ReplicateAck { req_id }
            }
            Msg::Upload { req_id, task } => {
                let descriptor = pending.lock().remove(&req_id)?;
                net.telemetry.event(
                    clock.now_ns(),
                    "cloud.forward",
                    vec![("req", Value::from(req_id))],
                );
                match guarded_cloud_call(
                    cloud_addr,
                    &Msg::Forward { req_id, task },
                    &net,
                    &gate_h,
                    &clock,
                    &stats_h,
                ) {
                    Some(result) => {
                        let folded = service.insert(&descriptor, &result, now);
                        trace_rebuild(&net, &service, folded, clock.now_ns());
                        Msg::Result { req_id, result }
                    }
                    None => {
                        stats_h.count_unavailable();
                        net.telemetry.event(
                            clock.now_ns(),
                            "edge.unavailable",
                            vec![("req", Value::from(req_id))],
                        );
                        Msg::Unavailable { req_id }
                    }
                }
            }
            _ => return None,
        };
        Some(reply.encode().to_vec())
    })?;
    Ok(EdgeHandle {
        addr: server.local_addr(),
        peers,
        cluster,
        stats,
        gate,
        service: service_in_handle,
        admission,
        server,
    })
}

/// Outcome of one live request.
#[derive(Debug)]
pub struct LiveOutcome {
    /// The result delivered to the client.
    pub result: TaskResult,
    /// Wall-clock latency.
    pub elapsed: std::time::Duration,
    /// Hit/miss path taken.
    pub path: crate::qoe::Path,
    /// Attempts beyond the first this request needed.
    pub retries: u32,
}

/// A blocking CoIC client over a live edge connection. All orchestration
/// (retry, backoff, deadline, degrade, probe) is decided by the embedded
/// [`ClientEngine`]; this type only realizes its effects over framed TCP.
pub struct NetClient {
    edge_addr: SocketAddr,
    cloud_addr: Option<SocketAddr>,
    conn: Option<FrameConn>,
    logic: ClientLogic,
    next_req: u64,
    net: NetConfig,
    clock: WallClock,
    engine: ClientEngine<WallClock>,
    stats: RobustnessStats,
    tel: Telemetry,
    decisions_seen: usize,
}

impl NetClient {
    /// Connect to a live edge (no origin fallback, default deadlines).
    pub fn connect(
        edge_addr: SocketAddr,
        client_cfg: ClientConfig,
        compute: ComputeConfig,
        models: Arc<ModelLibrary>,
        panos: Arc<PanoLibrary>,
    ) -> std::io::Result<NetClient> {
        let mut c = Self::connect_with(
            edge_addr,
            None,
            NetConfig::default(),
            client_cfg,
            compute,
            models,
            panos,
        )?;
        // Preserve the historical contract: fail fast if the edge is down.
        if c.conn.is_none() {
            c.reconnect_edge()
                .map_err(|e| std::io::Error::other(e.to_string()))?;
        }
        Ok(c)
    }

    /// Connect with explicit fault-tolerance parameters. With a
    /// `cloud_addr`, the client survives edge failure: requests fall back
    /// to the origin path and the edge is re-probed every
    /// [`NetConfig::probe_interval`]. An initially-unreachable edge makes
    /// the client start degraded rather than fail construction.
    #[allow(clippy::too_many_arguments)]
    pub fn connect_with(
        edge_addr: SocketAddr,
        cloud_addr: Option<SocketAddr>,
        net: NetConfig,
        client_cfg: ClientConfig,
        compute: ComputeConfig,
        models: Arc<ModelLibrary>,
        panos: Arc<PanoLibrary>,
    ) -> std::io::Result<NetClient> {
        let stats = RobustnessStats::default();
        let clock = WallClock::new();
        let engine = ClientEngine::new(
            EngineConfig {
                retry: net.retry.clone(),
                deadline_ns: net.request_deadline.as_nanos() as u64,
                probe_interval_ns: net.probe_interval.as_nanos() as u64,
                use_edge: true,
                origin_fallback: cloud_addr.is_some(),
            },
            clock.clone(),
            stats.clone(),
        );
        let tel = net.telemetry.clone();
        let mut client = NetClient {
            edge_addr,
            cloud_addr,
            conn: None,
            logic: ClientLogic::new(client_cfg, compute, models, panos),
            next_req: 1,
            net,
            clock,
            engine,
            stats,
            tel,
            decisions_seen: 0,
        };
        if client.reconnect_edge().is_err() && client.cloud_addr.is_some() {
            client.engine.begin_degraded();
        }
        Ok(client)
    }

    /// Fault-handling counters for this client.
    pub fn robustness(&self) -> RobustnessStats {
        self.stats.clone()
    }

    /// Is the client currently on the origin (cloud-direct) path?
    pub fn is_degraded(&self) -> bool {
        self.engine.is_degraded()
    }

    /// Aggregate the engine's per-request QoE records — the same report
    /// type the simulator emits (byte counts are not populated on the
    /// live path).
    pub fn report(&self) -> QoeReport {
        QoeReport::from_records(self.engine.records())
    }

    /// Publish this client's aggregate QoE (`qoe.*`) and robustness
    /// counters (`robustness.*`) into `reg` — typically the registry of
    /// the [`Telemetry`] handle the client was configured with.
    pub fn publish_metrics(&self, reg: &MetricsRegistry) {
        self.report().publish(reg);
        self.stats.snapshot().publish(reg);
    }

    /// The engine's decision trace so far (hit/miss/retry/fallback
    /// sequence), comparable against a simulator trace.
    pub fn decisions(&self) -> &[Decision] {
        self.engine.decisions()
    }

    fn reconnect_edge(&mut self) -> Result<(), FrameError> {
        let conn = FrameConn::connect_timeout(&self.edge_addr, self.net.connect_timeout)?;
        conn.set_read_deadline(Some(self.net.request_deadline))?;
        conn.set_write_deadline(Some(self.net.request_deadline))?;
        self.conn = Some(conn);
        Ok(())
    }

    fn on_io_error(&self, e: &FrameError) {
        match e.fault() {
            FaultError::Timeout => self.stats.count_timeout(),
            FaultError::Corrupt => self.stats.count_corrupt(),
            _ => {}
        }
    }

    /// Send the descriptor query for one engine-decided attempt, then pump
    /// replies into the engine. Any IO failure is funneled back as a
    /// transport-failure event.
    fn edge_send_query(
        &mut self,
        req_id: u64,
        prepared: &crate::services::PreparedRequest,
        slot: &mut Option<TaskResult>,
    ) -> Vec<Effect> {
        if self.conn.is_none() {
            match self.reconnect_edge() {
                Ok(()) => self.stats.count_reconnect(),
                Err(_) => return self.engine.on_transport_failure(req_id),
            }
        }
        let hint = match &prepared.task {
            crate::task::TaskRequest::Recognition { .. } => None,
            t => Some(t.clone()),
        };
        let query = Msg::Query {
            req_id,
            descriptor: prepared.descriptor.clone(),
            hint,
        };
        let Some(conn) = self.conn.as_mut() else {
            // reconnect_edge succeeded above, but never panic the
            // request loop over a connection that vanished.
            return self.engine.on_transport_failure(req_id);
        };
        if let Err(e) = conn.send(&query.encode()) {
            self.on_io_error(&e);
            self.conn = None;
            return self.engine.on_transport_failure(req_id);
        }
        self.edge_recv(req_id, slot)
    }

    /// Receive one edge reply frame and feed it to the engine.
    fn edge_recv(&mut self, req_id: u64, slot: &mut Option<TaskResult>) -> Vec<Effect> {
        let Some(conn) = self.conn.as_mut() else {
            return self.engine.on_transport_failure(req_id);
        };
        let frame = match conn.recv() {
            Ok(f) => f,
            Err(e) => {
                self.on_io_error(&e);
                // Timeouts desynchronize the stream; all errors drop the
                // connection so the next attempt starts clean.
                self.conn = None;
                return self.engine.on_transport_failure(req_id);
            }
        };
        let msg = match Msg::decode(&frame) {
            Ok(m) => m,
            Err(_) => {
                self.conn = None;
                return self.engine.on_transport_failure(req_id);
            }
        };
        let (kind, result) = match msg {
            Msg::Hit { result, .. } => (ReplyKind::Hit, Some(result)),
            Msg::Result { result, .. } => (ReplyKind::Result, Some(result)),
            Msg::PeerResult { result, .. } => (ReplyKind::PeerResult, Some(result)),
            Msg::Unavailable { .. } => (ReplyKind::Unavailable, None),
            Msg::Overloaded { retry_after_ms, .. } => {
                (ReplyKind::Overloaded { retry_after_ms }, None)
            }
            Msg::NeedPayload { .. } => (ReplyKind::NeedPayload, None),
            // A stale reply to an earlier (timed-out) request id cannot
            // appear here — timeouts drop the connection — so any other
            // message is a protocol violation.
            _ => {
                self.conn = None;
                return self.engine.on_transport_failure(req_id);
            }
        };
        if let Some(r) = result {
            *slot = Some(r);
        }
        self.engine.on_reply(req_id, kind, None)
    }

    /// Answer a `NeedPayload` by uploading the full task, then keep
    /// pumping replies.
    fn edge_send_upload(
        &mut self,
        req_id: u64,
        prepared: &crate::services::PreparedRequest,
        slot: &mut Option<TaskResult>,
    ) -> Vec<Effect> {
        let upload = Msg::Upload {
            req_id,
            task: prepared.task.clone(),
        };
        let Some(conn) = self.conn.as_mut() else {
            return self.engine.on_transport_failure(req_id);
        };
        if let Err(e) = conn.send(&upload.encode()) {
            self.on_io_error(&e);
            self.conn = None;
            return self.engine.on_transport_failure(req_id);
        }
        self.edge_recv(req_id, slot)
    }

    /// Origin path: ask the cloud directly, bypassing the edge.
    fn origin_exchange(
        &mut self,
        req_id: u64,
        prepared: &crate::services::PreparedRequest,
        slot: &mut Option<TaskResult>,
    ) -> Vec<Effect> {
        let attempt = || -> Result<TaskResult, FrameError> {
            let addr = self.cloud_addr.ok_or_else(|| {
                FrameError::Io(std::io::Error::new(
                    std::io::ErrorKind::NotConnected,
                    "origin path requires a cloud address",
                ))
            })?;
            let mut cloud = FrameConn::connect_timeout(&addr, self.net.connect_timeout)?;
            cloud.set_read_deadline(Some(self.net.request_deadline))?;
            cloud.set_write_deadline(Some(self.net.request_deadline))?;
            cloud.send(
                &Msg::BaselineRequest {
                    req_id,
                    task: prepared.task.clone(),
                }
                .encode(),
            )?;
            let resp = cloud.recv()?;
            match Msg::decode(&resp) {
                Ok(Msg::BaselineReply { result, .. }) => Ok(result),
                _ => Err(FrameError::Closed),
            }
        };
        match attempt() {
            Ok(result) => {
                *slot = Some(result);
                self.engine.on_reply(req_id, ReplyKind::Baseline, None)
            }
            Err(e) => {
                self.on_io_error(&e);
                self.engine.on_transport_failure(req_id)
            }
        }
    }

    /// Execute one workload request end to end, returning the result, the
    /// measured wall latency and the path that served it. With a cloud
    /// fallback configured this only errors when *both* paths are dead.
    pub fn execute(
        &mut self,
        req: &coic_workload::Request,
    ) -> Result<LiveOutcome, Box<dyn std::error::Error>> {
        let issued_ns = self.clock.now_ns();
        let prepared = self.logic.prepare(req);
        let req_id = self.next_req;
        self.next_req += 1;
        // The engine numbers requests sequentially from zero, one per
        // `begin`, so this matches the `seq` in the decision events. The
        // client field mirrors the simulator's span shape; a live handle
        // drives one client, so it is always zero.
        let seq = req_id - 1;
        self.tel.span_enter(
            issued_ns,
            "request",
            vec![
                ("client", Value::from(0u64)),
                ("seq", Value::from(seq)),
                ("kind", Value::from(prepared.task.kind())),
            ],
        );
        let outcome = self.drive(req_id, issued_ns, &prepared);
        let new = self
            .engine
            .decisions()
            .get(self.decisions_seen..)
            .unwrap_or_default();
        let now = self.clock.now_ns();
        for d in new {
            record_decision(&self.tel, now, 0, d);
        }
        self.decisions_seen = self.engine.decisions().len();
        match &outcome {
            Ok(out) => {
                let elapsed_ns = out.elapsed.as_nanos() as u64;
                self.tel.observe("qoe.latency_ns", elapsed_ns);
                self.tel.span_exit(
                    issued_ns + elapsed_ns,
                    "request",
                    vec![
                        ("client", Value::from(0u64)),
                        ("seq", Value::from(seq)),
                        ("path", Value::from(path_label(out.path))),
                    ],
                );
            }
            Err(_) => {
                self.tel.span_exit(
                    now,
                    "request",
                    vec![
                        ("client", Value::from(0u64)),
                        ("seq", Value::from(seq)),
                        ("path", Value::from("failed")),
                    ],
                );
            }
        }
        outcome
    }

    /// Pump the engine's effects for one request to completion.
    fn drive(
        &mut self,
        req_id: u64,
        issued_ns: u64,
        prepared: &crate::services::PreparedRequest,
    ) -> Result<LiveOutcome, Box<dyn std::error::Error>> {
        let mut slot: Option<TaskResult> = None;
        let mut effects: VecDeque<Effect> =
            // Preprocessing already ran synchronously above: zero prep delay.
            self.engine
                .begin(req_id, prepared.task.kind(), issued_ns, 0)
                .into();
        while let Some(eff) = effects.pop_front() {
            let follow = match eff {
                Effect::ArmTimer {
                    kind: TimerKind::Prep,
                    epoch,
                    ..
                } => self.engine.on_timer(req_id, TimerKind::Prep, epoch),
                // Reply deadlines are realized by the sockets' read
                // deadlines (a timeout surfaces as a transport failure).
                Effect::ArmTimer {
                    kind: TimerKind::Deadline,
                    ..
                } => Vec::new(),
                Effect::ArmTimer {
                    kind: TimerKind::Backoff,
                    epoch,
                    delay_ns,
                    ..
                } => {
                    std::thread::sleep(Duration::from_nanos(delay_ns));
                    self.engine.on_timer(req_id, TimerKind::Backoff, epoch)
                }
                Effect::SendQuery { seq, attempt, .. } => {
                    if self.net.faults.edge_dropped(seq, attempt) {
                        self.engine.on_transport_failure(req_id)
                    } else {
                        self.edge_send_query(req_id, prepared, &mut slot)
                    }
                }
                Effect::SendUpload { .. } => self.edge_send_upload(req_id, prepared, &mut slot),
                Effect::SendOrigin { seq, attempt, .. } => {
                    if self.cloud_addr.is_none() {
                        // Unreachable by construction (origin_fallback is
                        // only set with a cloud address), but fail safe.
                        self.engine.on_transport_failure(req_id)
                    } else if self.net.faults.origin_dropped(seq, attempt) {
                        self.engine.on_transport_failure(req_id)
                    } else {
                        self.origin_exchange(req_id, prepared, &mut slot)
                    }
                }
                Effect::ProbeEdge { .. } => {
                    let ok = self.reconnect_edge().is_ok();
                    self.engine.on_probe_result(req_id, ok)
                }
                Effect::Complete { record, .. } => {
                    let Some(result) = slot.take() else {
                        return Err("request completed without a buffered result".into());
                    };
                    return Ok(LiveOutcome {
                        result,
                        elapsed: Duration::from_nanos(
                            record.completed_ns.saturating_sub(record.issued_ns),
                        ),
                        path: record.path,
                        retries: record.retries,
                    });
                }
                Effect::GiveUp { .. } => {
                    return Err(if self.cloud_addr.is_none() {
                        format!(
                            "edge at {} unreachable after {} attempts",
                            self.edge_addr,
                            self.net.retry.max_attempts.max(1)
                        )
                        .into()
                    } else {
                        format!(
                            "both edge {} and cloud {:?} unreachable",
                            self.edge_addr, self.cloud_addr
                        )
                        .into()
                    });
                }
            };
            effects.extend(follow);
        }
        Err("request ended without completing or failing".into())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qoe::Path;
    use coic_workload::{Request, RequestKind, UserId, ZoneId};
    use std::time::Instant;

    fn stack() -> (CloudHandle, EdgeHandle, NetClient) {
        let models = Arc::new(ModelLibrary::new());
        let panos = Arc::new(PanoLibrary::new(64));
        let compute = ComputeConfig::default();
        let classes: Vec<_> = (0..5).map(ObjectClass).collect();
        let cloud = spawn_cloud(&classes, 64, compute, models.clone(), panos.clone(), 3).unwrap();
        let edge = spawn_edge(cloud.addr(), &EdgeConfig::default()).unwrap();
        let client =
            NetClient::connect(edge.addr(), ClientConfig::default(), compute, models, panos)
                .unwrap();
        (cloud, edge, client)
    }

    fn recog(class: u32, seed: u64) -> Request {
        Request {
            user: UserId(0),
            zone: ZoneId(0),
            at_ns: 0,
            kind: RequestKind::Recognition {
                class,
                view_seed: seed,
            },
        }
    }

    #[test]
    fn live_recognition_miss_then_hit() {
        let (_cloud, _edge, mut client) = stack();
        let first = client.execute(&recog(2, 10)).unwrap();
        assert_eq!(first.path, Path::CloudMiss);
        match &first.result {
            TaskResult::Recognition(r) => assert_eq!(r.label, 2),
            other => panic!("unexpected {other:?}"),
        }
        // Same viewpoint again: identical descriptor, guaranteed hit.
        let second = client.execute(&recog(2, 10)).unwrap();
        assert_eq!(second.path, Path::EdgeHit);

        // The live client populates the same QoE report the simulator
        // emits: two completions, one hit, one cloud trip, real latencies.
        let report = client.report();
        assert_eq!(report.completed, 2);
        assert_eq!(report.edge_hits, 1);
        assert_eq!(report.cloud_trips, 1);
        assert!(report.mean_latency_ms() > 0.0);
        // And the decision trace names the same path sequence.
        use crate::engine::Decision;
        assert_eq!(
            client.decisions(),
            &[
                Decision::Attempt { seq: 0, attempt: 0 },
                Decision::Upload { seq: 0 },
                Decision::Complete {
                    seq: 0,
                    path: Path::CloudMiss
                },
                Decision::Attempt { seq: 1, attempt: 0 },
                Decision::Complete {
                    seq: 1,
                    path: Path::EdgeHit
                },
            ]
        );
    }

    #[test]
    fn live_model_load_shares_across_clients() {
        let models = Arc::new(ModelLibrary::new());
        let panos = Arc::new(PanoLibrary::new(64));
        let compute = ComputeConfig::default();
        let classes = vec![ObjectClass(0)];
        let cloud = spawn_cloud(&classes, 64, compute, models.clone(), panos.clone(), 3).unwrap();
        let edge = spawn_edge(cloud.addr(), &EdgeConfig::default()).unwrap();
        let req = Request {
            user: UserId(0),
            zone: ZoneId(0),
            at_ns: 0,
            kind: RequestKind::RenderLoad {
                model_id: 5,
                size_bytes: 60_000,
            },
        };
        let mut a = NetClient::connect(
            edge.addr(),
            ClientConfig::default(),
            compute,
            models.clone(),
            panos.clone(),
        )
        .unwrap();
        let mut b =
            NetClient::connect(edge.addr(), ClientConfig::default(), compute, models, panos)
                .unwrap();
        // Client A warms the cache; client B hits it.
        assert_eq!(a.execute(&req).unwrap().path, Path::CloudMiss);
        let out = b.execute(&req).unwrap();
        assert_eq!(out.path, Path::EdgeHit);
        match out.result {
            TaskResult::Model(bytes) => {
                coic_render::load_cmf(&bytes).unwrap();
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn live_peer_edges_cooperate() {
        let models = Arc::new(ModelLibrary::new());
        let panos = Arc::new(PanoLibrary::new(64));
        let compute = ComputeConfig::default();
        let classes = vec![ObjectClass(0)];
        let cloud = spawn_cloud(&classes, 64, compute, models.clone(), panos.clone(), 3).unwrap();
        let edge_a = spawn_edge(cloud.addr(), &EdgeConfig::default()).unwrap();
        let edge_b = spawn_edge(cloud.addr(), &EdgeConfig::default()).unwrap();
        edge_a.add_peer(edge_b.addr());
        edge_b.add_peer(edge_a.addr());

        let req = Request {
            user: UserId(0),
            zone: ZoneId(0),
            at_ns: 0,
            kind: RequestKind::RenderLoad {
                model_id: 3,
                size_bytes: 80_000,
            },
        };
        // Warm edge B through its own client.
        let mut b_client = NetClient::connect(
            edge_b.addr(),
            ClientConfig::default(),
            compute,
            models.clone(),
            panos.clone(),
        )
        .unwrap();
        assert_eq!(b_client.execute(&req).unwrap().path, Path::CloudMiss);

        // Edge A's client now gets the model via the peer, not the cloud.
        let mut a_client = NetClient::connect(
            edge_a.addr(),
            ClientConfig::default(),
            compute,
            models,
            panos,
        )
        .unwrap();
        let out = a_client.execute(&req).unwrap();
        assert_eq!(out.path, Path::PeerHit);
        // And it is now cached locally at A.
        assert_eq!(a_client.execute(&req).unwrap().path, Path::EdgeHit);
    }

    #[test]
    fn live_panorama_flow() {
        let (_cloud, _edge, mut client) = stack();
        let req = Request {
            user: UserId(0),
            zone: ZoneId(0),
            at_ns: 0,
            kind: RequestKind::Panorama { frame_id: 3 },
        };
        let miss = client.execute(&req).unwrap();
        assert_eq!(miss.path, Path::CloudMiss);
        let hit = client.execute(&req).unwrap();
        assert_eq!(hit.path, Path::EdgeHit);
        assert_eq!(miss.result, hit.result);
    }

    #[test]
    fn client_without_fallback_errors_when_edge_dies() {
        let (_cloud, mut edge, mut client) = stack();
        client.execute(&recog(1, 5)).unwrap();
        edge.shutdown();
        let net = NetConfig::default();
        let start = Instant::now();
        let err = client.execute(&recog(1, 6));
        assert!(err.is_err(), "edgeless client should fail");
        // It must fail by deadline/refusal, not hang forever.
        assert!(
            start.elapsed()
                < net.request_deadline * (net.retry.max_attempts + 1) + Duration::from_secs(2)
        );
    }

    #[test]
    fn injected_faults_fail_attempts_without_touching_the_network() {
        let models = Arc::new(ModelLibrary::new());
        let panos = Arc::new(PanoLibrary::new(64));
        let compute = ComputeConfig::default();
        let classes = vec![ObjectClass(0)];
        let cloud = spawn_cloud(&classes, 64, compute, models.clone(), panos.clone(), 3).unwrap();
        let edge = spawn_edge(cloud.addr(), &EdgeConfig::default()).unwrap();
        let net = NetConfig {
            retry: RetryPolicy {
                max_attempts: 3,
                base_backoff: Duration::from_millis(1),
                max_backoff: Duration::from_millis(2),
                jitter_frac: 0.0,
                seed: 0,
            },
            // Kill the first attempt of the first request (seq 0).
            faults: FaultSchedule::new().drop_edge_attempt(0, 0),
            ..NetConfig::default()
        };
        let mut client = NetClient::connect_with(
            edge.addr(),
            None,
            net,
            ClientConfig::default(),
            compute,
            models,
            panos,
        )
        .unwrap();
        let out = client
            .execute(&Request {
                user: UserId(0),
                zone: ZoneId(0),
                at_ns: 0,
                kind: RequestKind::Panorama { frame_id: 1 },
            })
            .unwrap();
        assert_eq!(out.retries, 1, "first attempt injected dead, second won");
        assert_eq!(client.report().retried_requests, 1);
    }

    #[test]
    fn breaker_makes_edge_answer_unavailable_fast() {
        let models = Arc::new(ModelLibrary::new());
        let panos = Arc::new(PanoLibrary::new(64));
        let compute = ComputeConfig::default();
        let classes = vec![ObjectClass(0)];
        let cloud = spawn_cloud(&classes, 64, compute, models.clone(), panos.clone(), 3).unwrap();
        let cloud_addr = cloud.addr();
        let net = NetConfig {
            edge_call_deadline: Duration::from_millis(300),
            breaker_threshold: 2,
            breaker_cooldown: Duration::from_secs(30),
            ..NetConfig::default()
        };
        let edge = spawn_edge_with(cloud_addr, &EdgeConfig::default(), net.clone(), None).unwrap();
        drop(cloud); // kill the cloud: the edge's forwarding leg is now dead

        let mut conn = FrameConn::connect(edge.addr()).unwrap();
        conn.set_read_deadline(Some(Duration::from_secs(5)))
            .unwrap();
        let query = |frame_id: u64, req_id: u64| {
            Msg::Query {
                req_id,
                descriptor: crate::descriptor::FeatureDescriptor::PanoramaHash(Digest::of(
                    &frame_id.to_le_bytes(),
                )),
                hint: Some(crate::task::TaskRequest::Panorama { frame_id }),
            }
            .encode()
        };
        // First misses fail against the dead cloud and trip the breaker…
        for req_id in 0..2u64 {
            conn.send(&query(req_id, req_id + 1)).unwrap();
            let resp = conn.recv().unwrap();
            assert!(matches!(
                Msg::decode(&resp).unwrap(),
                Msg::Unavailable { .. }
            ));
        }
        // …after which refusals are immediate (no upstream connect at all).
        let t = Instant::now();
        conn.send(&query(99, 100)).unwrap();
        let resp = conn.recv().unwrap();
        assert!(matches!(
            Msg::decode(&resp).unwrap(),
            Msg::Unavailable { .. }
        ));
        assert!(
            t.elapsed() < Duration::from_millis(200),
            "open breaker should refuse fast, took {:?}",
            t.elapsed()
        );
        assert_eq!(edge.breaker_state(), crate::robust::BreakerState::Open);
        let snap = edge.robustness().snapshot();
        assert!(snap.breaker_trips >= 1);
        assert_eq!(snap.unavailable_replies, 3);
    }
}

//! Cluster counters: shareable handle + registry publish.

use coic_obs::MetricsRegistry;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Shareable cooperative-tier counters (one handle per edge, cloned into
/// whatever thread serves its connections). Mirrors the shape of
/// `RobustnessStats`: atomic counts behind an `Arc`, snapshotted and
/// published as `cluster.*` registry counters at export time.
#[derive(Clone, Default)]
pub struct ClusterStats {
    inner: Arc<Counters>,
}

#[derive(Default)]
struct Counters {
    peer_probes: AtomicU64,
    peer_hits: AtomicU64,
    peer_misses: AtomicU64,
    peer_timeouts: AtomicU64,
    peer_failovers: AtomicU64,
    ring_rebuilds: AtomicU64,
    replication_copies: AtomicU64,
    replica_keeps: AtomicU64,
}

impl ClusterStats {
    /// A peer probe was sent.
    pub fn count_probe(&self) {
        self.inner.peer_probes.fetch_add(1, Ordering::Relaxed);
    }
    /// A probe came back with the content.
    pub fn count_peer_hit(&self) {
        self.inner.peer_hits.fetch_add(1, Ordering::Relaxed);
    }
    /// A probe came back empty.
    pub fn count_peer_miss(&self) {
        self.inner.peer_misses.fetch_add(1, Ordering::Relaxed);
    }
    /// A probe timed out or failed to connect.
    pub fn count_peer_timeout(&self) {
        self.inner.peer_timeouts.fetch_add(1, Ordering::Relaxed);
    }
    /// A probe plan skipped a dead owner and re-routed to its successor.
    pub fn count_failover(&self) {
        self.inner.peer_failovers.fetch_add(1, Ordering::Relaxed);
    }
    /// The effective ring changed shape (peer tripped out or rejoined).
    pub fn count_ring_rebuild(&self) {
        self.inner.ring_rebuilds.fetch_add(1, Ordering::Relaxed);
    }
    /// A copy was pushed to another edge (owner placement or successor
    /// failover replica).
    pub fn count_replication_copy(&self) {
        self.inner
            .replication_copies
            .fetch_add(1, Ordering::Relaxed);
    }
    /// A hot non-owned entry was kept as a local replica.
    pub fn count_replica_keep(&self) {
        self.inner.replica_keeps.fetch_add(1, Ordering::Relaxed);
    }

    /// Point-in-time copy of every counter.
    pub fn snapshot(&self) -> ClusterSnapshot {
        let c = &self.inner;
        ClusterSnapshot {
            peer_probes: c.peer_probes.load(Ordering::Relaxed),
            peer_hits: c.peer_hits.load(Ordering::Relaxed),
            peer_misses: c.peer_misses.load(Ordering::Relaxed),
            peer_timeouts: c.peer_timeouts.load(Ordering::Relaxed),
            peer_failovers: c.peer_failovers.load(Ordering::Relaxed),
            ring_rebuilds: c.ring_rebuilds.load(Ordering::Relaxed),
            replication_copies: c.replication_copies.load(Ordering::Relaxed),
            replica_keeps: c.replica_keeps.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time cooperative-tier counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClusterSnapshot {
    /// Peer probes sent.
    pub peer_probes: u64,
    /// Probes answered with the content.
    pub peer_hits: u64,
    /// Probes answered empty.
    pub peer_misses: u64,
    /// Probes that timed out / failed to connect.
    pub peer_timeouts: u64,
    /// Plans that re-routed around a dead owner.
    pub peer_failovers: u64,
    /// Effective ring shape changes (trips + rejoins).
    pub ring_rebuilds: u64,
    /// Copies pushed to other edges.
    pub replication_copies: u64,
    /// Hot non-owned entries kept locally.
    pub replica_keeps: u64,
}

impl ClusterSnapshot {
    /// Add this snapshot into `reg` as `cluster.*` counters (additive, so
    /// per-edge snapshots merge into fleet totals).
    pub fn publish(&self, reg: &MetricsRegistry) {
        reg.counter_add("cluster.peer_probe", self.peer_probes);
        reg.counter_add("cluster.peer_hit", self.peer_hits);
        reg.counter_add("cluster.peer_miss", self.peer_misses);
        reg.counter_add("cluster.peer_timeout", self.peer_timeouts);
        reg.counter_add("cluster.peer_failover", self.peer_failovers);
        reg.counter_add("cluster.ring_rebuild", self.ring_rebuilds);
        reg.counter_add("cluster.replication_copy", self.replication_copies);
        reg.counter_add("cluster.replica_keep", self.replica_keeps);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_counts_and_publishes() {
        let s = ClusterStats::default();
        s.count_probe();
        s.count_probe();
        s.count_peer_hit();
        s.count_peer_timeout();
        s.count_failover();
        s.count_ring_rebuild();
        s.count_replication_copy();
        s.count_replica_keep();
        let snap = s.snapshot();
        assert_eq!(snap.peer_probes, 2);
        assert_eq!(snap.peer_hits, 1);
        assert_eq!(snap.peer_misses, 0);
        let reg = MetricsRegistry::new();
        snap.publish(&reg);
        snap.publish(&reg); // additive merge
        assert_eq!(reg.counter("cluster.peer_probe"), 4);
        assert_eq!(reg.counter("cluster.peer_hit"), 2);
        assert_eq!(reg.counter("cluster.ring_rebuild"), 2);
    }
}

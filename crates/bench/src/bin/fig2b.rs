//! **Figure 2b** — "Load latency reduction in rendering tasks."
//!
//! Paper result: "By caching the loaded data in rendering tasks on the
//! edge, CoIC reduces the load latency by **up to 75.86%** for 3D models
//! differed in size."
//!
//! Run with: `cargo run --release -p coic-bench --bin fig2b`

use coic_bench::{base_config, render_trace, run_pair};

fn main() {
    println!("Figure 2b — load latency reduction vs 3D model size");
    println!("(sequential loads over 8 shared models per size, 48 loads)\n");
    println!(
        "{:>10} | {:>12} {:>12} {:>7} | {:>10}",
        "model size", "origin-mean", "coic-mean", "hit%", "reduction"
    );
    coic_bench::rule(62);
    let mut max_red: f64 = 0.0;
    for size_mb in [1u64, 2, 4, 8, 16, 32, 64] {
        let trace = render_trace(1, 8, size_mb * 1_000_000, 48, 7 + size_mb);
        let mut cfg = base_config();
        cfg.num_clients = 1;
        let (origin, coic, red) = run_pair(&trace, &cfg);
        max_red = max_red.max(red);
        println!(
            "{:>7} MB | {:>9.1} ms {:>9.1} ms {:>6.1}% | {:>9.2}%",
            size_mb,
            origin.mean_latency_ms(),
            coic.mean_latency_ms(),
            coic.hit_ratio() * 100.0,
            red
        );
    }
    coic_bench::rule(62);
    println!("max reduction: {max_red:.2}%   (paper: up to 75.86%)");
}

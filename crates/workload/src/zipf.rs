//! Zipf-distributed popularity sampling.
//!
//! Content popularity in the paper's motivating workloads (popular
//! landmarks, popular avatars, popular videos) is heavy-tailed: a few items
//! get most requests. The standard model is Zipf with exponent `s`.

use rand::rngs::StdRng;
use rand::RngExt;

/// A Zipf sampler over ranks `0..n` with exponent `s`
/// (`P(rank k) ∝ 1/(k+1)^s`).
///
/// # Examples
/// ```
/// use coic_workload::Zipf;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let zipf = Zipf::new(100, 1.0);
/// let mut rng = StdRng::seed_from_u64(7);
/// // Rank 0 is the most popular item.
/// assert!(zipf.pmf(0) > zipf.pmf(99));
/// assert!(zipf.sample(&mut rng) < 100);
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build a sampler for `n` items with skew `s` (s = 0 is uniform).
    ///
    /// # Panics
    /// Panics if `n == 0` or `s` is negative/non-finite.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one item");
        assert!(s.is_finite() && s >= 0.0, "exponent must be non-negative");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True when the support is empty (never: construction forbids it).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draw a rank in `0..n`, rank 0 most popular.
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        let u: f64 = rng.random();
        // First index whose CDF value is >= u.
        match self
            .cdf
            .binary_search_by(|c| c.partial_cmp(&u).expect("finite cdf"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }

    /// Probability of rank `k`.
    pub fn pmf(&self, k: usize) -> f64 {
        assert!(k < self.cdf.len(), "rank out of range");
        if k == 0 {
            self.cdf[0]
        } else {
            self.cdf[k] - self.cdf[k - 1]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn samples_stay_in_range() {
        let z = Zipf::new(10, 0.9);
        let mut r = rng();
        for _ in 0..1000 {
            assert!(z.sample(&mut r) < 10);
        }
    }

    #[test]
    fn zero_exponent_is_uniform() {
        let z = Zipf::new(4, 0.0);
        for k in 0..4 {
            assert!((z.pmf(k) - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn higher_skew_concentrates_on_rank_zero() {
        let mild = Zipf::new(100, 0.5);
        let strong = Zipf::new(100, 1.5);
        assert!(strong.pmf(0) > mild.pmf(0));
        assert!(strong.pmf(99) < mild.pmf(99));
    }

    #[test]
    fn empirical_frequency_matches_pmf() {
        let z = Zipf::new(20, 1.0);
        let mut r = rng();
        let n = 100_000;
        let mut counts = [0u64; 20];
        for _ in 0..n {
            counts[z.sample(&mut r)] += 1;
        }
        for (k, &count) in counts.iter().enumerate() {
            let emp = count as f64 / n as f64;
            assert!(
                (emp - z.pmf(k)).abs() < 0.01,
                "rank {k}: empirical {emp}, pmf {}",
                z.pmf(k)
            );
        }
    }

    #[test]
    fn pmf_sums_to_one() {
        let z = Zipf::new(50, 0.8);
        let sum: f64 = (0..50).map(|k| z.pmf(k)).sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one item")]
    fn empty_support_rejected() {
        let _ = Zipf::new(0, 1.0);
    }
}

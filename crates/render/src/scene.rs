//! Scene graph and camera.
//!
//! The AR application of the paper "renders high-quality 3D annotations to
//! label objects recognized in the camera view": a [`Scene`] holds loaded
//! models with per-instance transforms and a [`Camera`] produces the
//! matrices the rasterizer consumes.

use crate::math::{Mat4, Vec3};
use crate::mesh::Mesh;
use crate::raster::{draw, DrawStats, Framebuffer};

/// A perspective camera.
#[derive(Debug, Clone, Copy)]
pub struct Camera {
    /// Eye position.
    pub eye: Vec3,
    /// Look-at target.
    pub target: Vec3,
    /// Up direction.
    pub up: Vec3,
    /// Vertical field of view, radians.
    pub fov_y: f32,
    /// Near clip plane.
    pub near: f32,
    /// Far clip plane.
    pub far: f32,
}

impl Default for Camera {
    fn default() -> Self {
        Camera {
            eye: Vec3::new(0.0, 0.0, 5.0),
            target: Vec3::ZERO,
            up: Vec3::new(0.0, 1.0, 0.0),
            fov_y: std::f32::consts::FRAC_PI_3,
            near: 0.1,
            far: 100.0,
        }
    }
}

impl Camera {
    /// View-projection matrix for a target of the given aspect ratio.
    pub fn view_proj(&self, aspect: f32) -> Mat4 {
        let proj = Mat4::perspective(self.fov_y, aspect, self.near, self.far);
        let view = Mat4::look_at(self.eye, self.target, self.up);
        proj.mul(&view)
    }
}

/// One model instance in the scene.
#[derive(Debug, Clone)]
pub struct Instance {
    /// Index into the scene's model list.
    pub model: usize,
    /// Object-to-world transform.
    pub transform: Mat4,
}

/// A renderable collection of models and instances.
#[derive(Default)]
pub struct Scene {
    models: Vec<Mesh>,
    instances: Vec<Instance>,
    /// Directional light, world space.
    pub light_dir: Vec3,
}

impl Scene {
    /// Create an empty scene lit from the default direction.
    pub fn new() -> Self {
        Scene {
            models: Vec::new(),
            instances: Vec::new(),
            light_dir: Vec3::new(-0.4, -0.8, -0.5),
        }
    }

    /// Add a model; returns its index for instancing.
    pub fn add_model(&mut self, mesh: Mesh) -> usize {
        self.models.push(mesh);
        self.models.len() - 1
    }

    /// Place an instance of model `model` at `transform`.
    ///
    /// # Panics
    /// Panics if `model` is not a valid model index.
    pub fn add_instance(&mut self, model: usize, transform: Mat4) {
        assert!(model < self.models.len(), "unknown model index {model}");
        self.instances.push(Instance { model, transform });
    }

    /// Number of models.
    pub fn model_count(&self) -> usize {
        self.models.len()
    }

    /// Number of placed instances.
    pub fn instance_count(&self) -> usize {
        self.instances.len()
    }

    /// Render all instances with `camera` into `fb`, returning aggregate
    /// draw statistics.
    pub fn render(&self, camera: &Camera, fb: &mut Framebuffer) -> DrawStats {
        let aspect = fb.width() as f32 / fb.height() as f32;
        let vp = camera.view_proj(aspect);
        let mut total = DrawStats::default();
        for inst in &self.instances {
            let mvp = vp.mul(&inst.transform);
            let s = draw(
                fb,
                &self.models[inst.model],
                &mvp,
                &inst.transform,
                self.light_dir,
            );
            total.triangles_in += s.triangles_in;
            total.triangles_drawn += s.triangles_drawn;
            total.pixels_shaded += s.pixels_shaded;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::procgen;

    #[test]
    fn instanced_scene_renders() {
        let mut scene = Scene::new();
        let sphere = scene.add_model(procgen::uv_sphere(10, 14));
        scene.add_instance(sphere, Mat4::translate(Vec3::new(-1.2, 0.0, 0.0)));
        scene.add_instance(sphere, Mat4::translate(Vec3::new(1.2, 0.0, 0.0)));
        let mut fb = Framebuffer::new(64, 64);
        let stats = scene.render(&Camera::default(), &mut fb);
        assert_eq!(scene.model_count(), 1);
        assert_eq!(scene.instance_count(), 2);
        // Both instances contribute triangles.
        assert_eq!(
            stats.triangles_in,
            2 * procgen::uv_sphere(10, 14).triangle_count() as u64
        );
        assert!(stats.pixels_shaded > 0);
        // Two blobs: left and right of center covered, top corner empty.
        assert!(fb.depth_at(18, 32).is_finite());
        assert!(fb.depth_at(46, 32).is_finite());
        assert!(!fb.depth_at(0, 0).is_finite());
    }

    #[test]
    #[should_panic(expected = "unknown model index")]
    fn bad_instance_index_panics() {
        let mut scene = Scene::new();
        scene.add_instance(0, Mat4::IDENTITY);
    }

    #[test]
    fn empty_scene_draws_nothing() {
        let scene = Scene::new();
        let mut fb = Framebuffer::new(16, 16);
        let stats = scene.render(&Camera::default(), &mut fb);
        assert_eq!(stats, DrawStats::default());
        assert_eq!(fb.coverage(), 0.0);
    }
}

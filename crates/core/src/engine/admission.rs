//! Admission control for an overloaded edge: a bounded request queue with
//! deterministic oldest-first shedding plus an AIMD concurrency limiter.
//!
//! Clock-agnostic like the rest of the engine: every method takes the
//! current time in nanoseconds (from a [`super::clock::Clock`]) instead of
//! reading a wall clock, so the simulator drives it under virtual time and
//! the live edge under real time through one implementation.
//!
//! The model is a single service station. At most `limit` requests are *in
//! service* at once; the limit adapts by AIMD on the observed sojourn time
//! (additive increase while completions meet the latency target,
//! multiplicative decrease when they miss it). Requests that arrive with
//! every slot busy wait in a bounded FIFO queue. The queue sheds
//! deterministically and always oldest-first: entries older than
//! `max_queue_age` are dropped whenever the controller is touched, and a
//! full queue evicts its oldest entry to make room for the newcomer (the
//! oldest waiter is the one most likely to have blown its deadline
//! already, so it is the cheapest to abandon). Shed requests are answered
//! with [`crate::protocol::Msg::Overloaded`] carrying a retry-after hint.

use std::collections::VecDeque;
use std::time::Duration;

/// Tuning for [`AdmissionController`].
#[derive(Debug, Clone, PartialEq)]
pub struct AdmissionConfig {
    /// Maximum number of requests waiting for a service slot. `0` means
    /// no queue: anything beyond the concurrency limit is shed outright.
    pub queue_limit: usize,
    /// Queued requests older than this are shed (age-based shedding).
    pub max_queue_age: Duration,
    /// AIMD floor for the concurrency limit.
    pub min_concurrency: u32,
    /// AIMD ceiling for the concurrency limit (the physical capacity).
    pub max_concurrency: u32,
    /// Concurrency limit at start-up.
    pub initial_concurrency: u32,
    /// Sojourn-time target: completions at or under it grow the limit by
    /// one, completions over it halve the limit (floored at the minimum).
    pub latency_target: Duration,
    /// Retry-after hint carried on every shed reply, in milliseconds.
    pub retry_after_ms: u32,
}

impl Default for AdmissionConfig {
    fn default() -> AdmissionConfig {
        AdmissionConfig {
            queue_limit: 64,
            max_queue_age: Duration::from_millis(250),
            min_concurrency: 1,
            max_concurrency: 256,
            initial_concurrency: 8,
            latency_target: Duration::from_millis(50),
            retry_after_ms: 100,
        }
    }
}

impl AdmissionConfig {
    /// A fixed concurrency limit (`min = max = initial`), i.e. no AIMD
    /// adaptation — useful for tests and for modelling a known capacity.
    pub fn fixed(limit: u32) -> AdmissionConfig {
        let limit = limit.max(1);
        AdmissionConfig {
            min_concurrency: limit,
            max_concurrency: limit,
            initial_concurrency: limit,
            ..AdmissionConfig::default()
        }
    }

    /// The collapse baseline: the same fixed service capacity but an
    /// effectively unbounded queue that never sheds. Under sustained
    /// overload its waiting time grows without bound — the regime the
    /// bounded configurations exist to prevent.
    pub fn unbounded(limit: u32) -> AdmissionConfig {
        AdmissionConfig {
            queue_limit: usize::MAX,
            max_queue_age: Duration::from_secs(u64::MAX / 2_000_000_000),
            ..AdmissionConfig::fixed(limit)
        }
    }
}

/// Outcome of offering one request to the controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admit {
    /// A service slot was free: the request is in service now. The caller
    /// must eventually call [`AdmissionController::release`] for it.
    Admitted,
    /// All slots are busy: the request is waiting in the bounded queue.
    /// It starts service when a future `release` returns it in
    /// [`Drain::start`], or is shed by age / eviction.
    Queued,
    /// The request was refused outright (no queue space at all). Reply
    /// `Msg::Overloaded` with the embedded retry-after hint.
    Shed {
        /// Milliseconds the client should wait before retrying the edge.
        retry_after_ms: u32,
    },
}

/// Queued requests whose fate was decided by a `release` or `offer` call:
/// `start` entered service (their slots are already accounted for), `shed`
/// must be answered `Msg::Overloaded`. Both are ordered oldest-first.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Drain {
    /// Request ids that just moved from the queue into service.
    pub start: Vec<u64>,
    /// Request ids shed from the queue (aged out or evicted).
    pub shed: Vec<u64>,
}

impl Drain {
    /// No queued request changed state.
    pub fn is_empty(&self) -> bool {
        self.start.is_empty() && self.shed.is_empty()
    }
}

/// The admission controller: bounded queue + AIMD concurrency limiter.
///
/// Single-threaded by design (`&mut self`), like the rest of the sans-IO
/// engine; the live edge wraps it in a mutex, the simulator owns it.
#[derive(Debug)]
pub struct AdmissionController {
    cfg: AdmissionConfig,
    limit: u32,
    inflight: u32,
    /// Waiting requests, oldest at the front: `(id, enqueued_at_ns)`.
    queue: VecDeque<(u64, u64)>,
    admitted_total: u64,
    shed_total: u64,
}

impl AdmissionController {
    /// Controller with the given tuning (fields are clamped into a
    /// consistent `min ≤ initial ≤ max` order).
    pub fn new(cfg: AdmissionConfig) -> AdmissionController {
        let mut cfg = cfg;
        cfg.min_concurrency = cfg.min_concurrency.max(1);
        cfg.max_concurrency = cfg.max_concurrency.max(cfg.min_concurrency);
        cfg.initial_concurrency = cfg
            .initial_concurrency
            .clamp(cfg.min_concurrency, cfg.max_concurrency);
        let limit = cfg.initial_concurrency;
        AdmissionController {
            cfg,
            limit,
            inflight: 0,
            queue: VecDeque::new(),
            admitted_total: 0,
            shed_total: 0,
        }
    }

    /// Offer one request at `now_ns`. Besides the verdict for *this*
    /// request, returns the ids of any queued requests shed to decide it
    /// (age expiry plus at most one oldest-entry eviction); the caller
    /// must answer each of those `Msg::Overloaded`.
    pub fn offer(&mut self, id: u64, now_ns: u64) -> (Admit, Vec<u64>) {
        let mut evicted = self.expire(now_ns);
        if self.inflight < self.limit {
            self.inflight += 1;
            self.admitted_total += 1;
            return (Admit::Admitted, evicted);
        }
        if self.cfg.queue_limit == 0 {
            self.shed_total += 1;
            return (
                Admit::Shed {
                    retry_after_ms: self.cfg.retry_after_ms,
                },
                evicted,
            );
        }
        if self.queue.len() >= self.cfg.queue_limit {
            // Full: evict the oldest waiter to keep shedding age-ordered.
            if let Some((old, _)) = self.queue.pop_front() {
                self.shed_total += 1;
                evicted.push(old);
            }
        }
        self.queue.push_back((id, now_ns));
        (Admit::Queued, evicted)
    }

    /// Complete one in-service request whose observed sojourn (offer →
    /// completion) was `service_ns`. Feeds the AIMD limiter, frees the
    /// slot, then drains the queue: aged-out entries are shed and the
    /// oldest survivors fill whatever slots the new limit allows.
    pub fn release(&mut self, service_ns: u64, now_ns: u64) -> Drain {
        self.inflight = self.inflight.saturating_sub(1);
        if service_ns <= self.cfg.latency_target.as_nanos() as u64 {
            self.limit = (self.limit + 1).min(self.cfg.max_concurrency);
        } else {
            self.limit = (self.limit / 2).max(self.cfg.min_concurrency);
        }
        let mut drain = Drain {
            shed: self.expire(now_ns),
            ..Drain::default()
        };
        while self.inflight < self.limit {
            match self.queue.pop_front() {
                Some((id, _)) => {
                    self.inflight += 1;
                    self.admitted_total += 1;
                    drain.start.push(id);
                }
                None => break,
            }
        }
        drain
    }

    /// Shed every queued request older than the age bound. Returned
    /// oldest-first; callers reply `Msg::Overloaded` to each.
    pub fn expire(&mut self, now_ns: u64) -> Vec<u64> {
        let age = self.cfg.max_queue_age.as_nanos() as u64;
        let mut out = Vec::new();
        while let Some(&(id, at)) = self.queue.front() {
            if now_ns.saturating_sub(at) > age {
                self.queue.pop_front();
                self.shed_total += 1;
                out.push(id);
            } else {
                break;
            }
        }
        out
    }

    /// Record a shed that happened outside the queue (e.g. a brownout
    /// refusal before `offer`, or a degraded-mode cache miss).
    pub fn note_shed(&mut self) {
        self.shed_total += 1;
    }

    /// Queue occupancy in `[0, 1]` — the pressure signal the brownout
    /// ladder watches. An unbounded queue always reports `0.0` (the
    /// baseline configuration opts out of brownout by construction).
    pub fn pressure(&self) -> f64 {
        if self.cfg.queue_limit == 0 || self.cfg.queue_limit == usize::MAX {
            return 0.0;
        }
        self.queue.len() as f64 / self.cfg.queue_limit as f64
    }

    /// Current AIMD concurrency limit.
    pub fn limit(&self) -> u32 {
        self.limit
    }

    /// Requests currently in service.
    pub fn inflight(&self) -> u32 {
        self.inflight
    }

    /// Requests currently waiting in the queue.
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// Retry-after hint (milliseconds) carried on shed replies.
    pub fn retry_after_ms(&self) -> u32 {
        self.cfg.retry_after_ms
    }

    /// Total requests admitted into service since construction.
    pub fn admitted_total(&self) -> u64 {
        self.admitted_total
    }

    /// Total requests shed since construction.
    pub fn shed_total(&self) -> u64 {
        self.shed_total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MS: u64 = 1_000_000;

    fn cfg() -> AdmissionConfig {
        AdmissionConfig {
            queue_limit: 3,
            max_queue_age: Duration::from_millis(10),
            min_concurrency: 1,
            max_concurrency: 8,
            initial_concurrency: 2,
            latency_target: Duration::from_millis(5),
            retry_after_ms: 25,
        }
    }

    #[test]
    fn admits_until_the_limit_then_queues_then_evicts_oldest() {
        let mut c = AdmissionController::new(cfg());
        assert_eq!(c.offer(1, 0), (Admit::Admitted, vec![]));
        assert_eq!(c.offer(2, 0), (Admit::Admitted, vec![]));
        assert_eq!(c.offer(3, MS), (Admit::Queued, vec![]));
        assert_eq!(c.offer(4, 2 * MS), (Admit::Queued, vec![]));
        assert_eq!(c.offer(5, 3 * MS), (Admit::Queued, vec![]));
        // Queue full: the oldest waiter (3) is evicted for the newcomer.
        assert_eq!(c.offer(6, 4 * MS), (Admit::Queued, vec![3]));
        assert_eq!(c.queue_depth(), 3);
        assert_eq!(c.shed_total(), 1);
    }

    #[test]
    fn zero_queue_sheds_outright_with_the_configured_hint() {
        let mut c = AdmissionController::new(AdmissionConfig {
            queue_limit: 0,
            ..cfg()
        });
        assert_eq!(c.offer(1, 0).0, Admit::Admitted);
        assert_eq!(c.offer(2, 0).0, Admit::Admitted);
        assert_eq!(c.offer(3, 0).0, Admit::Shed { retry_after_ms: 25 });
        assert_eq!(c.shed_total(), 1);
    }

    #[test]
    fn release_feeds_aimd_and_starts_the_oldest_waiter() {
        let mut c = AdmissionController::new(cfg());
        c.offer(1, 0);
        c.offer(2, 0);
        c.offer(3, MS);
        c.offer(4, 2 * MS);
        // Fast completion: limit 2 → 3, freeing two slots; both waiters
        // start, oldest first.
        let d = c.release(MS, 3 * MS);
        assert_eq!(d.start, vec![3, 4]);
        assert!(d.shed.is_empty());
        assert_eq!(c.limit(), 3);
        assert_eq!(c.inflight(), 3);
    }

    #[test]
    fn slow_completions_halve_the_limit_down_to_the_floor() {
        let mut c = AdmissionController::new(AdmissionConfig {
            initial_concurrency: 8,
            ..cfg()
        });
        for id in 0..8 {
            assert_eq!(c.offer(id, 0).0, Admit::Admitted);
        }
        c.release(20 * MS, 20 * MS); // over target: 8 → 4
        assert_eq!(c.limit(), 4);
        c.release(20 * MS, 20 * MS); // 4 → 2
        c.release(20 * MS, 20 * MS); // 2 → 1
        c.release(20 * MS, 20 * MS); // floored
        assert_eq!(c.limit(), 1);
        // Recovery is additive: one fast completion grows it by one.
        c.release(MS, 21 * MS);
        assert_eq!(c.limit(), 2);
    }

    #[test]
    fn aged_waiters_are_shed_on_any_touch() {
        let mut c = AdmissionController::new(cfg());
        c.offer(1, 0);
        c.offer(2, 0);
        c.offer(3, MS);
        c.offer(4, 2 * MS);
        // 12ms later both waiters exceed the 10ms age bound; the offer
        // sheds them before deciding the newcomer (which then queues).
        let (admit, shed) = c.offer(5, 13 * MS);
        assert_eq!(admit, Admit::Queued);
        assert_eq!(shed, vec![3, 4]);
        assert_eq!(c.queue_depth(), 1);
    }

    #[test]
    fn release_sheds_aged_waiters_before_starting_fresh_ones() {
        let mut c = AdmissionController::new(cfg());
        c.offer(1, 0);
        c.offer(2, 0);
        c.offer(3, 0); // will age out
        c.offer(4, 5 * MS); // still fresh at 13ms
        let d = c.release(MS, 13 * MS);
        assert_eq!(d.shed, vec![3]);
        assert_eq!(d.start, vec![4]);
    }

    /// Property: shedding is always oldest-first. Under a seeded
    /// pseudo-random arrival/completion schedule, every shed batch drops
    /// a prefix of the queue in enqueue order — no younger entry is ever
    /// shed while an older one keeps waiting.
    #[test]
    fn shedding_is_always_oldest_first_under_random_schedules() {
        // SplitMix64: the same deterministic generator RetryPolicy uses.
        let mut state = 0x5EED_u64;
        let mut rng = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let mut c = AdmissionController::new(AdmissionConfig {
            queue_limit: 4,
            max_queue_age: Duration::from_millis(8),
            min_concurrency: 1,
            max_concurrency: 4,
            initial_concurrency: 2,
            latency_target: Duration::from_millis(3),
            retry_after_ms: 10,
        });
        // Ground truth: enqueue time per id, and the live queue mirror.
        let mut enqueued_at = std::collections::BTreeMap::new();
        let mut mirror: Vec<u64> = Vec::new();
        let mut now = 0u64;
        let mut next_id = 0u64;
        let check = |shed: &[u64],
                     started: &[u64],
                     mirror: &mut Vec<u64>,
                     at: &std::collections::BTreeMap<u64, u64>| {
            for batch in [shed, started] {
                for id in batch {
                    assert_eq!(
                        mirror.first(),
                        Some(id),
                        "drained {id} but queue front was {:?}",
                        mirror.first()
                    );
                    mirror.remove(0);
                }
            }
            // Everything shed must be at least as old as every survivor.
            let oldest_left = mirror.iter().map(|id| at[id]).min();
            for id in shed {
                if let Some(min_left) = oldest_left {
                    assert!(
                        at[id] <= min_left,
                        "shed {id} (t={}) before older waiter (t={min_left})",
                        at[id]
                    );
                }
            }
        };
        for _ in 0..2_000 {
            now += rng() % (3 * MS);
            if rng() % 3 > 0 {
                let id = next_id;
                next_id += 1;
                let (admit, shed) = c.offer(id, now);
                if admit == Admit::Queued {
                    // Shed happened before this enqueue.
                    check(&shed, &[], &mut mirror, &enqueued_at);
                    enqueued_at.insert(id, now);
                    mirror.push(id);
                } else {
                    check(&shed, &[], &mut mirror, &enqueued_at);
                }
            } else if c.inflight() > 0 {
                let d = c.release(rng() % (6 * MS), now);
                check(&d.shed, &d.start, &mut mirror, &enqueued_at);
            }
        }
        assert!(c.shed_total() > 0, "schedule never exercised shedding");
        assert!(c.admitted_total() > 0);
    }

    #[test]
    fn pressure_tracks_queue_occupancy() {
        let mut c = AdmissionController::new(cfg());
        assert_eq!(c.pressure(), 0.0);
        c.offer(1, 0);
        c.offer(2, 0);
        assert_eq!(c.pressure(), 0.0, "in-service load is not queue pressure");
        c.offer(3, 0);
        assert!((c.pressure() - 1.0 / 3.0).abs() < 1e-9);
        c.offer(4, 0);
        c.offer(5, 0);
        assert_eq!(c.pressure(), 1.0);
        let unbounded = AdmissionController::new(AdmissionConfig::unbounded(2));
        assert_eq!(unbounded.pressure(), 0.0);
    }

    #[test]
    fn unbounded_baseline_never_sheds() {
        let mut c = AdmissionController::new(AdmissionConfig::unbounded(1));
        c.offer(0, 0);
        for id in 1..500u64 {
            let (admit, shed) = c.offer(id, id * MS);
            assert_eq!(admit, Admit::Queued);
            assert!(shed.is_empty());
        }
        assert_eq!(c.shed_total(), 0);
        assert_eq!(c.queue_depth(), 499);
        // And the fixed limit never adapts.
        c.release(u64::MAX / 4, 500 * MS);
        assert_eq!(c.limit(), 1);
    }
}

//! **Ext E** — fine-grained layer-level reuse (paper §4 ongoing work).
//!
//! Sweeps the DNN layer whose activation keys the cache: layer 0 is the
//! cheap pooled front end (client does almost no work, descriptor least
//! invariant), the last layer is classic CoIC (client pays the full
//! descriptor cost, best matching). Reports the client/cloud compute
//! split, descriptor size, hit ratio and accuracy per layer.
//!
//! Run with: `cargo run --release -p coic-bench --bin ext_layercache`

use coic_cache::PolicyKind;
use coic_core::layercache::LayerCache;
use coic_core::ComputeConfig;
use coic_vision::{ObjectClass, PrototypeClassifier, SceneGenerator, SimNet, ViewParams};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn main() {
    let gen = SceneGenerator::new(64);
    let net = SimNet::default_net();
    let classes: Vec<_> = (0..24).map(ObjectClass).collect();
    let mut rng = StdRng::seed_from_u64(17);
    let clf = PrototypeClassifier::train(&net, &gen, &classes, 5, 0.15, 6.0, &mut rng);

    // The observation stream: co-located users re-sighting a Zipf-ish set
    // of objects under viewpoint jitter.
    let observations: Vec<_> = (0..300)
        .map(|_| {
            // Squaring a uniform draw skews popularity toward low ranks.
            let rank = (rng.random::<f64>().powi(2) * classes.len() as f64) as usize;
            let c = classes[rank.min(classes.len() - 1)];
            let v = ViewParams::jittered(&mut rng, 0.15, 6.0);
            (c, gen.observe(c, &v, &mut rng))
        })
        .collect();

    println!("Ext E — layer-cache sweep (300 observations, 24 objects, wide jitter)\n");
    println!(
        "{:>6} | {:>10} {:>10} {:>7} | {:>6} {:>9}",
        "layer", "client-ms", "cloud-ms", "descr", "hit%", "accuracy"
    );
    coic_bench::rule(60);
    for layer in 0..=net.num_layers() {
        let mut lc = LayerCache::new(
            layer,
            0.35,
            64 << 20,
            PolicyKind::Lru,
            ComputeConfig::default(),
        );
        let mut client_ns = 0u64;
        let mut cloud_ns = 0u64;
        let mut correct = 0u64;
        let mut descr = 0u64;
        for (i, (truth, img)) in observations.iter().enumerate() {
            let out = lc.process(img, &clf, i as u64);
            client_ns += out.client_ns;
            cloud_ns += out.cloud_ns;
            descr = out.descriptor_bytes;
            if out.result.label == truth.0 {
                correct += 1;
            }
        }
        let n = observations.len() as f64;
        let stats = lc.stats();
        println!(
            "{:>6} | {:>7.1} ms {:>7.1} ms {:>5} B | {:>5.1}% {:>8.1}%",
            layer,
            client_ns as f64 / n / 1e6,
            cloud_ns as f64 / n / 1e6,
            descr,
            stats.hit_ratio() * 100.0,
            correct as f64 / n * 100.0
        );
    }
    coic_bench::rule(60);
    println!("layer 0 = pooled front end … last layer = classic CoIC descriptor");
    println!("\nShipping an earlier layer saves client compute and shifts work to");
    println!("the cloud on misses; the hit ratio (and the compute saved per hit)");
    println!("determines the sweet spot.");
}

//! Network topology: named nodes joined by directed links, with static
//! shortest-path routing for transparent store-and-forward relaying.
//!
//! The paper's testbed is a three-node chain (mobile client — edge — cloud);
//! [`Topology::chain`] builds exactly that, but arbitrary graphs (e.g. the
//! multi-edge cooperative experiments) are supported.

use crate::link::{Link, LinkParams};
use std::collections::{HashMap, VecDeque};

/// Identifier of a node within one [`Topology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A graph of nodes and directed links.
pub struct Topology {
    names: Vec<String>,
    links: HashMap<(NodeId, NodeId), Link>,
    /// routes[src][dst] = next hop on a shortest path, or None.
    routes: Vec<Vec<Option<NodeId>>>,
    routes_dirty: bool,
}

impl Default for Topology {
    fn default() -> Self {
        Self::new()
    }
}

impl Topology {
    /// Create an empty topology.
    pub fn new() -> Self {
        Topology {
            names: Vec::new(),
            links: HashMap::new(),
            routes: Vec::new(),
            routes_dirty: false,
        }
    }

    /// Add a node and return its id.
    pub fn add_node(&mut self, name: impl Into<String>) -> NodeId {
        let id = NodeId(self.names.len());
        self.names.push(name.into());
        self.routes_dirty = true;
        id
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.names.len()
    }

    /// Name of a node.
    pub fn name(&self, id: NodeId) -> &str {
        &self.names[id.0]
    }

    /// Look a node up by name.
    pub fn find(&self, name: &str) -> Option<NodeId> {
        self.names.iter().position(|n| n == name).map(NodeId)
    }

    /// Install a one-directional link from `a` to `b`.
    pub fn connect_oneway(&mut self, a: NodeId, b: NodeId, params: LinkParams) {
        assert!(a != b, "self-links are not allowed");
        self.links.insert((a, b), Link::new(params));
        self.routes_dirty = true;
    }

    /// Install a duplex link (both directions share parameters).
    pub fn connect(&mut self, a: NodeId, b: NodeId, params: LinkParams) {
        self.connect_oneway(a, b, params);
        self.connect_oneway(b, a, params);
    }

    /// Install a duplex link with asymmetric parameters
    /// (`ab` for a→b, `ba` for b→a) — e.g. an asymmetric uplink.
    pub fn connect_asym(&mut self, a: NodeId, b: NodeId, ab: LinkParams, ba: LinkParams) {
        self.connect_oneway(a, b, ab);
        self.connect_oneway(b, a, ba);
    }

    /// Direct link from `a` to `b`, if one exists.
    pub fn link(&self, a: NodeId, b: NodeId) -> Option<&Link> {
        self.links.get(&(a, b))
    }

    /// Mutable access to the direct link from `a` to `b`.
    pub fn link_mut(&mut self, a: NodeId, b: NodeId) -> Option<&mut Link> {
        self.links.get_mut(&(a, b))
    }

    /// Reshape an existing link in place (models live `tc` changes).
    ///
    /// # Panics
    /// Panics if the link does not exist.
    pub fn reshape(&mut self, a: NodeId, b: NodeId, params: LinkParams) {
        self.links
            .get_mut(&(a, b))
            .unwrap_or_else(|| panic!("no link {a}->{b}"))
            .reshape(params);
    }

    fn rebuild_routes(&mut self) {
        let n = self.names.len();
        let mut adj: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        // Deterministic neighbour order: sort link keys.
        let mut keys: Vec<_> = self.links.keys().copied().collect();
        keys.sort();
        for (a, b) in keys {
            adj[a.0].push(b);
        }
        self.routes = vec![vec![None; n]; n];
        for src in 0..n {
            // BFS from src, recording first hop toward each destination.
            let mut first_hop: Vec<Option<NodeId>> = vec![None; n];
            let mut visited = vec![false; n];
            let mut q = VecDeque::new();
            visited[src] = true;
            q.push_back(NodeId(src));
            while let Some(u) = q.pop_front() {
                for &v in &adj[u.0] {
                    if !visited[v.0] {
                        visited[v.0] = true;
                        first_hop[v.0] = if u.0 == src { Some(v) } else { first_hop[u.0] };
                        q.push_back(v);
                    }
                }
            }
            self.routes[src] = first_hop;
        }
        self.routes_dirty = false;
    }

    /// Next hop from `src` toward `dst` along a shortest path, or `None`
    /// if `dst` is unreachable. `src == dst` yields `None`.
    pub fn next_hop(&mut self, src: NodeId, dst: NodeId) -> Option<NodeId> {
        if self.routes_dirty {
            self.rebuild_routes();
        }
        if src == dst {
            return None;
        }
        self.routes[src.0][dst.0]
    }

    /// Build the paper's three-node chain: client —(access)— edge —(wan)— cloud.
    /// Returns `(client, edge, cloud)`.
    pub fn chain(access: LinkParams, wan: LinkParams) -> (Topology, NodeId, NodeId, NodeId) {
        let mut t = Topology::new();
        let client = t.add_node("client");
        let edge = t.add_node("edge");
        let cloud = t.add_node("cloud");
        t.connect(client, edge, access);
        t.connect(edge, cloud, wan);
        (t, client, edge, cloud)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn p() -> LinkParams {
        LinkParams::mbps_ms(100.0, 1)
    }

    #[test]
    fn chain_layout() {
        let (t, c, e, s) = Topology::chain(p(), p());
        assert_eq!(t.node_count(), 3);
        assert_eq!(t.name(c), "client");
        assert_eq!(t.name(e), "edge");
        assert_eq!(t.name(s), "cloud");
        assert!(t.link(c, e).is_some());
        assert!(t.link(e, s).is_some());
        assert!(t.link(c, s).is_none());
    }

    #[test]
    fn find_by_name() {
        let (t, _, e, _) = Topology::chain(p(), p());
        assert_eq!(t.find("edge"), Some(e));
        assert_eq!(t.find("nope"), None);
    }

    #[test]
    fn routing_over_chain() {
        let (mut t, c, e, s) = Topology::chain(p(), p());
        assert_eq!(t.next_hop(c, s), Some(e));
        assert_eq!(t.next_hop(c, e), Some(e));
        assert_eq!(t.next_hop(s, c), Some(e));
        assert_eq!(t.next_hop(c, c), None);
    }

    #[test]
    fn routing_unreachable() {
        let mut t = Topology::new();
        let a = t.add_node("a");
        let b = t.add_node("b");
        let island = t.add_node("island");
        t.connect(a, b, p());
        assert_eq!(t.next_hop(a, island), None);
        assert_eq!(t.next_hop(island, a), None);
    }

    #[test]
    fn routing_prefers_shortest_path() {
        // a - b - d  and  a - c - e - d : next hop from a to d must be b.
        let mut t = Topology::new();
        let a = t.add_node("a");
        let b = t.add_node("b");
        let c = t.add_node("c");
        let d = t.add_node("d");
        let e = t.add_node("e");
        t.connect(a, b, p());
        t.connect(b, d, p());
        t.connect(a, c, p());
        t.connect(c, e, p());
        t.connect(e, d, p());
        assert_eq!(t.next_hop(a, d), Some(b));
    }

    #[test]
    fn asymmetric_links_distinct() {
        let mut t = Topology::new();
        let a = t.add_node("a");
        let b = t.add_node("b");
        let up = LinkParams::mbps_ms(10.0, 5);
        let down = LinkParams::mbps_ms(100.0, 5);
        t.connect_asym(a, b, up, down);
        assert_eq!(t.link(a, b).unwrap().params().bandwidth_bps, 10_000_000);
        assert_eq!(t.link(b, a).unwrap().params().bandwidth_bps, 100_000_000);
    }

    #[test]
    fn reshape_in_place() {
        let (mut t, c, e, _) = Topology::chain(p(), p());
        t.reshape(c, e, LinkParams::mbps_ms(5.0, 20));
        let l = t.link(c, e).unwrap();
        assert_eq!(l.params().bandwidth_bps, 5_000_000);
        assert_eq!(l.params().propagation, SimDuration::from_millis(20));
    }

    #[test]
    #[should_panic(expected = "self-links")]
    fn self_link_rejected() {
        let mut t = Topology::new();
        let a = t.add_node("a");
        t.connect_oneway(a, a, p());
    }
}

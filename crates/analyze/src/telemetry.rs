//! Telemetry-registry: every counter/gauge/histogram/event name literal
//! in the workspace must be declared once in a checked-in registry
//! (`analyze/telemetry.toml`), declarations must be live, and declared
//! counter↔event pairs must be bumped and emitted from the same files.
//!
//! This is the PR 8 drift class made structural: `cluster.peer_probe`
//! was counted in one place and its `decision.peer_probe` trace event
//! emitted in another, and the two silently disagreed. With the
//! registry, adding a telemetry name without declaring it fails the
//! lint, deleting the last use of a declared name fails the lint, and a
//! file that bumps a paired counter without emitting its event (or vice
//! versa) fails the lint at the drifting site.

use std::collections::BTreeSet;

use crate::checks::test_spans;
use crate::lexer::Lexed;
use crate::rules::Rule;
use crate::toml;
use crate::Finding;

/// One `[[metric]]` declaration.
#[derive(Debug)]
pub(crate) struct MetricDecl {
    pub name: String,
    /// `counter` / `gauge` / `hist` / `event` — documentation plus a
    /// guard against declaring the same name twice with different kinds.
    pub kind: String,
    /// Paired trace-event name (counters only).
    pub event: Option<String>,
    /// The bump method whose call marks a file as counting this metric.
    pub via: Option<String>,
    /// Files exempt from the pair check (policy layers that count where
    /// no driver event exists; the trace verifier covers them at runtime).
    pub pair_exempt: Vec<String>,
    /// Name is constructed at runtime (format strings); skip liveness.
    pub dynamic: bool,
    /// Header line in the registry file.
    pub line: u32,
}

/// The parsed registry file.
#[derive(Debug)]
pub(crate) struct Registry {
    pub prefixes: Vec<String>,
    pub metrics: Vec<MetricDecl>,
}

pub(crate) fn parse_registry(source: &str) -> Result<Registry, String> {
    let doc = toml::parse(source)?;
    let prefixes = doc
        .root
        .get("prefixes")
        .and_then(toml::Value::as_str_array)
        .map(<[String]>::to_vec)
        .ok_or("registry must declare a top-level `prefixes` string array")?;
    if prefixes.is_empty() {
        return Err("`prefixes` must not be empty".into());
    }
    let tables = doc.tables.get("metric").map(Vec::as_slice).unwrap_or(&[]);
    let lines = doc
        .table_lines
        .get("metric")
        .map(Vec::as_slice)
        .unwrap_or(&[]);
    let mut metrics = Vec::new();
    let mut seen = BTreeSet::new();
    for (i, (table, line)) in tables.iter().zip(lines).enumerate() {
        let context = |e: String| format!("[[metric]] #{}: {e}", i + 1);
        let name = table
            .get("name")
            .and_then(toml::Value::as_str)
            .ok_or_else(|| context("missing string key `name`".into()))?
            .to_string();
        if !seen.insert(name.clone()) {
            return Err(context(format!("duplicate declaration of `{name}`")));
        }
        let kind = table
            .get("kind")
            .and_then(toml::Value::as_str)
            .ok_or_else(|| context("missing string key `kind`".into()))?
            .to_string();
        if !["counter", "gauge", "hist", "event"].contains(&kind.as_str()) {
            return Err(context(format!("unknown metric kind `{kind}`")));
        }
        let event = table
            .get("event")
            .map(|v| {
                v.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| context("key `event` must be a string".into()))
            })
            .transpose()?;
        let via = table
            .get("via")
            .map(|v| {
                v.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| context("key `via` must be a string".into()))
            })
            .transpose()?;
        if event.is_some() != via.is_some() {
            return Err(context(format!(
                "`{name}`: `event` and `via` must be declared together"
            )));
        }
        let pair_exempt = match table.get("pair-exempt") {
            None => Vec::new(),
            Some(v) => v
                .as_str_array()
                .map(<[String]>::to_vec)
                .ok_or_else(|| context("key `pair-exempt` must be a string array".into()))?,
        };
        let dynamic = match table.get("dynamic") {
            None => false,
            Some(toml::Value::Bool(b)) => *b,
            Some(_) => return Err(context("key `dynamic` must be a boolean".into())),
        };
        metrics.push(MetricDecl {
            name,
            kind,
            event,
            via,
            pair_exempt,
            dynamic,
            line: *line as u32,
        });
    }
    if metrics.is_empty() {
        return Err("registry declares no [[metric]] tables".into());
    }
    Ok(Registry { prefixes, metrics })
}

/// Is this string literal shaped like a telemetry name under a declared
/// prefix? (`cluster.peer_probe`: dotted, lowercase word segments.)
fn is_telemetry_name(text: &str, prefixes: &[String]) -> bool {
    let mut segments = text.split('.');
    let Some(first) = segments.next() else {
        return false;
    };
    if !prefixes.iter().any(|p| p == first) {
        return false;
    }
    let mut rest = 0usize;
    for seg in segments {
        if seg.is_empty()
            || !seg
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
        {
            return false;
        }
        rest += 1;
    }
    rest > 0
}

/// Run the registry pass over the matched files.
pub(crate) fn run(
    rule: &Rule,
    registry: &Registry,
    registry_rel: &str,
    files: &[(&str, &Lexed)],
    out: &mut Vec<Finding>,
) {
    let declared: BTreeSet<&str> = registry.metrics.iter().map(|m| m.name.as_str()).collect();
    let mut used: BTreeSet<&str> = BTreeSet::new();

    for (rel, lexed) in files {
        let tokens = &lexed.tokens;
        let tests = test_spans(tokens);
        let in_test = |idx: usize| tests.iter().any(|&(s, e)| idx >= s && idx < e);
        for (at, tok) in tokens.iter().enumerate() {
            let Some(content) = tok.literal.as_deref() else {
                continue;
            };
            if declared.contains(content) {
                used.insert(
                    registry
                        .metrics
                        .iter()
                        .find(|m| m.name == content)
                        .expect("declared")
                        .name
                        .as_str(),
                );
                continue;
            }
            if !in_test(at) && is_telemetry_name(content, &registry.prefixes) {
                out.push(Finding {
                    file: rel.to_string(),
                    line: tok.line,
                    rule: rule.id.clone(),
                    message: format!(
                        "telemetry name `{content}` is not declared in {registry_rel}: {}",
                        rule.reason
                    ),
                });
            }
        }
    }

    // Liveness: a declaration nothing references is a registry that has
    // drifted from the code — as dangerous as the reverse.
    for m in &registry.metrics {
        if !m.dynamic && !used.contains(m.name.as_str()) {
            out.push(Finding {
                file: registry_rel.to_string(),
                line: m.line,
                rule: rule.id.clone(),
                message: format!(
                    "declared {} `{}` is never referenced by any matched file \
                     (remove it or mark it `dynamic = true`)",
                    m.kind, m.name
                ),
            });
        }
    }

    // Pair drift: a file bumping the counter must emit the event, and a
    // file emitting the event must bump the counter.
    for m in &registry.metrics {
        let (Some(event), Some(via)) = (m.event.as_deref(), m.via.as_deref()) else {
            continue;
        };
        for (rel, lexed) in files {
            if m.pair_exempt
                .iter()
                .any(|g| crate::glob::glob_match(g, rel))
            {
                continue;
            }
            let tokens = &lexed.tokens;
            // The file defining the bump method is the stats layer, not a
            // call site.
            let defines = tokens
                .windows(2)
                .any(|w| w[0].text == "fn" && w[1].text == via);
            if defines {
                continue;
            }
            let tests = test_spans(tokens);
            let in_test = |idx: usize| tests.iter().any(|&(s, e)| idx >= s && idx < e);
            let mut bump: Option<u32> = None;
            let mut emit: Option<u32> = None;
            for at in 0..tokens.len() {
                if in_test(at) {
                    continue;
                }
                let t = &tokens[at];
                if t.text == via
                    && at > 0
                    && tokens[at - 1].text == "."
                    && tokens.get(at + 1).map(|t| t.text.as_str()) == Some("(")
                {
                    bump.get_or_insert(t.line);
                }
                if t.literal.as_deref() == Some(event) {
                    emit.get_or_insert(t.line);
                }
            }
            match (bump, emit) {
                (Some(line), None) => out.push(Finding {
                    file: rel.to_string(),
                    line,
                    rule: rule.id.clone(),
                    message: format!(
                        "`{}` bumped via `.{via}()` but its paired event `{event}` \
                         is never emitted in this file: {}",
                        m.name, rule.reason
                    ),
                }),
                (None, Some(line)) => out.push(Finding {
                    file: rel.to_string(),
                    line,
                    rule: rule.id.clone(),
                    message: format!(
                        "event `{event}` emitted but its paired counter `{}` \
                         is never bumped via `.{via}()` in this file: {}",
                        m.name, rule.reason
                    ),
                }),
                _ => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::rules::parse_rules;

    const REGISTRY: &str = r#"
version = 1
prefixes = ["cluster", "decision"]

[[metric]]
name = "cluster.peer_probe"
kind = "counter"
event = "decision.peer_probe"
via = "count_probe"

[[metric]]
name = "decision.peer_probe"
kind = "event"

[[metric]]
name = "cluster.dyn_family"
kind = "counter"
dynamic = true
"#;

    fn rule() -> Rule {
        parse_rules(
            "[[rule]]\nid = \"telemetry\"\nkind = \"telemetry-registry\"\n\
             registry = \"analyze/telemetry.toml\"\nreason = \"r\"\npaths = [\"**\"]",
        )
        .unwrap()
        .remove(0)
    }

    fn check(files: &[(&str, &str)]) -> Vec<(String, u32, String)> {
        let registry = parse_registry(REGISTRY).unwrap();
        let lexed: Vec<_> = files.iter().map(|(p, s)| (*p, lex(s))).collect();
        let refs: Vec<(&str, &Lexed)> = lexed.iter().map(|(p, l)| (*p, l)).collect();
        let mut out = Vec::new();
        run(
            &rule(),
            &registry,
            "analyze/telemetry.toml",
            &refs,
            &mut out,
        );
        out.into_iter()
            .map(|f| (f.file, f.line, f.message))
            .collect()
    }

    #[test]
    fn declared_and_paired_usage_is_clean() {
        let src = "\
fn probe(&mut self) {
    self.stats.count_probe();
    self.tel.event(\"decision.peer_probe\");
}
fn publish(&self) { reg.counter_add(\"cluster.peer_probe\", n); }
";
        assert_eq!(check(&[("a.rs", src)]), []);
    }

    #[test]
    fn undeclared_name_is_flagged_but_prose_is_not() {
        let src = "\
fn f(&self) { self.tel.event(\"decision.peer_vanish\"); }
fn g(&self) { log(\"cluster probe failed\"); }
fn h(&self) { log(\"unrelated.dotted.name\"); }
";
        // Keep the declared names referenced so liveness stays quiet.
        let uses = "fn u() { e(\"decision.peer_probe\"); c(\"cluster.peer_probe\"); \
                    b.count_probe(); }";
        let got = check(&[("a.rs", src), ("b.rs", uses)]);
        assert_eq!(got.len(), 1, "{got:?}");
        assert!(got[0].2.contains("`decision.peer_vanish`"), "{got:?}");
        assert_eq!(got[0].1, 1);
    }

    #[test]
    fn dead_declarations_are_flagged_at_the_registry_line() {
        let got = check(&[("a.rs", "fn f() {}")]);
        // Both non-dynamic declarations are dead; the dynamic one is not.
        assert_eq!(got.len(), 2, "{got:?}");
        assert!(got.iter().all(|(f, _, _)| f == "analyze/telemetry.toml"));
        assert!(got.iter().any(|(_, _, m)| m.contains("cluster.peer_probe")));
        assert!(!got.iter().any(|(_, _, m)| m.contains("dyn_family")));
    }

    #[test]
    fn pair_drift_is_flagged_in_both_directions() {
        let bump_only = "fn f(&mut self) { self.stats.count_probe(); }";
        let emit_only = "fn g(&self) { self.tel.event(\"decision.peer_probe\"); }";
        let uses = "fn u() { c(\"cluster.peer_probe\"); }";
        let got = check(&[
            ("bump.rs", bump_only),
            ("emit.rs", emit_only),
            ("u.rs", uses),
        ]);
        assert_eq!(got.len(), 2, "{got:?}");
        assert!(got
            .iter()
            .any(|(f, _, m)| f == "bump.rs" && m.contains("never emitted")));
        assert!(got
            .iter()
            .any(|(f, _, m)| f == "emit.rs" && m.contains("never bumped")));
    }

    #[test]
    fn stats_definitions_and_tests_are_exempt_from_pairing() {
        let defs = "\
impl Stats { pub fn count_probe(&self) { self.n.fetch_add(1, O); } }
#[cfg(test)]
mod tests {
    #[test]
    fn t() { s.count_probe(); }
}
";
        let uses = "fn u() { c(\"cluster.peer_probe\"); e(\"decision.peer_probe\"); \
                    b.count_probe(); }";
        assert_eq!(check(&[("stats.rs", defs), ("u.rs", uses)]), []);
    }

    #[test]
    fn registry_schema_is_strict() {
        assert!(parse_registry("prefixes = []").is_err());
        let err =
            parse_registry("prefixes = [\"a\"]\n[[metric]]\nname = \"a.b\"\nkind = \"countr\"")
                .unwrap_err();
        assert!(err.contains("unknown metric kind"), "{err}");
        let err = parse_registry(
            "prefixes = [\"a\"]\n[[metric]]\nname = \"a.b\"\nkind = \"counter\"\nvia = \"c\"",
        )
        .unwrap_err();
        assert!(err.contains("together"), "{err}");
        let err = parse_registry(
            "prefixes = [\"a\"]\n[[metric]]\nname = \"a.b\"\nkind = \"counter\"\n\
             [[metric]]\nname = \"a.b\"\nkind = \"event\"",
        )
        .unwrap_err();
        assert!(err.contains("duplicate"), "{err}");
    }
}

//! Virtual time primitives for the discrete-event simulator.
//!
//! The simulator never reads a wall clock: all timestamps are
//! [`SimTime`] values (nanoseconds since simulation start) advanced only by
//! the event loop, which makes every run bit-for-bit reproducible.

use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};
use serde::{Deserialize, Serialize};

/// A point in virtual time, in nanoseconds since simulation start.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of virtual time, in nanoseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Raw nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Time since start expressed in (fractional) milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Time since start expressed in (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration elapsed since `earlier`. Saturates at zero if `earlier` is
    /// in the future.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition of a duration; `None` on overflow.
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// Largest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Construct from fractional seconds, rounding to the nearest
    /// nanosecond and saturating for non-finite or negative input.
    pub fn from_secs_f64(s: f64) -> Self {
        if s.is_nan() || s <= 0.0 {
            return SimDuration::ZERO;
        }
        let ns = s * 1e9;
        if ns >= u64::MAX as f64 {
            SimDuration::MAX
        } else {
            SimDuration(ns.round() as u64)
        }
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Convert a wall-clock [`std::time::Duration`], saturating at
    /// [`SimDuration::MAX`]. Bridges engine configs (std durations) into
    /// virtual time.
    pub fn from_std(d: std::time::Duration) -> SimDuration {
        let ns = d.as_nanos();
        if ns >= u64::MAX as u128 {
            SimDuration::MAX
        } else {
            SimDuration(ns as u64)
        }
    }

    /// Convert to a wall-clock [`std::time::Duration`].
    pub const fn to_std(self) -> std::time::Duration {
        std::time::Duration::from_nanos(self.0)
    }

    /// Fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Multiply by an integer factor, saturating on overflow.
    pub fn saturating_mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(k))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        assert!(
            self.0 >= rhs.0,
            "SimTime subtraction underflow: {self:?} - {rhs:?}"
        );
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        assert!(
            self.0 >= rhs.0,
            "SimDuration subtraction underflow: {self:?} - {rhs:?}"
        );
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_units_agree() {
        assert_eq!(SimTime::from_secs(1), SimTime::from_millis(1_000));
        assert_eq!(SimTime::from_millis(1), SimTime::from_micros(1_000));
        assert_eq!(SimTime::from_micros(1), SimTime::from_nanos(1_000));
        assert_eq!(SimDuration::from_secs(2).as_nanos(), 2_000_000_000);
    }

    #[test]
    fn time_plus_duration() {
        let t = SimTime::from_millis(5) + SimDuration::from_millis(7);
        assert_eq!(t, SimTime::from_millis(12));
    }

    #[test]
    fn time_difference() {
        let a = SimTime::from_millis(10);
        let b = SimTime::from_millis(4);
        assert_eq!(a - b, SimDuration::from_millis(6));
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn time_difference_underflow_panics() {
        let _ = SimTime::from_millis(1) - SimTime::from_millis(2);
    }

    #[test]
    fn saturating_since_clamps() {
        let a = SimTime::from_millis(1);
        let b = SimTime::from_millis(2);
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
        assert_eq!(b.saturating_since(a), SimDuration::from_millis(1));
    }

    #[test]
    fn from_secs_f64_handles_edge_cases() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY), SimDuration::MAX);
        assert_eq!(
            SimDuration::from_secs_f64(0.001),
            SimDuration::from_millis(1)
        );
    }

    #[test]
    fn duration_scaling() {
        assert_eq!(
            SimDuration::from_millis(3) * 4,
            SimDuration::from_millis(12)
        );
        assert_eq!(
            SimDuration::from_millis(12) / 4,
            SimDuration::from_millis(3)
        );
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(format!("{}", SimDuration::from_nanos(12)), "12ns");
        assert_eq!(format!("{}", SimDuration::from_micros(12)), "12.000us");
        assert_eq!(format!("{}", SimDuration::from_millis(12)), "12.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(12)), "12.000s");
    }

    #[test]
    fn saturating_arithmetic_does_not_wrap() {
        let m = SimTime::MAX + SimDuration::from_secs(1);
        assert_eq!(m, SimTime::MAX);
        assert_eq!(SimDuration::MAX * 2, SimDuration::MAX);
    }
}

//! Cubemap rendering and equirectangular projection.
//!
//! Cloud-VR systems render the world around the viewer into a panoramic
//! frame; this module does that for real: rasterize the scene into the six
//! faces of a cubemap, then resample into the 2:1 equirectangular layout
//! that [`crate::panorama::Panorama`] (and CoIC's panorama cache) uses.

use crate::math::Vec3;
use crate::panorama::Panorama;
use crate::raster::Framebuffer;
use crate::scene::{Camera, Scene};

/// Face order: +x, -x, +y, -y, +z, -z.
pub const FACES: usize = 6;

fn face_basis(face: usize) -> (Vec3, Vec3) {
    // (forward, up) per face, in a right-handed world (y up).
    match face {
        0 => (Vec3::new(1.0, 0.0, 0.0), Vec3::new(0.0, 1.0, 0.0)),
        1 => (Vec3::new(-1.0, 0.0, 0.0), Vec3::new(0.0, 1.0, 0.0)),
        2 => (Vec3::new(0.0, 1.0, 0.0), Vec3::new(0.0, 0.0, -1.0)),
        3 => (Vec3::new(0.0, -1.0, 0.0), Vec3::new(0.0, 0.0, 1.0)),
        4 => (Vec3::new(0.0, 0.0, 1.0), Vec3::new(0.0, 1.0, 0.0)),
        _ => (Vec3::new(0.0, 0.0, -1.0), Vec3::new(0.0, 1.0, 0.0)),
    }
}

/// Rasterize `scene` from `eye` into six `face_size × face_size` cubemap
/// faces (90° field of view each).
pub fn render_cubemap(scene: &Scene, eye: Vec3, face_size: u32) -> Vec<Framebuffer> {
    (0..FACES)
        .map(|face| {
            let (fwd, up) = face_basis(face);
            let camera = Camera {
                eye,
                target: eye + fwd,
                up,
                fov_y: std::f32::consts::FRAC_PI_2,
                near: 0.05,
                far: 1000.0,
            };
            let mut fb = Framebuffer::new(face_size, face_size);
            scene.render(&camera, &mut fb);
            fb
        })
        .collect()
}

/// Sample the cubemap in direction `d` (unit-ish vector).
pub fn sample_cubemap(faces: &[Framebuffer], d: Vec3) -> u8 {
    assert_eq!(faces.len(), FACES, "need six faces");
    let (ax, ay, az) = (d.x.abs(), d.y.abs(), d.z.abs());
    // Select the dominant axis, then project onto that face.
    let (face, u, v) = if ax >= ay && ax >= az {
        if d.x > 0.0 {
            (0, -d.z / ax, d.y / ax)
        } else {
            (1, d.z / ax, d.y / ax)
        }
    } else if ay >= ax && ay >= az {
        if d.y > 0.0 {
            (2, d.x / ay, -d.z / ay)
        } else {
            (3, d.x / ay, d.z / ay)
        }
    } else if d.z > 0.0 {
        (4, d.x / az, d.y / az)
    } else {
        (5, -d.x / az, d.y / az)
    };
    let fb = &faces[face];
    let size = fb.width() as f32;
    // u, v ∈ [-1, 1] → pixel coordinates (v up → pixel y down).
    let px = ((u + 1.0) * 0.5 * size).clamp(0.0, size - 1.0) as u32;
    let py = ((1.0 - v) * 0.5 * size).clamp(0.0, size - 1.0) as u32;
    fb.get(px, py)
}

/// Resample a cubemap into an equirectangular panorama of the given height
/// (width = 2 × height).
pub fn cubemap_to_equirect(faces: &[Framebuffer], height: u32) -> Panorama {
    assert!(height >= 8, "panorama too small");
    let width = height * 2;
    let mut pixels = Vec::with_capacity((width * height) as usize);
    for y in 0..height {
        // Elevation from the +y pole (0) to the -y pole (π).
        let elev = (y as f64 + 0.5) / height as f64 * std::f64::consts::PI;
        for x in 0..width {
            let azim = (x as f64 + 0.5) / width as f64 * std::f64::consts::TAU;
            let d = Vec3::new(
                (elev.sin() * azim.cos()) as f32,
                elev.cos() as f32,
                (elev.sin() * azim.sin()) as f32,
            );
            pixels.push(sample_cubemap(faces, d));
        }
    }
    Panorama::from_raw(width, height, pixels)
}

/// Render `scene` from `eye` straight to an equirectangular panorama —
/// the cloud-side panorama generation CoIC caches, done with the real
/// rasterizer rather than procedural synthesis.
pub fn render_equirect(scene: &Scene, eye: Vec3, height: u32, face_size: u32) -> Panorama {
    let faces = render_cubemap(scene, eye, face_size);
    cubemap_to_equirect(&faces, height)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::math::Mat4;
    use crate::procgen;

    fn sphere_scene(offset: Vec3) -> Scene {
        let mut scene = Scene::new();
        let id = scene.add_model(procgen::icosphere(2));
        scene.add_instance(id, Mat4::translate(offset));
        scene
    }

    #[test]
    fn object_ahead_lands_at_equirect_center_line() {
        // A sphere on the +x axis: azimuth 0 column, equator row.
        let scene = sphere_scene(Vec3::new(4.0, 0.0, 0.0));
        let pano = render_equirect(&scene, Vec3::ZERO, 64, 64);
        // Bright at (azimuth 0, equator) which is column 0/last, row h/2.
        let mid = pano.bytes()[(32 * pano.width()) as usize];
        assert!(mid > 0, "sphere should be visible at the seam center");
        // Opposite direction (-x = azimuth π, middle column): empty.
        let opposite = pano.bytes()[(32 * pano.width() + pano.width() / 2) as usize];
        assert_eq!(opposite, 0, "nothing behind the viewer");
    }

    #[test]
    fn object_above_lands_at_top_rows() {
        let scene = sphere_scene(Vec3::new(0.0, 4.0, 0.0));
        let pano = render_equirect(&scene, Vec3::ZERO, 64, 64);
        let top_row_sum: u32 = (0..pano.width())
            .map(|x| pano.bytes()[x as usize] as u32)
            .sum();
        let bottom_row_sum: u32 = (0..pano.width())
            .map(|x| pano.bytes()[((pano.height() - 1) * pano.width() + x) as usize] as u32)
            .sum();
        assert!(top_row_sum > 0, "sphere above must light the top rows");
        assert_eq!(bottom_row_sum, 0, "nothing below");
    }

    #[test]
    fn rendering_is_deterministic() {
        let scene = sphere_scene(Vec3::new(3.0, 0.5, 1.0));
        let a = render_equirect(&scene, Vec3::ZERO, 32, 32);
        let b = render_equirect(&scene, Vec3::ZERO, 32, 32);
        assert_eq!(a, b);
    }

    #[test]
    fn cubemap_face_count_and_size() {
        let scene = sphere_scene(Vec3::new(3.0, 0.0, 0.0));
        let faces = render_cubemap(&scene, Vec3::ZERO, 16);
        assert_eq!(faces.len(), 6);
        assert!(faces.iter().all(|f| f.width() == 16 && f.height() == 16));
        // Only the +x face sees the sphere.
        assert!(faces[0].coverage() > 0.0);
        assert_eq!(faces[1].coverage(), 0.0);
    }

    #[test]
    fn sample_directions_pick_correct_faces() {
        let scene = sphere_scene(Vec3::new(3.0, 0.0, 0.0));
        let faces = render_cubemap(&scene, Vec3::ZERO, 32);
        // Straight +x hits the sphere; straight -x hits nothing.
        assert!(sample_cubemap(&faces, Vec3::new(1.0, 0.0, 0.0)) > 0);
        assert_eq!(sample_cubemap(&faces, Vec3::new(-1.0, 0.0, 0.0)), 0);
        assert_eq!(sample_cubemap(&faces, Vec3::new(0.0, 1.0, 0.0)), 0);
    }

    #[test]
    fn equirect_crop_sees_the_rendered_object() {
        // End-to-end: render scene → equirect → viewport crop via the same
        // path the VR client uses.
        let scene = sphere_scene(Vec3::new(4.0, 0.0, 0.0));
        let pano = render_equirect(&scene, Vec3::ZERO, 64, 64);
        // Looking toward +x (azimuth 0).
        let view = pano.crop_viewport(0.0, 0.0, 1.2, 32, 32);
        assert!(view.iter().any(|&p| p > 0), "crop toward object is lit");
        // Looking away.
        let away = pano.crop_viewport(std::f64::consts::PI, 0.0, 1.2, 32, 32);
        assert!(
            away.iter().all(|&p| p == 0),
            "crop away from object is dark"
        );
    }
}

//! Synthetic observation generator.
//!
//! The paper's redundancy insight is that *co-located users photograph the
//! same objects from slightly different angles* (two safe-driving apps both
//! see the stop sign at a crossroads). This module reproduces exactly that
//! statistical structure: each [`ObjectClass`] has a deterministic
//! procedural appearance, and an observation renders it under a
//! [`ViewParams`] perturbation (viewing angle, scale, illumination, sensor
//! noise). Small perturbations of the same class produce images whose
//! SimNet embeddings stay close; different classes land far apart — which
//! is the property CoIC's distance-threshold cache lookup relies on.

use crate::image::Image;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// Identity of a recognizable object (e.g. "the stop sign at crossroads 7").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ObjectClass(pub u32);

/// Rendering-time perturbation of an observation.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ViewParams {
    /// In-plane viewing angle in radians.
    pub angle: f64,
    /// Zoom factor (1.0 = canonical framing).
    pub scale: f64,
    /// Illumination gain (1.0 = canonical lighting).
    pub illumination: f64,
    /// Standard deviation of additive Gaussian sensor noise, in intensity
    /// levels (0–255 scale).
    pub noise_sigma: f64,
    /// Horizontal translation, in pixels of the canonical frame.
    pub dx: f64,
    /// Vertical translation, in pixels of the canonical frame.
    pub dy: f64,
}

impl Default for ViewParams {
    fn default() -> Self {
        ViewParams {
            angle: 0.0,
            scale: 1.0,
            illumination: 1.0,
            noise_sigma: 0.0,
            dx: 0.0,
            dy: 0.0,
        }
    }
}

impl ViewParams {
    /// Draw a random small perturbation, modelling two nearby users looking
    /// at the same object: up to ±`angle_spread` rad rotation, ±10% scale,
    /// ±15% illumination, and a couple of pixels of translation.
    pub fn jittered(rng: &mut StdRng, angle_spread: f64, noise_sigma: f64) -> Self {
        ViewParams {
            angle: rng.random_range(-angle_spread..=angle_spread),
            scale: rng.random_range(0.9..=1.1),
            illumination: rng.random_range(0.85..=1.15),
            noise_sigma,
            dx: rng.random_range(-2.0..=2.0),
            dy: rng.random_range(-2.0..=2.0),
        }
    }
}

/// Procedural appearance parameters for one class, derived from its id.
struct Appearance {
    /// Fourier components: (fx, fy, phase, amplitude).
    waves: Vec<(f64, f64, f64, f64)>,
    /// Base brightness.
    base: f64,
}

impl Appearance {
    fn for_class(class: ObjectClass) -> Self {
        // Seed the appearance entirely from the class id so the same class
        // looks the same in every process, run, and node.
        let mut rng = StdRng::seed_from_u64(0xC01C_0000 ^ class.0 as u64);
        // Low spatial frequencies: real-world objects photographed from a
        // couple of metres are dominated by coarse structure, and coarse
        // structure is what survives small viewpoint changes — exactly the
        // invariance the descriptor cache needs.
        let n = 8;
        let waves = (0..n)
            .map(|_| {
                (
                    rng.random_range(0.3..1.6),
                    rng.random_range(0.3..1.6),
                    rng.random_range(0.0..std::f64::consts::TAU),
                    rng.random_range(0.3..1.0),
                )
            })
            .collect();
        Appearance {
            waves,
            base: rng.random_range(90.0..160.0),
        }
    }

    /// Evaluate the canonical pattern at normalized coordinates in [-1, 1].
    fn eval(&self, u: f64, v: f64) -> f64 {
        let mut acc = self.base;
        let mut amp_sum = 0.0;
        for &(fx, fy, phase, amp) in &self.waves {
            acc += amp * 40.0 * (std::f64::consts::PI * (fx * u + fy * v) + phase).sin();
            amp_sum += amp;
        }
        let _ = amp_sum;
        acc.clamp(0.0, 255.0)
    }
}

/// Generates observations of object classes.
pub struct SceneGenerator {
    side: u32,
}

impl SceneGenerator {
    /// Observations will be `side × side` pixels.
    pub fn new(side: u32) -> Self {
        assert!(side >= 8, "observations smaller than 8px are meaningless");
        SceneGenerator { side }
    }

    /// Observation side length in pixels.
    pub fn side(&self) -> u32 {
        self.side
    }

    /// Render an observation of `class` under `view`, using `rng` only for
    /// the sensor noise (geometry and appearance are deterministic).
    pub fn observe(&self, class: ObjectClass, view: &ViewParams, rng: &mut StdRng) -> Image {
        let app = Appearance::for_class(class);
        let side = self.side as f64;
        let (sin_a, cos_a) = view.angle.sin_cos();
        Image::from_fn(self.side, self.side, |x, y| {
            // Map pixel to normalized [-1, 1] coords, then apply the inverse
            // view transform (translate, rotate, scale) to find where in
            // the canonical pattern this pixel looks.
            let nx = (x as f64 + 0.5) / side * 2.0 - 1.0 - view.dx * 2.0 / side;
            let ny = (y as f64 + 0.5) / side * 2.0 - 1.0 - view.dy * 2.0 / side;
            let ru = (nx * cos_a + ny * sin_a) / view.scale;
            let rv = (-nx * sin_a + ny * cos_a) / view.scale;
            let mut val = app.eval(ru, rv) * view.illumination;
            if view.noise_sigma > 0.0 {
                val += gaussian(rng) * view.noise_sigma;
            }
            val.round().clamp(0.0, 255.0) as u8
        })
    }

    /// Render the canonical (unperturbed, noise-free) view of a class.
    pub fn canonical(&self, class: ObjectClass) -> Image {
        let mut rng = StdRng::seed_from_u64(0);
        self.observe(class, &ViewParams::default(), &mut rng)
    }
}

/// Standard normal sample via Box–Muller (rand_distr is not a sanctioned
/// dependency, and two transcendental calls per sample are cheap at our
/// image sizes).
pub fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.random::<f64>().max(1e-12);
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(99)
    }

    #[test]
    fn canonical_views_are_deterministic() {
        let g = SceneGenerator::new(32);
        let a = g.canonical(ObjectClass(7));
        let b = g.canonical(ObjectClass(7));
        assert_eq!(a, b);
    }

    #[test]
    fn different_classes_look_different() {
        let g = SceneGenerator::new(32);
        let a = g.canonical(ObjectClass(1));
        let b = g.canonical(ObjectClass(2));
        let diff: f64 = a
            .pixels()
            .iter()
            .zip(b.pixels())
            .map(|(&p, &q)| (p as f64 - q as f64).abs())
            .sum::<f64>()
            / a.pixels().len() as f64;
        assert!(diff > 10.0, "mean abs pixel diff {diff} too small");
    }

    #[test]
    fn small_perturbation_small_pixel_change() {
        let g = SceneGenerator::new(32);
        let a = g.canonical(ObjectClass(3));
        let view = ViewParams {
            angle: 0.03,
            scale: 1.02,
            illumination: 1.02,
            noise_sigma: 0.0,
            dx: 0.5,
            dy: 0.5,
        };
        let b = g.observe(ObjectClass(3), &view, &mut rng());
        let diff: f64 = a
            .pixels()
            .iter()
            .zip(b.pixels())
            .map(|(&p, &q)| (p as f64 - q as f64).abs())
            .sum::<f64>()
            / a.pixels().len() as f64;
        // Same object, slightly moved: images stay similar.
        assert!(diff < 20.0, "mean abs pixel diff {diff} too large");
    }

    #[test]
    fn noise_changes_pixels_but_preserves_mean() {
        let g = SceneGenerator::new(32);
        let clean = g.canonical(ObjectClass(4));
        let view = ViewParams {
            noise_sigma: 8.0,
            ..ViewParams::default()
        };
        let noisy = g.observe(ObjectClass(4), &view, &mut rng());
        assert_ne!(clean, noisy);
        assert!((clean.mean() - noisy.mean()).abs() < 3.0);
    }

    #[test]
    fn gaussian_moments() {
        let mut r = rng();
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| gaussian(&mut r)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn jittered_views_within_bounds() {
        let mut r = rng();
        for _ in 0..100 {
            let v = ViewParams::jittered(&mut r, 0.1, 4.0);
            assert!(v.angle.abs() <= 0.1);
            assert!((0.9..=1.1).contains(&v.scale));
            assert!((0.85..=1.15).contains(&v.illumination));
            assert_eq!(v.noise_sigma, 4.0);
        }
    }

    #[test]
    #[should_panic(expected = "meaningless")]
    fn tiny_generator_rejected() {
        let _ = SceneGenerator::new(4);
    }
}

//! Shared fault-handling counters, emitted by the engine (and, for purely
//! transport-level events such as checksum failures and reconnects, by the
//! drivers at their IO boundary).

use coic_obs::MetricsRegistry;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Shared counters for every fault-handling event in the stack.
/// Cloned handles observe the same underlying counters.
#[derive(Debug, Clone, Default)]
pub struct RobustnessStats {
    inner: Arc<RobustnessCounters>,
}

#[derive(Debug, Default)]
struct RobustnessCounters {
    attempts: AtomicU64,
    retries: AtomicU64,
    timeouts: AtomicU64,
    corrupt_frames: AtomicU64,
    reconnects: AtomicU64,
    fallbacks: AtomicU64,
    degraded_transitions: AtomicU64,
    recovered_transitions: AtomicU64,
    probes: AtomicU64,
    breaker_trips: AtomicU64,
    breaker_closes: AtomicU64,
    unavailable_replies: AtomicU64,
    overloaded_replies: AtomicU64,
    admitted: AtomicU64,
    shed: AtomicU64,
}

/// Point-in-time copy of [`RobustnessStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RobustnessSnapshot {
    /// Request attempts issued (including retries).
    pub attempts: u64,
    /// Attempts beyond the first for some request.
    pub retries: u64,
    /// Attempts that ended in a deadline expiry.
    pub timeouts: u64,
    /// Frames rejected by checksum.
    pub corrupt_frames: u64,
    /// Transport reconnects performed.
    pub reconnects: u64,
    /// Requests served via the origin (cloud-direct) path after the
    /// cooperative path failed.
    pub fallbacks: u64,
    /// Cooperative→degraded transitions.
    pub degraded_transitions: u64,
    /// Degraded→cooperative (recovered) transitions.
    pub recovered_transitions: u64,
    /// Edge probes sent while degraded.
    pub probes: u64,
    /// Circuit-breaker trips on the edge's cloud leg.
    pub breaker_trips: u64,
    /// Circuit-breaker recoveries.
    pub breaker_closes: u64,
    /// `Msg::Unavailable` replies sent or received.
    pub unavailable_replies: u64,
    /// `Msg::Overloaded` replies sent or received (load shedding).
    pub overloaded_replies: u64,
    /// Requests admitted into service by the edge's admission controller.
    pub admitted: u64,
    /// Requests the edge's admission controller shed (queue eviction,
    /// age-out, brownout refusal, or degraded-mode miss).
    pub shed: u64,
}

macro_rules! counters {
    ($($field:ident => $inc:ident),* $(,)?) => {
        impl RobustnessStats {
            $(
                /// Increment the corresponding counter.
                pub fn $inc(&self) {
                    self.inner.$field.fetch_add(1, Ordering::Relaxed);
                }
            )*

            /// Copy all counters.
            pub fn snapshot(&self) -> RobustnessSnapshot {
                RobustnessSnapshot {
                    $($field: self.inner.$field.load(Ordering::Relaxed),)*
                }
            }
        }

        impl RobustnessSnapshot {
            /// Publish every counter into the shared metrics registry
            /// under the `robustness.` prefix.
            pub fn publish(&self, reg: &MetricsRegistry) {
                $(reg.counter_add(
                    concat!("robustness.", stringify!($field)),
                    self.$field,
                );)*
            }

            /// Reconstruct a snapshot from registry values published by
            /// [`RobustnessSnapshot::publish`].
            pub fn from_registry(reg: &MetricsRegistry) -> RobustnessSnapshot {
                RobustnessSnapshot {
                    $($field: reg.counter(concat!("robustness.", stringify!($field))),)*
                }
            }
        }
    };
}

counters! {
    attempts => count_attempt,
    retries => count_retry,
    timeouts => count_timeout,
    corrupt_frames => count_corrupt,
    reconnects => count_reconnect,
    fallbacks => count_fallback,
    degraded_transitions => count_degraded,
    recovered_transitions => count_recovered,
    probes => count_probe,
    breaker_trips => count_breaker_trip,
    breaker_closes => count_breaker_close,
    unavailable_replies => count_unavailable,
    overloaded_replies => count_overloaded,
    admitted => count_admitted,
    shed => count_shed,
}

impl std::fmt::Display for RobustnessSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "attempts {} (retries {}), timeouts {}, corrupt {}, reconnects {}, \
             fallbacks {}, degraded {}→recovered {}, probes {}, breaker {}/{} trips/closes, \
             unavailable {}, overloaded {}, admitted {}, shed {}",
            self.attempts,
            self.retries,
            self.timeouts,
            self.corrupt_frames,
            self.reconnects,
            self.fallbacks,
            self.degraded_transitions,
            self.recovered_transitions,
            self.probes,
            self.breaker_trips,
            self.breaker_closes,
            self.unavailable_replies,
            self.overloaded_replies,
            self.admitted,
            self.shed,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_shared_across_clones() {
        let s = RobustnessStats::default();
        let s2 = s.clone();
        s.count_attempt();
        s2.count_attempt();
        s2.count_retry();
        s.count_fallback();
        let snap = s.snapshot();
        assert_eq!(snap.attempts, 2);
        assert_eq!(snap.retries, 1);
        assert_eq!(snap.fallbacks, 1);
        assert_eq!(snap, s2.snapshot());
    }

    #[test]
    fn snapshot_registry_roundtrip() {
        let s = RobustnessStats::default();
        s.count_attempt();
        s.count_attempt();
        s.count_retry();
        s.count_breaker_trip();
        s.count_unavailable();
        let snap = s.snapshot();
        let reg = MetricsRegistry::new();
        snap.publish(&reg);
        assert_eq!(reg.counter("robustness.attempts"), 2);
        assert_eq!(reg.counter("robustness.breaker_trips"), 1);
        assert_eq!(RobustnessSnapshot::from_registry(&reg), snap);
        // Publishing accumulates (per-client snapshots merge additively).
        snap.publish(&reg);
        assert_eq!(reg.counter("robustness.retries"), 2);
    }
}

//! Fixture: locks nested against the declared order. Never compiled.

fn drain(shard: &Shard) {
    let pending = shard.touches.lock();
    let mut guard = shard.cache.write(); // LINT-EXPECT: cache-then-touches
    for key in pending.iter() {
        guard.touch(key);
    }
}

fn peek(shard: &Shard) -> usize {
    let queue = shard.touches.lock();
    let n = shard.cache.read().len(); // LINT-EXPECT: cache-then-touches
    queue.len() + n
}

//! Real transport: length-prefixed frames over TCP.
//!
//! The same client/edge/cloud state machines that run on the simulator can
//! be deployed over actual sockets for live demos and loopback integration
//! tests. Connection handling is thread-per-connection with crossbeam
//! channels — appropriate for the handful of nodes in a CoIC deployment and
//! free of async-runtime dependencies (the guides recommend plain blocking
//! IO when you are not multiplexing thousands of connections).
//!
//! Wire format: `u32` big-endian payload length, then the payload. Frames
//! larger than [`MAX_FRAME`] are rejected on both send and receive so a
//! corrupt or malicious peer cannot trigger unbounded allocation.

use bytes::Bytes;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::thread::JoinHandle;

/// Upper bound on a single frame's payload (256 MiB) — larger than any CoIC
/// message (the biggest are multi-megabyte 3D models) but small enough to
/// bound allocation on a corrupt length prefix.
pub const MAX_FRAME: u32 = 256 * 1024 * 1024;

/// Errors surfaced by the frame transport.
#[derive(Debug)]
pub enum FrameError {
    /// Underlying socket error.
    Io(io::Error),
    /// Peer closed the connection cleanly between frames.
    Closed,
    /// A length prefix exceeded [`MAX_FRAME`].
    Oversized(u32),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "io error: {e}"),
            FrameError::Closed => write!(f, "connection closed"),
            FrameError::Oversized(n) => write!(f, "frame of {n} bytes exceeds MAX_FRAME"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// A framed, blocking TCP connection.
pub struct FrameConn {
    stream: TcpStream,
}

impl FrameConn {
    /// Wrap an existing stream. Disables Nagle so small request/response
    /// frames are not delayed — CoIC descriptor queries are latency-bound.
    pub fn new(stream: TcpStream) -> io::Result<Self> {
        stream.set_nodelay(true)?;
        Ok(FrameConn { stream })
    }

    /// Connect to a listening peer.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Self> {
        Self::new(TcpStream::connect(addr)?)
    }

    /// Clone the underlying socket so one thread can read while another
    /// writes.
    pub fn try_clone(&self) -> io::Result<FrameConn> {
        Ok(FrameConn {
            stream: self.stream.try_clone()?,
        })
    }

    /// Send one frame.
    pub fn send(&mut self, payload: &[u8]) -> Result<(), FrameError> {
        let len = payload.len();
        if len > MAX_FRAME as usize {
            return Err(FrameError::Oversized(len.min(u32::MAX as usize) as u32));
        }
        let hdr = (len as u32).to_be_bytes();
        self.stream.write_all(&hdr)?;
        self.stream.write_all(payload)?;
        self.stream.flush()?;
        Ok(())
    }

    /// Receive one frame. Returns [`FrameError::Closed`] on clean EOF at a
    /// frame boundary.
    pub fn recv(&mut self) -> Result<Bytes, FrameError> {
        let mut hdr = [0u8; 4];
        match self.stream.read_exact(&mut hdr) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Err(FrameError::Closed),
            Err(e) => return Err(e.into()),
        }
        let len = u32::from_be_bytes(hdr);
        if len > MAX_FRAME {
            return Err(FrameError::Oversized(len));
        }
        let mut buf = vec![0u8; len as usize];
        self.stream.read_exact(&mut buf)?;
        Ok(Bytes::from(buf))
    }

    /// Local socket address.
    pub fn local_addr(&self) -> io::Result<std::net::SocketAddr> {
        self.stream.local_addr()
    }

    /// Remote socket address.
    pub fn peer_addr(&self) -> io::Result<std::net::SocketAddr> {
        self.stream.peer_addr()
    }
}

/// A running frame server. Dropping the handle does not stop the server;
/// call [`FrameServer::local_addr`] to learn the bound port when binding to
/// port 0.
pub struct FrameServer {
    addr: std::net::SocketAddr,
    accept_thread: Option<JoinHandle<()>>,
}

impl FrameServer {
    /// Bind `addr` and serve each connection on its own thread with
    /// `handler`. The handler receives each inbound frame and returns the
    /// response frame to send back (simple RPC). Returning `None` closes
    /// the connection.
    pub fn spawn<A, F>(addr: A, handler: F) -> io::Result<FrameServer>
    where
        A: ToSocketAddrs,
        F: Fn(Bytes) -> Option<Vec<u8>> + Send + Sync + 'static,
    {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let handler = std::sync::Arc::new(handler);
        let accept_thread = std::thread::Builder::new()
            .name("coic-frame-accept".into())
            .spawn(move || {
                for conn in listener.incoming() {
                    let Ok(stream) = conn else { break };
                    let h = handler.clone();
                    let _ = std::thread::Builder::new()
                        .name("coic-frame-conn".into())
                        .spawn(move || {
                            let Ok(mut fc) = FrameConn::new(stream) else {
                                return;
                            };
                            while let Ok(frame) = fc.recv() {
                                match h(frame) {
                                    Some(resp) => {
                                        if fc.send(&resp).is_err() {
                                            break;
                                        }
                                    }
                                    None => break,
                                }
                            }
                        });
                }
            })?;
        Ok(FrameServer {
            addr: local,
            accept_thread: Some(accept_thread),
        })
    }

    /// The address the server is listening on.
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.addr
    }
}

impl Drop for FrameServer {
    fn drop(&mut self) {
        // Detach: the accept loop lives for the process lifetime. Tests use
        // ephemeral ports so leaked listeners are harmless.
        if let Some(t) = self.accept_thread.take() {
            drop(t);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn echo_round_trip() {
        let server = FrameServer::spawn("127.0.0.1:0", |frame| Some(frame.to_vec())).unwrap();
        let mut conn = FrameConn::connect(server.local_addr()).unwrap();
        conn.send(b"hello coic").unwrap();
        let back = conn.recv().unwrap();
        assert_eq!(&back[..], b"hello coic");
    }

    #[test]
    fn multiple_frames_in_order() {
        let server = FrameServer::spawn("127.0.0.1:0", |frame| {
            let mut v = frame.to_vec();
            v.push(b'!');
            Some(v)
        })
        .unwrap();
        let mut conn = FrameConn::connect(server.local_addr()).unwrap();
        for i in 0..50u8 {
            conn.send(&[i]).unwrap();
            let back = conn.recv().unwrap();
            assert_eq!(&back[..], &[i, b'!']);
        }
    }

    #[test]
    fn empty_frame_is_legal() {
        let server = FrameServer::spawn("127.0.0.1:0", |frame| {
            assert!(frame.is_empty());
            Some(vec![1, 2, 3])
        })
        .unwrap();
        let mut conn = FrameConn::connect(server.local_addr()).unwrap();
        conn.send(b"").unwrap();
        assert_eq!(&conn.recv().unwrap()[..], &[1, 2, 3]);
    }

    #[test]
    fn server_closing_yields_closed() {
        let server = FrameServer::spawn("127.0.0.1:0", |_frame| None).unwrap();
        let mut conn = FrameConn::connect(server.local_addr()).unwrap();
        conn.send(b"bye").unwrap();
        match conn.recv() {
            Err(FrameError::Closed) | Err(FrameError::Io(_)) => {}
            other => panic!("expected close, got {other:?}"),
        }
    }

    #[test]
    fn oversized_send_rejected_locally() {
        let server = FrameServer::spawn("127.0.0.1:0", |f| Some(f.to_vec())).unwrap();
        let mut conn = FrameConn::connect(server.local_addr()).unwrap();
        // Don't allocate 256 MiB; fake it with a small-but-over-limit check
        // via the length validation path by constructing a vec of exactly
        // MAX_FRAME + 1 would be expensive — instead validate the error type
        // with a crafted header through a raw socket.
        let mut raw = TcpStream::connect(server.local_addr()).unwrap();
        raw.write_all(&(MAX_FRAME + 1).to_be_bytes()).unwrap();
        // Receiving side: our own client should reject a bogus header too.
        conn.send(b"ok").unwrap();
        let _ = conn.recv().unwrap();
    }

    #[test]
    fn large_frame_round_trips() {
        let server = FrameServer::spawn("127.0.0.1:0", |f| Some(f.to_vec())).unwrap();
        let mut conn = FrameConn::connect(server.local_addr()).unwrap();
        let big = vec![0xabu8; 3 * 1024 * 1024];
        conn.send(&big).unwrap();
        let back = conn.recv().unwrap();
        assert_eq!(back.len(), big.len());
        assert!(back.iter().all(|&b| b == 0xab));
    }

    #[test]
    fn concurrent_clients() {
        let server = FrameServer::spawn("127.0.0.1:0", |f| Some(f.to_vec())).unwrap();
        let addr = server.local_addr();
        let threads: Vec<_> = (0..8)
            .map(|i| {
                std::thread::spawn(move || {
                    let mut conn = FrameConn::connect(addr).unwrap();
                    for j in 0..20u8 {
                        let msg = [i as u8, j];
                        conn.send(&msg).unwrap();
                        assert_eq!(&conn.recv().unwrap()[..], &msg);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
    }
}

//! The engine's single time source.
//!
//! The orchestration engine never reads a wall clock directly: every
//! timestamp flows through the [`Clock`] trait, so the same state machine
//! runs on virtual time inside the discrete-event simulator
//! ([`SimClock`], backed by [`coic_netsim::SimTime`]) and on wall-clock
//! time in the live TCP deployment ([`WallClock`]).

use coic_netsim::SimTime;
use std::cell::Cell;
use std::rc::Rc;
use std::time::Instant;

/// A monotonic nanosecond clock. Implementations must never go backwards.
pub trait Clock {
    /// Nanoseconds since the clock's epoch (simulation start or client
    /// construction).
    fn now_ns(&self) -> u64;
}

/// Wall-clock time for the live deployment, anchored at construction so
/// readings share an epoch with the virtual clock's "ns since start".
#[derive(Debug, Clone)]
pub struct WallClock {
    anchor: Instant,
}

impl WallClock {
    /// A clock whose epoch is now.
    pub fn new() -> WallClock {
        WallClock {
            anchor: Instant::now(),
        }
    }
}

impl Default for WallClock {
    fn default() -> WallClock {
        WallClock::new()
    }
}

impl Clock for WallClock {
    fn now_ns(&self) -> u64 {
        self.anchor.elapsed().as_nanos() as u64
    }
}

/// Virtual time for the simulator: a shared cell the sim driver advances
/// to `ctx.now()` before feeding each event into the engine. Clones share
/// the same underlying cell.
#[derive(Debug, Clone, Default)]
pub struct SimClock {
    now: Rc<Cell<u64>>,
}

impl SimClock {
    /// A virtual clock starting at t = 0.
    pub fn new() -> SimClock {
        SimClock::default()
    }

    /// Advance to the simulator's current virtual time.
    pub fn set(&self, t: SimTime) {
        self.now.set(t.as_nanos());
    }
}

impl Clock for SimClock {
    fn now_ns(&self) -> u64 {
        self.now.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_clock_is_monotonic_from_zero() {
        let c = WallClock::new();
        let a = c.now_ns();
        let b = c.now_ns();
        assert!(b >= a);
    }

    #[test]
    fn sim_clock_clones_share_time() {
        let c = SimClock::new();
        let c2 = c.clone();
        assert_eq!(c.now_ns(), 0);
        c2.set(SimTime::from_millis(7));
        assert_eq!(c.now_ns(), 7_000_000);
    }
}

//! Trace serialization: a simple CSV dialect for exchanging request traces
//! with external tools (plotting, replaying a captured trace, diffing
//! workloads between runs). Hand-rolled — the format is six plain columns
//! and none of the values can contain commas.
//!
//! Columns: `user,zone,at_ns,kind,arg1,arg2` where `kind` is one of
//! `recognition` (arg1 = class, arg2 = view_seed), `render_load`
//! (arg1 = model_id, arg2 = size_bytes), `panorama` (arg1 = frame_id,
//! arg2 = 0).

use crate::apps::{Request, RequestKind};
use crate::mobility::{UserId, ZoneId};

/// Header row emitted by [`to_csv`].
pub const HEADER: &str = "user,zone,at_ns,kind,arg1,arg2";

/// Serialize a trace to CSV (with header).
pub fn to_csv(trace: &[Request]) -> String {
    let mut out = String::with_capacity(trace.len() * 40 + HEADER.len() + 1);
    out.push_str(HEADER);
    out.push('\n');
    for r in trace {
        let (kind, a, b) = match r.kind {
            RequestKind::Recognition { class, view_seed } => {
                ("recognition", class as u64, view_seed)
            }
            RequestKind::RenderLoad {
                model_id,
                size_bytes,
            } => ("render_load", model_id, size_bytes),
            RequestKind::Panorama { frame_id } => ("panorama", frame_id, 0),
        };
        out.push_str(&format!(
            "{},{},{},{},{},{}\n",
            r.user.0, r.zone.0, r.at_ns, kind, a, b
        ));
    }
    out
}

/// CSV parse failures, with the 1-based line they occurred on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceParseError {
    /// 1-based line number.
    pub line: usize,
    /// What was wrong.
    pub reason: String,
}

impl std::fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.reason)
    }
}

impl std::error::Error for TraceParseError {}

/// Parse a CSV trace produced by [`to_csv`]. The header row is required;
/// blank lines are ignored.
pub fn from_csv(text: &str) -> Result<Vec<Request>, TraceParseError> {
    let mut lines = text.lines().enumerate();
    match lines.next() {
        Some((_, h)) if h.trim() == HEADER => {}
        Some((_, h)) => {
            return Err(TraceParseError {
                line: 1,
                reason: format!("expected header {HEADER:?}, found {h:?}"),
            })
        }
        None => {
            return Err(TraceParseError {
                line: 1,
                reason: "empty input".into(),
            })
        }
    }
    let mut out = Vec::new();
    for (i, line) in lines {
        let lineno = i + 1;
        if line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != 6 {
            return Err(TraceParseError {
                line: lineno,
                reason: format!("expected 6 fields, found {}", fields.len()),
            });
        }
        let num = |idx: usize| -> Result<u64, TraceParseError> {
            fields[idx].trim().parse().map_err(|_| TraceParseError {
                line: lineno,
                reason: format!("field {} ({:?}) is not a number", idx + 1, fields[idx]),
            })
        };
        let kind = match fields[3].trim() {
            "recognition" => RequestKind::Recognition {
                class: num(4)? as u32,
                view_seed: num(5)?,
            },
            "render_load" => RequestKind::RenderLoad {
                model_id: num(4)?,
                size_bytes: num(5)?,
            },
            "panorama" => RequestKind::Panorama { frame_id: num(4)? },
            other => {
                return Err(TraceParseError {
                    line: lineno,
                    reason: format!("unknown kind {other:?}"),
                })
            }
        };
        out.push(Request {
            user: UserId(num(0)? as u32),
            zone: ZoneId(num(1)? as u32),
            at_ns: num(2)?,
            kind,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::SafeDrivingAr;
    use crate::mobility::{Population, ZoneModel};

    fn sample() -> Vec<Request> {
        let mut t = SafeDrivingAr {
            population: Population::round_robin(4, 2),
            zones: ZoneModel::new(2, 8, 0.5, 1),
            rate_per_sec: 5.0,
            zipf_s: 0.9,
            total_requests: 20,
        }
        .generate(3);
        t.push(Request {
            user: UserId(9),
            zone: ZoneId(1),
            at_ns: 42,
            kind: RequestKind::RenderLoad {
                model_id: 5,
                size_bytes: 123_456,
            },
        });
        t.push(Request {
            user: UserId(2),
            zone: ZoneId(0),
            at_ns: 77,
            kind: RequestKind::Panorama { frame_id: 11 },
        });
        t
    }

    #[test]
    fn round_trip_preserves_trace() {
        let trace = sample();
        let csv = to_csv(&trace);
        let back = from_csv(&csv).unwrap();
        assert_eq!(back, trace);
    }

    #[test]
    fn header_is_first_line() {
        let csv = to_csv(&sample());
        assert!(csv.starts_with(HEADER));
    }

    #[test]
    fn missing_header_rejected() {
        let err = from_csv("1,2,3,panorama,4,0\n").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.reason.contains("header"));
    }

    #[test]
    fn bad_field_count_reports_line() {
        let csv = format!("{HEADER}\n1,2,3,panorama,4\n");
        let err = from_csv(&csv).unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.reason.contains("6 fields"));
    }

    #[test]
    fn unknown_kind_rejected() {
        let csv = format!("{HEADER}\n1,2,3,teleport,4,0\n");
        let err = from_csv(&csv).unwrap_err();
        assert!(err.reason.contains("unknown kind"));
    }

    #[test]
    fn non_numeric_field_rejected() {
        let csv = format!("{HEADER}\nx,2,3,panorama,4,0\n");
        let err = from_csv(&csv).unwrap_err();
        assert!(err.reason.contains("not a number"));
    }

    #[test]
    fn blank_lines_ignored() {
        let csv = format!("{HEADER}\n\n1,0,5,panorama,2,0\n\n");
        let trace = from_csv(&csv).unwrap();
        assert_eq!(trace.len(), 1);
        assert_eq!(trace[0].at_ns, 5);
    }

    #[test]
    fn empty_trace_round_trips() {
        let back = from_csv(&to_csv(&[])).unwrap();
        assert!(back.is_empty());
    }
}

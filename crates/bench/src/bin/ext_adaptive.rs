//! **Ext M** — online threshold adaptation via shadow verification.
//!
//! A fixed similarity threshold is tuned for one scene; deploy the edge
//! somewhere harder and cached labels silently go wrong. Here the edge
//! shadow-verifies 20% of its hits against the cloud and AIMD-adjusts the
//! threshold toward a 95% hit-accuracy target. The run starts with a
//! recklessly loose threshold (0.90) on a *hard* scene (24 similar
//! objects, wide viewpoint jitter), then mid-stream the scene gets even
//! harder — the controller re-tightens on its own.
//!
//! Run with: `cargo run --release -p coic-bench --bin ext_adaptive`

use coic_cache::{ApproxCache, ApproxLookup, IndexKind, PolicyKind};
use coic_core::adaptive::{AdaptiveConfig, AdaptiveThreshold};
use coic_core::RecognitionResult;
use coic_vision::{ObjectClass, PrototypeClassifier, SceneGenerator, SimNet, ViewParams};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

struct Phase {
    label: &'static str,
    requests: usize,
    angle_spread: f64,
    noise: f64,
}

fn main() {
    let gen = SceneGenerator::new(64);
    let net = SimNet::default_net();
    let classes: Vec<_> = (0..24).map(ObjectClass).collect();
    let mut rng = StdRng::seed_from_u64(47);
    let clf = PrototypeClassifier::train(&net, &gen, &classes, 5, 0.10, 5.0, &mut rng);

    let phases = [
        Phase {
            label: "moderate scene",
            requests: 400,
            angle_spread: 0.10,
            noise: 5.0,
        },
        Phase {
            label: "harder scene",
            requests: 400,
            angle_spread: 0.30,
            noise: 12.0,
        },
    ];

    for fixed in [true, false] {
        let mut cache: ApproxCache<RecognitionResult> =
            ApproxCache::new(256 << 20, PolicyKind::Lru, 0.90, IndexKind::Linear, 32);
        let mut ctl = AdaptiveThreshold::new(
            0.90,
            AdaptiveConfig {
                shadow_rate: 0.3,
                window: 10,
                tighten: 0.8,
                ..AdaptiveConfig::default()
            },
        );
        println!(
            "\n{} threshold (start 0.90{}):",
            if fixed { "FIXED" } else { "ADAPTIVE" },
            if fixed {
                ""
            } else {
                ", target accuracy 95%, 30% shadow rate"
            }
        );
        println!(
            "{:>16} {:>6} | {:>9} {:>6} {:>9}",
            "phase", "reqs", "threshold", "hit%", "accuracy"
        );
        coic_bench::rule(56);
        for phase in &phases {
            let mut correct = 0u64;
            let mut hits = 0u64;
            for i in 0..phase.requests {
                let rank = (rng.random::<f64>().powi(2) * classes.len() as f64) as usize;
                let truth = classes[rank.min(classes.len() - 1)];
                let view = ViewParams::jittered(&mut rng, phase.angle_spread, phase.noise);
                let img = gen.observe(truth, &view, &mut rng);
                let d = net.extract(&img);
                if !fixed {
                    cache.set_threshold(ctl.threshold());
                }
                let label = match cache.lookup(&d, i as u64) {
                    ApproxLookup::Hit { id, .. } => {
                        hits += 1;
                        let cached = cache.value(id).unwrap().label;
                        if !fixed && ctl.should_shadow() {
                            // Shadow verification: the cloud recomputes in
                            // the background; the user already has `cached`.
                            let (true_label, _) = clf.predict(&d);
                            ctl.record(cached == true_label.0);
                        }
                        cached
                    }
                    ApproxLookup::Miss { .. } => {
                        let (label, distance) = clf.predict(&d);
                        cache.insert(
                            d,
                            RecognitionResult {
                                label: label.0,
                                distance,
                            },
                            20_000,
                            i as u64,
                        );
                        label.0
                    }
                };
                if label == truth.0 {
                    correct += 1;
                }
            }
            println!(
                "{:>16} {:>6} | {:>9.3} {:>5.1}% {:>8.1}%",
                phase.label,
                phase.requests,
                if fixed { 0.90 } else { ctl.threshold() },
                hits as f64 / phase.requests as f64 * 100.0,
                correct as f64 / phase.requests as f64 * 100.0
            );
        }
        if !fixed {
            println!(
                "(controller verified {} hits — ~{:.0}% of them — measured accuracy {:.1}%)",
                ctl.verified(),
                30.0,
                ctl.measured_accuracy() * 100.0
            );
        }
    }
    println!("\nThe fixed loose threshold trades accuracy away invisibly; the");
    println!("adaptive controller pays a 30% shadow-upload overhead to notice,");
    println!("tightens until the accuracy target holds, and re-adapts when the");
    println!("scene shifts under it.");
}

//! CMF — the CoIC Model Format.
//!
//! A small binary container for meshes with real parsing and integrity
//! checking, so "loading a 3D model" in the reproduction does the same kind
//! of work the paper's renderer did (read, validate, build in-memory
//! structures) with a cost proportional to model size.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic    4 B   "CMF1"
//! version  2 B   format version (currently 1)
//! flags    2 B   reserved, must be 0
//! name_len 4 B   u32
//! n_verts  4 B   u32
//! n_idx    4 B   u32
//! name     name_len B (UTF-8)
//! verts    n_verts × 6 × f32 (pos.xyz, normal.xyz)
//! indices  n_idx × u32
//! crc32    4 B   CRC-32 (IEEE) over everything before this field
//! ```

use crate::math::Vec3;
use crate::mesh::{Mesh, Vertex};
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Magic bytes opening every CMF file.
pub const MAGIC: [u8; 4] = *b"CMF1";
/// Current format version.
pub const VERSION: u16 = 1;
/// Parser limit on vertex/index counts (guards against corrupt headers
/// causing huge allocations).
pub const MAX_ELEMENTS: u32 = 64_000_000;

/// CMF decode failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CmfError {
    /// First four bytes were not [`MAGIC`].
    BadMagic([u8; 4]),
    /// Unsupported version field.
    BadVersion(u16),
    /// Reserved flags were nonzero.
    BadFlags(u16),
    /// Buffer ended before the structure was complete.
    Truncated {
        /// Bytes needed to continue parsing.
        needed: usize,
        /// Bytes actually remaining.
        have: usize,
    },
    /// Element count exceeded [`MAX_ELEMENTS`].
    TooLarge(u32),
    /// CRC-32 over the payload did not match the trailer.
    CrcMismatch {
        /// CRC recorded in the file.
        expected: u32,
        /// CRC computed over the received payload.
        actual: u32,
    },
    /// Model name was not valid UTF-8.
    BadName,
    /// Decoded mesh failed structural validation.
    InvalidMesh(String),
}

impl std::fmt::Display for CmfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CmfError::BadMagic(m) => write!(f, "bad magic {m:?}"),
            CmfError::BadVersion(v) => write!(f, "unsupported CMF version {v}"),
            CmfError::BadFlags(x) => write!(f, "reserved flags set: {x:#06x}"),
            CmfError::Truncated { needed, have } => {
                write!(f, "truncated: need {needed} bytes, have {have}")
            }
            CmfError::TooLarge(n) => write!(f, "element count {n} exceeds limit"),
            CmfError::CrcMismatch { expected, actual } => {
                write!(
                    f,
                    "crc mismatch: file says {expected:#010x}, computed {actual:#010x}"
                )
            }
            CmfError::BadName => write!(f, "model name is not valid UTF-8"),
            CmfError::InvalidMesh(e) => write!(f, "decoded mesh invalid: {e}"),
        }
    }
}

impl std::error::Error for CmfError {}

/// CRC-32 (IEEE 802.3 polynomial, reflected), table-driven.
pub fn crc32(data: &[u8]) -> u32 {
    // Build the table once.
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, entry) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *entry = c;
        }
        t
    });
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = table[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    crc ^ 0xFFFF_FFFF
}

/// Serialize a mesh to CMF bytes.
pub fn encode(mesh: &Mesh) -> Bytes {
    let mut buf = BytesMut::with_capacity(
        24 + mesh.name.len() + mesh.vertices.len() * 24 + mesh.indices.len() * 4,
    );
    buf.put_slice(&MAGIC);
    buf.put_u16_le(VERSION);
    buf.put_u16_le(0);
    buf.put_u32_le(mesh.name.len() as u32);
    buf.put_u32_le(mesh.vertices.len() as u32);
    buf.put_u32_le(mesh.indices.len() as u32);
    buf.put_slice(mesh.name.as_bytes());
    for v in &mesh.vertices {
        buf.put_f32_le(v.pos.x);
        buf.put_f32_le(v.pos.y);
        buf.put_f32_le(v.pos.z);
        buf.put_f32_le(v.normal.x);
        buf.put_f32_le(v.normal.y);
        buf.put_f32_le(v.normal.z);
    }
    for &i in &mesh.indices {
        buf.put_u32_le(i);
    }
    let crc = crc32(&buf);
    buf.put_u32_le(crc);
    buf.freeze()
}

/// Size in bytes [`encode`] will produce for a mesh, without encoding it.
pub fn encoded_size(mesh: &Mesh) -> u64 {
    // 20-byte header + name + vertex/index payload + 4-byte CRC trailer.
    (20 + mesh.name.len() + mesh.vertices.len() * 24 + mesh.indices.len() * 4 + 4) as u64
}

fn need(buf: &impl Buf, n: usize) -> Result<(), CmfError> {
    if buf.remaining() < n {
        Err(CmfError::Truncated {
            needed: n,
            have: buf.remaining(),
        })
    } else {
        Ok(())
    }
}

/// Parse and validate CMF bytes into a mesh.
pub fn decode(data: &[u8]) -> Result<Mesh, CmfError> {
    // Check the CRC trailer over the whole payload first: a transport-level
    // corruption check before any structural interpretation.
    if data.len() < 28 {
        return Err(CmfError::Truncated {
            needed: 28,
            have: data.len(),
        });
    }
    let (payload, trailer) = data.split_at(data.len() - 4);
    let expected = u32::from_le_bytes(trailer.try_into().expect("4-byte trailer"));
    let actual = crc32(payload);
    if expected != actual {
        return Err(CmfError::CrcMismatch { expected, actual });
    }

    let mut buf = payload;
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if magic != MAGIC {
        return Err(CmfError::BadMagic(magic));
    }
    let version = buf.get_u16_le();
    if version != VERSION {
        return Err(CmfError::BadVersion(version));
    }
    let flags = buf.get_u16_le();
    if flags != 0 {
        return Err(CmfError::BadFlags(flags));
    }
    let name_len = buf.get_u32_le();
    let n_verts = buf.get_u32_le();
    let n_idx = buf.get_u32_le();
    if n_verts > MAX_ELEMENTS || n_idx > MAX_ELEMENTS || name_len > 4096 {
        return Err(CmfError::TooLarge(n_verts.max(n_idx).max(name_len)));
    }
    need(&buf, name_len as usize)?;
    let name_bytes = buf.copy_to_bytes(name_len as usize);
    let name = std::str::from_utf8(&name_bytes)
        .map_err(|_| CmfError::BadName)?
        .to_owned();
    need(&buf, n_verts as usize * 24)?;
    let mut vertices = Vec::with_capacity(n_verts as usize);
    for _ in 0..n_verts {
        let pos = Vec3::new(buf.get_f32_le(), buf.get_f32_le(), buf.get_f32_le());
        let normal = Vec3::new(buf.get_f32_le(), buf.get_f32_le(), buf.get_f32_le());
        vertices.push(Vertex { pos, normal });
    }
    need(&buf, n_idx as usize * 4)?;
    let mut indices = Vec::with_capacity(n_idx as usize);
    for _ in 0..n_idx {
        indices.push(buf.get_u32_le());
    }
    let mesh = Mesh::new(name, vertices, indices);
    mesh.validate()
        .map_err(|e| CmfError::InvalidMesh(e.to_string()))?;
    Ok(mesh)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::procgen;

    #[test]
    fn crc32_known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn round_trip_preserves_mesh() {
        for mesh in [
            procgen::cube(),
            procgen::terrain(16, 3, 0.5),
            procgen::avatar(1),
        ] {
            let bytes = encode(&mesh);
            let back = decode(&bytes).unwrap();
            assert_eq!(back, mesh);
        }
    }

    #[test]
    fn encoded_size_is_exact() {
        for mesh in [procgen::cube(), procgen::terrain(12, 1, 0.2)] {
            assert_eq!(encode(&mesh).len() as u64, encoded_size(&mesh));
        }
    }

    #[test]
    fn bit_flip_detected_by_crc() {
        let mesh = procgen::cube();
        let bytes = encode(&mesh);
        for pos in [0usize, 10, bytes.len() / 2, bytes.len() - 5] {
            let mut corrupt = bytes.to_vec();
            corrupt[pos] ^= 0x01;
            match decode(&corrupt) {
                Err(CmfError::CrcMismatch { .. }) => {}
                other => panic!("flip at {pos}: expected CrcMismatch, got {other:?}"),
            }
        }
    }

    #[test]
    fn truncation_detected() {
        let bytes = encode(&procgen::cube());
        for keep in [0usize, 4, 27] {
            match decode(&bytes[..keep]) {
                Err(CmfError::Truncated { .. }) => {}
                other => panic!("keep {keep}: expected Truncated, got {other:?}"),
            }
        }
    }

    fn recrc(mut payload: Vec<u8>) -> Vec<u8> {
        let crc = crc32(&payload);
        payload.extend_from_slice(&crc.to_le_bytes());
        payload
    }

    #[test]
    fn bad_magic_rejected() {
        let bytes = encode(&procgen::cube());
        let mut payload = bytes[..bytes.len() - 4].to_vec();
        payload[0] = b'X';
        match decode(&recrc(payload)) {
            Err(CmfError::BadMagic(_)) => {}
            other => panic!("expected BadMagic, got {other:?}"),
        }
    }

    #[test]
    fn bad_version_rejected() {
        let bytes = encode(&procgen::cube());
        let mut payload = bytes[..bytes.len() - 4].to_vec();
        payload[4] = 99;
        match decode(&recrc(payload)) {
            Err(CmfError::BadVersion(99)) => {}
            other => panic!("expected BadVersion, got {other:?}"),
        }
    }

    #[test]
    fn huge_counts_rejected_before_allocation() {
        let bytes = encode(&procgen::cube());
        let mut payload = bytes[..bytes.len() - 4].to_vec();
        // n_verts field lives at offset 12.
        payload[12..16].copy_from_slice(&u32::MAX.to_le_bytes());
        match decode(&recrc(payload)) {
            Err(CmfError::TooLarge(_)) => {}
            other => panic!("expected TooLarge, got {other:?}"),
        }
    }

    #[test]
    fn invalid_mesh_structure_rejected() {
        // Encode a mesh with an out-of-range index by hand.
        let mut bad = procgen::cube();
        bad.indices[0] = 10_000;
        let bytes = encode(&bad);
        match decode(&bytes) {
            Err(CmfError::InvalidMesh(_)) => {}
            other => panic!("expected InvalidMesh, got {other:?}"),
        }
    }
}

//! Shimmed thread spawn/join.
//!
//! Inside a [`crate::model`] run, `spawn` registers a new model task whose
//! execution interleaves under the controller; outside, it is
//! `std::thread::spawn`.

use crate::sched::{current_ctx, Op};
use std::sync::{Arc, Mutex as StdMutex};

enum Inner<T> {
    /// A task inside a model: join through the scheduler.
    Model {
        target: usize,
        slot: Arc<StdMutex<Option<Result<T, String>>>>,
    },
    /// A plain OS thread (no model active at spawn time).
    Std(std::thread::JoinHandle<T>),
}

/// Handle to a spawned thread; `join` is a scheduling point in a model.
pub struct JoinHandle<T> {
    inner: Inner<T>,
}

/// Spawn a thread. Inside a model this registers a new schedulable task;
/// outside it delegates to [`std::thread::spawn`].
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    match current_ctx() {
        Some(ctx) => {
            // The spawn itself is a scheduling point: siblings may run
            // between the decision to spawn and the child becoming
            // schedulable — but registration happens atomically here, so
            // the child is schedulable from the next controller turn.
            ctx.sched.op_point(ctx.id, Op::Spawn);
            let target = ctx.sched.register_task();
            let slot: Arc<StdMutex<Option<Result<T, String>>>> = Arc::new(StdMutex::new(None));
            ctx.sched.spawn_task(target, f, Arc::clone(&slot));
            JoinHandle {
                inner: Inner::Model { target, slot },
            }
        }
        None => JoinHandle {
            inner: Inner::Std(std::thread::spawn(f)),
        },
    }
}

impl<T> JoinHandle<T> {
    /// Wait for the thread to finish and return its result. Mirrors
    /// [`std::thread::JoinHandle::join`]: `Err` when the task panicked
    /// (inside a model the panic has already failed the schedule, so the
    /// joiner is normally torn down before observing it).
    #[allow(clippy::result_unit_err)]
    pub fn join(self) -> Result<T, ()> {
        match self.inner {
            Inner::Model { target, slot } => {
                let ctx = current_ctx()
                    .expect("a model task's JoinHandle must be joined from a model task");
                ctx.sched.op_point(ctx.id, Op::Join(target));
                let result = match slot.lock() {
                    Ok(mut g) => g.take(),
                    Err(p) => p.into_inner().take(),
                };
                match result {
                    Some(Ok(v)) => Ok(v),
                    Some(Err(_)) | None => Err(()),
                }
            }
            Inner::Std(h) => h.join().map_err(|_| ()),
        }
    }
}
